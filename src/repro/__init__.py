"""ZENO reproduction: type-based optimization for zkSNARK NN inference.

Python reproduction of "ZENO: A Type-based Optimization Framework for Zero
Knowledge Neural Network Inference" (ASPLOS 2024).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import build_model, ZenoCompiler, zeno_options, synthetic_mnist

    model = build_model("SHAL", scale="mini")
    image = synthetic_mnist(1).images[0][:, ::2, ::2]  # 14x14 mini input
    compiler = ZenoCompiler(zeno_options())
    artifact = compiler.compile_model(model, image)
    report = compiler.prove(artifact)       # real Groth16 on the fast backend
    assert report.verified
"""

from repro.core.compiler import (
    CompilerOptions,
    PrivacySetting,
    ZenoCompiler,
    arkworks_options,
    zeno_options,
)
from repro.core.accuracy import AccuracyProver, AccuracyVerifier
from repro.core.lang.primitives import ProgramBuilder
from repro.core.lang.types import Privacy
from repro.core.metrics import CostModel
from repro.core.reuse.batch import BatchProver
from repro.ec.backend import RealBN254Backend, SimulatedBackend
from repro.nn.data import synthetic_cifar10, synthetic_mnist
from repro.nn.models import MODEL_INFO, build_model, model_table
from repro.r1cs.export import export_system, import_system
from repro.snark.groth16 import Groth16, batch_verify
from repro.snark.serialize import deserialize_proof, serialize_proof

__version__ = "1.0.0"

__all__ = [
    "AccuracyProver",
    "AccuracyVerifier",
    "CompilerOptions",
    "PrivacySetting",
    "ZenoCompiler",
    "arkworks_options",
    "zeno_options",
    "ProgramBuilder",
    "Privacy",
    "CostModel",
    "BatchProver",
    "RealBN254Backend",
    "SimulatedBackend",
    "synthetic_mnist",
    "synthetic_cifar10",
    "MODEL_INFO",
    "build_model",
    "model_table",
    "Groth16",
    "batch_verify",
    "export_system",
    "import_system",
    "serialize_proof",
    "deserialize_proof",
]
