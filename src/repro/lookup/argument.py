"""LogUp-style lookup argument lowered to R1CS (the `repro.lookup` core).

For a table ``T`` with packed rows ``P_j`` (see :mod:`repro.lookup.table`)
and circuit lookups packing to ``p_i``, membership of every ``p_i`` in
``{P_j}`` is equivalent (over a random challenge ``alpha``) to the
logarithmic-derivative identity

    sum_i 1 / (alpha - p_i)  ==  sum_j m_j / (alpha - P_j)

where ``m_j`` counts how often row ``j`` is looked up.  The R1CS lowering
costs, per lookup, ONE constraint

    (alpha - x_i - 2^16 * y_i - const) * h_i = 1

(the pair combination uses the fixed public base 2^16, injective because
the input side is range-proven — no second challenge, and the whole A-side
stays linear), plus a *shared per-table column* amortized across all
lookups of that table in the circuit: one constraint per table row

    (alpha - P_j) * g_j = m_j

and one final linear sum check ``sum h_i - sum g_j = 0``.

Soundness of the challenge.  ``alpha`` must not be attacker-controllable
after the multiset is chosen; in particular the multiplicities ``m_j`` are
field elements, and for a challenge independent of them a prover could
satisfy the sum check for ANY lookups by solving one linear equation in
the ``m_j``.  In ``strict`` gadget mode the engine therefore derives
``alpha`` *in-circuit* with a MiMC-x^5 sponge (same permutation as
:mod:`repro.aggregate.commit`, separate domain) absorbing (a) the packed
pairs, seven per round, and (b) every multiplicity, one per round — one
per round because multiplicities are unbounded field elements, so packing
several per round would re-open a collision lattice.  In ``lean`` mode
``alpha`` is a fixed per-table constant: constraint counts match the
paper-accounting budget but the argument is NOT sound (documented; the
soundness suite runs strict).

The engine also implements witness generation for the lookup columns
(``h``, ``g``, ``m``, sponge states) and records a :class:`LookupBlock`
per table on ``cs.lookup_blocks`` — consumed by the `repro.analysis`
determinism auditor (:func:`verify_lookup_block`) and by §6.1 batch
witness replay (:func:`reassign_lookup_columns`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lookup.table import PACK_BASE, LookupTable, get_table
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem

# Sponge absorption layout: packed pairs are < 2^32, so seven fit a BN254
# field element with headroom; multiplicities go one per round (see module
# docstring for why they must not share a round).
CHUNK_SIZE = 7
CHUNK_BASE = 1 << 32
EXTRA_ROUNDS = 2

_RC_DOMAIN = b"repro.lookup.logup.v1"
_LEAN_DOMAIN = b"repro.lookup.lean-alpha.v1"


class LookupError(ValueError):
    """Raised on malformed lookup usage or unassignable lookup columns."""


def round_constants(table_name: str, count: int, modulus: int) -> List[int]:
    """Per-table MiMC round constants (domain-separated, deterministic)."""
    seed = hashlib.sha256(_RC_DOMAIN + table_name.encode("utf-8")).digest()
    out = []
    for i in range(count):
        digest = hashlib.sha256(seed + i.to_bytes(4, "big")).digest()
        out.append(int.from_bytes(digest, "big") % modulus)
    return out


def lean_alpha(table_name: str, modulus: int) -> int:
    """The fixed lean-mode challenge (documented unsound; see module doc)."""
    digest = hashlib.sha256(_LEAN_DOMAIN + table_name.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % modulus


@dataclass
class LookupBlock:
    """Everything the auditors / witness replay need about one table's argument."""

    table_name: str
    registry_name: Optional[str]
    domain_lo: int
    y_bias: int
    mode: str  # "strict" | "lean"
    packed_entries: Tuple[int, ...]
    alpha_var: Optional[int]  # strict: the sponge output wire
    alpha_const: Optional[int]  # lean: the fixed challenge
    x_vars: List[int] = field(default_factory=list)
    y_vars: List[int] = field(default_factory=list)
    h_vars: List[int] = field(default_factory=list)
    h_constraints: List[int] = field(default_factory=list)
    m_vars: List[int] = field(default_factory=list)
    g_vars: List[int] = field(default_factory=list)
    g_constraints: List[int] = field(default_factory=list)
    sum_constraint: Optional[int] = None
    # Strict only: (t2_var, t4_var, out_var, first_constraint_idx) per round.
    sponge_rounds: List[Tuple[int, int, int, int]] = field(default_factory=list)
    # Per-lookup input range proofs: x_var -> (bit_vars, recompose_cidx).
    xbits: Dict[int, Tuple[Tuple[int, ...], int]] = field(default_factory=dict)

    @property
    def num_lookups(self) -> int:
        return len(self.x_vars)

    def engine_vars(self) -> List[int]:
        """All wires this argument introduced (for determinism grants)."""
        out = list(self.y_vars) + list(self.h_vars)
        out += list(self.m_vars) + list(self.g_vars)
        for t2, t4, state, _ in self.sponge_rounds:
            out += [t2, t4, state]
        for bits, _ in self.xbits.values():
            out += list(bits)
        if self.alpha_var is not None:
            out.append(self.alpha_var)
        return out


@dataclass
class LookupReport:
    """What the lookup argument cost vs the bit-decomposition path.

    ``bits_equivalent_constraints`` is the *estimated* cost of lowering the
    same activations without tables (per-activation sign/bit gadgets for
    ReLU, one-hot selectors for arbitrary 8-bit functions) under the same
    gadget budget; the `zeno compile --compare-relu` flag measures the real
    thing by compiling both ways.
    """

    mode: str = "lean"
    tables: List[dict] = field(default_factory=list)
    total_lookups: int = 0
    total_lookup_constraints: int = 0
    bits_equivalent_constraints: int = 0

    @property
    def constraints_saved(self) -> int:
        return self.bits_equivalent_constraints - self.total_lookup_constraints

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "tables": list(self.tables),
            "total_lookups": self.total_lookups,
            "total_lookup_constraints": self.total_lookup_constraints,
            "bits_equivalent_constraints": self.bits_equivalent_constraints,
            "constraints_saved": self.constraints_saved,
        }


class _TableState:
    """Per-table accumulation between first lookup and finalize."""

    __slots__ = (
        "table", "alpha_var", "alpha_const", "lookups", "h_constraints",
        "xbits", "lookup_constraints", "bits_equiv",
    )

    def __init__(self, table: LookupTable) -> None:
        self.table = table
        self.alpha_var: Optional[int] = None
        self.alpha_const: Optional[int] = None
        # (x_var, x_value, y_var, y_value, h_var)
        self.lookups: List[Tuple[int, int, int, int, int]] = []
        self.h_constraints: List[int] = []
        self.xbits: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self.lookup_constraints = 0
        self.bits_equiv = 0


class LookupEngine:
    """Emits the LogUp argument into one constraint system.

    One engine per circuit compilation; tables are keyed by name, so every
    activation using e.g. the builtin ``gelu`` table shares a single table
    column (the amortization that makes transformers affordable).  Call
    :meth:`lookup` per activation during layer lowering (the membership
    constraint lands in the current layer's provenance range) and
    :meth:`finalize` once after the last layer (the shared columns land in
    ``lookup:<table>`` pseudo-layers).
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        mode: str = "lean",
        recipe: Optional[list] = None,
    ) -> None:
        if mode not in ("lean", "strict"):
            raise ValueError(f"lookup mode must be 'lean' or 'strict', not {mode!r}")
        self.cs = cs
        self.mode = mode
        self.recipe = recipe
        self._states: Dict[str, _TableState] = {}
        # Shared input range proofs keyed (x_var, domain_lo, domain_bits):
        # per-dimension embedding tables all look up the same id wire over
        # the same domain, so one bit decomposition serves them all.
        self._range_proofs: Dict[
            Tuple[int, int, int], Tuple[Tuple[int, ...], int]
        ] = {}
        self._finalized = False

    @property
    def active(self) -> bool:
        return bool(self._states)

    def _log(self, var: int, table_name: str) -> None:
        if self.recipe is not None:
            self.recipe.append((var, ("lut", table_name)))

    def _state(self, table: LookupTable) -> _TableState:
        st = self._states.get(table.name)
        if st is None:
            st = _TableState(table)
            if self.mode == "strict":
                # Pre-allocate the challenge wire so per-lookup membership
                # constraints can reference it before the sponge that
                # assigns it is emitted at finalize.
                st.alpha_var = self.cs.new_private(0)
                self._log(st.alpha_var, table.name)
            else:
                st.alpha_const = lean_alpha(table.name, self.cs.field.modulus)
            self._states[table.name] = st
        elif st.table is not table and st.table.packed_entries() != table.packed_entries():
            raise LookupError(
                f"two different tables registered under name {table.name!r}"
            )
        return st

    # -- per-activation membership ---------------------------------------------------

    def lookup(
        self,
        table: LookupTable,
        x_var: int,
        x_value: int,
        tag: str = "lut",
        index: int = -1,
        input_ranged: bool = True,
        bits_cost: Optional[int] = None,
    ) -> int:
        """Prove ``(x, y)`` is a row of ``table``; returns the output wire.

        ``input_ranged`` declares that ``x`` is already range-proven small
        (e.g. a strict committed output); when False, in strict mode the
        engine emits a bit-decomposition range proof on ``x - domain_lo``
        (once per variable) to keep the pair packing injective.
        ``bits_cost`` is the caller's estimate of what this activation
        would cost on the bit-decomposition path (for the report).
        """
        if self._finalized:
            raise LookupError("lookup engine already finalized")
        cs = self.cs
        p = cs.field.modulus
        st = self._state(table)
        y_value = table.lookup(x_value)  # raises out-of-domain (no wrap)

        if self.mode == "strict" and not input_ranged and x_var not in st.xbits:
            key = (x_var, table.domain_lo, table.domain_bits)
            proof = self._range_proofs.get(key)
            if proof is None:
                proof = self._range_proof(st, table, x_var, x_value, tag)
                self._range_proofs[key] = proof
            st.xbits[x_var] = proof

        y_var = cs.new_private(y_value)
        self._log(y_var, table.name)
        h_var = cs.new_private(None)  # assigned at finalize (needs alpha)
        self._log(h_var, table.name)

        # A = alpha - (x - lo) - 2^16 * (y + bias); A * h = 1.
        const = (table.domain_lo - PACK_BASE * table.y_bias) % p
        a = cs.lc()
        if self.mode == "strict":
            a.add_term(st.alpha_var, 1)
        else:
            const = (const + st.alpha_const) % p
        a.add_term(x_var, p - 1)
        a.add_term(y_var, p - PACK_BASE)
        if const:
            a.add_term(0, const)
        cs.enforce(
            a, cs.lc_variable(h_var), cs.lc_constant(1),
            tag=f"{tag}/lookup:{table.name}",
        )
        st.h_constraints.append(cs.num_constraints - 1)
        st.lookup_constraints += 1
        if self.mode == "lean":
            packed = table.pack(x_value, y_value)
            cs.assign(h_var, pow((st.alpha_const - packed) % p, p - 2, p))
        st.lookups.append((x_var, int(x_value), y_var, y_value, h_var))
        st.bits_equiv += (
            bits_cost
            if bits_cost is not None
            else self._default_bits_cost(table)
        )
        return y_var

    def _default_bits_cost(self, table: LookupTable) -> int:
        """Per-activation bit-decomposition estimate for the report."""
        if table.registry_name == "relu":
            # Sign select + sign proof + (bits-1) booleans + sign boolean.
            return 18 if self.mode == "strict" else 1
        # One-hot selector: indicators + sum-to-one + recompose + output.
        return table.size + 3 if self.mode == "strict" else 3

    def _range_proof(
        self, st: _TableState, table: LookupTable, x_var: int, x_value: int,
        tag: str,
    ) -> Tuple[Tuple[int, ...], int]:
        """Bit-decompose ``x - domain_lo`` (packing injectivity for raw inputs)."""
        cs = self.cs
        bits = table.domain_bits
        shifted = int(x_value) - table.domain_lo
        if not 0 <= shifted < (1 << bits):
            raise LookupError(
                f"lookup input {x_value} outside {table.name!r} domain"
            )
        recompose = cs.lc()
        bit_vars = []
        for i in range(bits):
            b = cs.new_private((shifted >> i) & 1)
            self._log(b, table.name)
            lc = cs.lc_variable(b)
            cs.enforce(
                lc, lc - cs.lc_constant(1), cs.lc(),
                tag=f"{tag}/lookup:{table.name}/xbit",
            )
            recompose.add_term(b, 1 << i)
            bit_vars.append(b)
        shifted_lc = cs.lc_variable(x_var) - cs.lc_constant(table.domain_lo)
        cs.enforce_equal(
            recompose, shifted_lc, tag=f"{tag}/lookup:{table.name}/xrange"
        )
        st.lookup_constraints += bits + 1
        return tuple(bit_vars), cs.num_constraints - 1

    # -- the shared table columns ------------------------------------------------------

    def finalize(self, mark=None) -> List[LookupBlock]:
        """Emit every table's column (multiplicities, g, sponge, sum check).

        ``mark`` is ``cs.mark_layer`` (or None): each table's column gets a
        ``lookup:<table>`` pseudo-layer so per-layer splitting and the work
        schedulers see the shared columns as their own unit.
        """
        if self._finalized:
            raise LookupError("lookup engine already finalized")
        self._finalized = True
        blocks = []
        for name in self._states:
            block = self._finalize_table(self._states[name], mark)
            self.cs.lookup_blocks.append(block)
            blocks.append(block)
        return blocks

    def _finalize_table(self, st: _TableState, mark) -> LookupBlock:
        cs = self.cs
        p = cs.field.modulus
        table = st.table
        start = cs.num_constraints
        packed_rows = table.packed_entries()
        size = len(packed_rows)

        counts = [0] * size
        pairs = []
        for x_var, x_val, y_var, y_val, h_var in st.lookups:
            j = x_val - table.domain_lo
            counts[j] += 1
            pairs.append(table.pack(x_val, y_val))

        m_vars = [cs.new_private(c) for c in counts]
        for v in m_vars:
            self._log(v, table.name)

        block = LookupBlock(
            table_name=table.name,
            registry_name=table.registry_name,
            domain_lo=table.domain_lo,
            y_bias=table.y_bias,
            mode=self.mode,
            packed_entries=packed_rows,
            alpha_var=st.alpha_var,
            alpha_const=st.alpha_const,
            x_vars=[l[0] for l in st.lookups],
            y_vars=[l[2] for l in st.lookups],
            h_vars=[l[4] for l in st.lookups],
            h_constraints=list(st.h_constraints),
            m_vars=m_vars,
            xbits=dict(st.xbits),
        )

        if self.mode == "strict":
            alpha = self._emit_sponge(block, pairs, counts)
        else:
            alpha = st.alpha_const

        # h witnesses: 1 / (alpha - p_i).  In lean mode these were assigned
        # at lookup time from the fixed challenge; recompute uniformly so a
        # strict alpha lands too.
        for (x_var, x_val, y_var, y_val, h_var), packed in zip(st.lookups, pairs):
            denom = (alpha - packed) % p
            if denom == 0:
                raise LookupError(
                    f"lookup challenge collision on table {table.name!r}"
                )
            cs.assign(h_var, pow(denom, p - 2, p))

        # Table column: (alpha - P_j) * g_j = m_j, one row each.
        for j, row in enumerate(packed_rows):
            denom = (alpha - row) % p
            if denom == 0:
                raise LookupError(
                    f"lookup challenge collision on table {table.name!r}"
                )
            g_val = (counts[j] * pow(denom, p - 2, p)) % p
            g_var = cs.new_private(g_val)
            self._log(g_var, table.name)
            a = cs.lc()
            if self.mode == "strict":
                a.add_term(block.alpha_var, 1)
                if row % p:  # packed row 0 would store a zero coefficient
                    a.add_term(0, (-row) % p)
            else:
                a.add_term(0, denom)
            cs.enforce(
                a, cs.lc_variable(g_var), cs.lc_variable(m_vars[j]),
                tag=f"lookup:{table.name}/row",
            )
            block.g_vars.append(g_var)
            block.g_constraints.append(cs.num_constraints - 1)

        # Sum check: sum h - sum g == 0.
        balance = cs.lc()
        for h_var in block.h_vars:
            balance.add_term(h_var, 1)
        for g_var in block.g_vars:
            balance.add_term(g_var, p - 1)
        cs.enforce_equal(balance, cs.lc(), tag=f"lookup:{table.name}/sum")
        block.sum_constraint = cs.num_constraints - 1

        st.lookup_constraints += cs.num_constraints - start
        if mark is not None:
            mark(f"lookup:{table.name}", start)
        return block

    def _emit_sponge(
        self, block: LookupBlock, pairs: Sequence[int], counts: Sequence[int]
    ) -> int:
        """In-circuit Fiat–Shamir: absorb pairs (chunked) then multiplicities.

        Returns the challenge value and assigns ``block.alpha_var``.  Each
        round is the x^5 MiMC permutation (3 constraints: square, fourth
        power, fifth power into the next state wire); the final round's
        output wire IS the pre-allocated alpha.
        """
        cs = self.cs
        p = cs.field.modulus
        table_consts = (block.y_bias * PACK_BASE - block.domain_lo) % p

        # Absorb schedule: (lc, value) per round.
        absorbs: List[Tuple[LinearCombination, int]] = []
        lookups = list(zip(block.x_vars, block.y_vars, pairs))
        for base in range(0, len(lookups), CHUNK_SIZE):
            chunk = lookups[base : base + CHUNK_SIZE]
            lc = cs.lc()
            const = 0
            value = 0
            for k, (x_var, y_var, packed) in enumerate(chunk):
                scale = pow(CHUNK_BASE, k, p)
                lc.add_term(x_var, scale)
                lc.add_term(y_var, (scale * PACK_BASE) % p)
                const = (const + scale * table_consts) % p
                value = (value + scale * packed) % p
            if const:
                lc.add_term(0, const)
            absorbs.append((lc, value))
        for m_var, count in zip(block.m_vars, counts):
            absorbs.append((cs.lc_variable(m_var), count % p))
        for _ in range(EXTRA_ROUNDS):
            absorbs.append((cs.lc(), 0))

        rc = round_constants(block.table_name, len(absorbs), p)
        state_lc = cs.lc()
        state_val = 0
        for r, (absorb_lc, absorb_val) in enumerate(absorbs):
            t_lc = state_lc + absorb_lc + cs.lc_constant(rc[r])
            t_val = (state_val + absorb_val + rc[r]) % p
            t2_val = (t_val * t_val) % p
            t4_val = (t2_val * t2_val) % p
            out_val = (t4_val * t_val) % p
            t2 = cs.new_private(t2_val)
            t4 = cs.new_private(t4_val)
            last = r == len(absorbs) - 1
            out = block.alpha_var if last else cs.new_private(out_val)
            self._log(t2, block.table_name)
            self._log(t4, block.table_name)
            if not last:
                self._log(out, block.table_name)
            first_cidx = cs.num_constraints
            cs.enforce(
                t_lc, t_lc.copy(), cs.lc_variable(t2),
                tag=f"lookup:{block.table_name}/sponge",
            )
            cs.enforce(
                cs.lc_variable(t2), cs.lc_variable(t2), cs.lc_variable(t4),
                tag=f"lookup:{block.table_name}/sponge",
            )
            cs.enforce(
                cs.lc_variable(t4), t_lc.copy(), cs.lc_variable(out),
                tag=f"lookup:{block.table_name}/sponge",
            )
            block.sponge_rounds.append((t2, t4, out, first_cidx))
            state_lc = cs.lc_variable(out)
            state_val = out_val
        cs.assign(block.alpha_var, state_val)
        return state_val

    # -- reporting ---------------------------------------------------------------------

    def report(self) -> LookupReport:
        rep = LookupReport(mode=self.mode)
        for name, st in self._states.items():
            rep.tables.append(
                {
                    "table": name,
                    "entries": st.table.size,
                    "lookups": len(st.lookups),
                    "lookup_constraints": st.lookup_constraints,
                    "bits_equivalent_constraints": st.bits_equiv,
                }
            )
            rep.total_lookups += len(st.lookups)
            rep.total_lookup_constraints += st.lookup_constraints
            rep.bits_equivalent_constraints += st.bits_equiv
        return rep


# -- audit-side structural verification ------------------------------------------------


def _terms(lc) -> Dict[int, int]:
    return {v: c for v, c in lc.terms.items() if c}


def verify_lookup_block(cs: ConstraintSystem, block: LookupBlock) -> Optional[str]:
    """Check a block's constraints are the canonical LogUp lowering.

    Returns ``None`` when the block is structurally sound, else a message
    describing the first defect.  The determinism auditor only *grants*
    output-slot uniqueness for verified blocks, so a broken lowering
    (skipped sum check, permuted table column, edited membership shape)
    degrades to under-constrained findings instead of passing silently.
    """
    p = cs.field.modulus
    n_c = cs.num_constraints

    if block.registry_name is not None:
        canonical = get_table(block.registry_name)
        if (
            canonical.packed_entries() != tuple(block.packed_entries)
            or canonical.domain_lo != block.domain_lo
            or canonical.y_bias != block.y_bias
        ):
            return (
                f"lookup table {block.table_name!r} does not match the "
                f"canonical {block.registry_name!r} table"
            )
    if not (
        len(block.x_vars) == len(block.y_vars) == len(block.h_vars)
        == len(block.h_constraints)
    ):
        return f"lookup block {block.table_name!r}: inconsistent lookup lists"
    if not (
        len(block.m_vars) == len(block.g_vars) == len(block.g_constraints)
        == len(block.packed_entries)
    ):
        return f"lookup block {block.table_name!r}: inconsistent table column"
    if block.mode == "strict" and block.alpha_var is None:
        return f"lookup block {block.table_name!r}: strict block without alpha wire"
    if block.mode == "lean" and block.alpha_const is None:
        return f"lookup block {block.table_name!r}: lean block without challenge"

    base_const = (block.domain_lo - PACK_BASE * block.y_bias) % p
    for k, cidx in enumerate(block.h_constraints):
        if not 0 <= cidx < n_c:
            return f"lookup block {block.table_name!r}: h constraint {cidx} missing"
        con = cs.constraints[cidx]
        expected = {
            block.x_vars[k]: p - 1,
            block.y_vars[k]: (p - PACK_BASE) % p,
        }
        if block.mode == "strict":
            expected[block.alpha_var] = 1
            const = base_const
        else:
            const = (base_const + block.alpha_const) % p
        if const:
            expected[0] = const
        if _terms(con.a) != {v: c for v, c in expected.items() if c}:
            return (
                f"lookup block {block.table_name!r}: membership constraint "
                f"{k} has unexpected shape"
            )
        if _terms(con.b) != {block.h_vars[k]: 1} or _terms(con.c) != {0: 1}:
            return (
                f"lookup block {block.table_name!r}: membership constraint "
                f"{k} does not bind its inverse wire"
            )

    for j, cidx in enumerate(block.g_constraints):
        if not 0 <= cidx < n_c:
            return f"lookup block {block.table_name!r}: row constraint {cidx} missing"
        con = cs.constraints[cidx]
        row = block.packed_entries[j]
        if block.mode == "strict":
            expected = {block.alpha_var: 1}
            if row % p:
                expected[0] = (-row) % p
        else:
            denom = (block.alpha_const - row) % p
            expected = {0: denom} if denom else {}
        if _terms(con.a) != expected:
            return (
                f"lookup block {block.table_name!r}: table row {j} has "
                f"unexpected packed value (permuted or edited column)"
            )
        if (
            _terms(con.b) != {block.g_vars[j]: 1}
            or _terms(con.c) != {block.m_vars[j]: 1}
        ):
            return (
                f"lookup block {block.table_name!r}: table row {j} does not "
                f"bind its multiplicity"
            )

    if block.sum_constraint is None or not 0 <= block.sum_constraint < n_c:
        return f"lookup block {block.table_name!r}: sum check missing"
    con = cs.constraints[block.sum_constraint]
    expected_sum: Dict[int, int] = {}
    for h in block.h_vars:
        expected_sum[h] = (expected_sum.get(h, 0) + 1) % p
    for g in block.g_vars:
        expected_sum[g] = (expected_sum.get(g, 0) + p - 1) % p
    expected_sum = {v: c for v, c in expected_sum.items() if c}
    if (
        _terms(con.a) != expected_sum
        or _terms(con.b) != {0: 1}
        or _terms(con.c)
    ):
        return f"lookup block {block.table_name!r}: sum check has unexpected shape"

    for x_var, (bit_vars, recompose_cidx) in block.xbits.items():
        if not 0 <= recompose_cidx < n_c:
            return (
                f"lookup block {block.table_name!r}: input range proof for "
                f"var {x_var} missing"
            )
        con = cs.constraints[recompose_cidx]
        expected = {b: (1 << i) % p for i, b in enumerate(bit_vars)}
        expected[x_var] = p - 1
        if block.domain_lo % p:
            expected[0] = block.domain_lo % p
        if (
            _terms(con.a) != {v: c for v, c in expected.items() if c}
            or _terms(con.b) != {0: 1}
            or _terms(con.c)
        ):
            return (
                f"lookup block {block.table_name!r}: input range proof for "
                f"var {x_var} has unexpected shape"
            )

    if block.mode == "strict":
        err = _verify_sponge(cs, block)
        if err:
            return err
    return None


def _expected_absorb_terms(
    block: LookupBlock, p: int
) -> List[Dict[int, int]]:
    """The A-side term dicts each sponge round must absorb (minus state/rc)."""
    table_consts = (block.y_bias * PACK_BASE - block.domain_lo) % p
    absorbs: List[Dict[int, int]] = []
    lookups = list(zip(block.x_vars, block.y_vars))
    for base in range(0, len(lookups), CHUNK_SIZE):
        chunk = lookups[base : base + CHUNK_SIZE]
        terms: Dict[int, int] = {}
        for k, (x_var, y_var) in enumerate(chunk):
            scale = pow(CHUNK_BASE, k, p)
            terms[x_var] = (terms.get(x_var, 0) + scale) % p
            terms[y_var] = (terms.get(y_var, 0) + scale * PACK_BASE) % p
            terms[0] = (terms.get(0, 0) + scale * table_consts) % p
        absorbs.append(terms)
    for m_var in block.m_vars:
        absorbs.append({m_var: 1})
    for _ in range(EXTRA_ROUNDS):
        absorbs.append({})
    return absorbs


def _verify_sponge(cs: ConstraintSystem, block: LookupBlock) -> Optional[str]:
    p = cs.field.modulus
    absorbs = _expected_absorb_terms(block, p)
    if len(block.sponge_rounds) != len(absorbs):
        return (
            f"lookup block {block.table_name!r}: sponge has "
            f"{len(block.sponge_rounds)} rounds, expected {len(absorbs)}"
        )
    rc = round_constants(block.table_name, len(absorbs), p)
    prev_state: Optional[int] = None
    for r, (t2, t4, out, first_cidx) in enumerate(block.sponge_rounds):
        if not (0 <= first_cidx and first_cidx + 2 < cs.num_constraints):
            return f"lookup block {block.table_name!r}: sponge round {r} missing"
        expected_t = dict(absorbs[r])
        if prev_state is not None:
            expected_t[prev_state] = (expected_t.get(prev_state, 0) + 1) % p
        expected_t[0] = (expected_t.get(0, 0) + rc[r]) % p
        expected_t = {v: c for v, c in expected_t.items() if c}
        c0 = cs.constraints[first_cidx]
        c1 = cs.constraints[first_cidx + 1]
        c2 = cs.constraints[first_cidx + 2]
        if (
            _terms(c0.a) != expected_t
            or _terms(c0.b) != expected_t
            or _terms(c0.c) != {t2: 1}
        ):
            return (
                f"lookup block {block.table_name!r}: sponge round {r} does "
                f"not absorb the recorded pairs"
            )
        if (
            _terms(c1.a) != {t2: 1}
            or _terms(c1.b) != {t2: 1}
            or _terms(c1.c) != {t4: 1}
        ):
            return f"lookup block {block.table_name!r}: sponge round {r} broken"
        if (
            _terms(c2.a) != {t4: 1}
            or _terms(c2.b) != expected_t
            or _terms(c2.c) != {out: 1}
        ):
            return f"lookup block {block.table_name!r}: sponge round {r} broken"
        prev_state = out
    if prev_state != block.alpha_var:
        return (
            f"lookup block {block.table_name!r}: sponge output is not the "
            f"challenge wire"
        )
    return None


# -- batch-sharing witness replay ------------------------------------------------------


def _signed(value: int, p: int) -> int:
    return value - p if value > p // 2 else value


def reassign_lookup_columns(cs: ConstraintSystem) -> None:
    """Recompute every lookup column after base wires were re-assigned.

    The §6.1 batch witness replay assigns image/trace-derived wires from
    the recipe, then calls this to rebuild the derived lookup witnesses:
    outputs, input range bits, multiplicities, sponge states, challenges,
    and both inverse columns — exactly the finalize-time computation,
    driven by the current values of the recorded input wires.
    """
    for block in cs.lookup_blocks:
        p = cs.field.modulus
        size = len(block.packed_entries)
        entry_y = [
            row // PACK_BASE - block.y_bias for row in block.packed_entries
        ]
        counts = [0] * size
        pairs = []
        for x_var, y_var in zip(block.x_vars, block.y_vars):
            x_raw = cs.value_of(x_var)
            if x_raw is None:
                raise LookupError(
                    f"lookup input var {x_var} unassigned during replay"
                )
            x_val = _signed(int(x_raw), p)
            j = x_val - block.domain_lo
            if not 0 <= j < size:
                raise LookupError(
                    f"lookup table {block.table_name!r}: input {x_val} outside "
                    f"domain — quantized activation out of range (rejected, "
                    f"not wrapped)"
                )
            y_val = entry_y[j]
            cs.assign(y_var, y_val % p)
            counts[j] += 1
            pairs.append(j + PACK_BASE * (y_val + block.y_bias))
            xb = block.xbits.get(x_var)
            if xb is not None:
                for i, b in enumerate(xb[0]):
                    cs.assign(b, (j >> i) & 1)
        for m_var, c in zip(block.m_vars, counts):
            cs.assign(m_var, c)

        if block.mode == "strict":
            alpha = _replay_sponge(cs, block, pairs, counts)
        else:
            alpha = block.alpha_const
        for h_var, packed in zip(block.h_vars, pairs):
            denom = (alpha - packed) % p
            if denom == 0:
                raise LookupError(
                    f"lookup challenge collision on table {block.table_name!r}"
                )
            cs.assign(h_var, pow(denom, p - 2, p))
        for g_var, row, c in zip(block.g_vars, block.packed_entries, counts):
            denom = (alpha - row) % p
            if denom == 0:
                raise LookupError(
                    f"lookup challenge collision on table {block.table_name!r}"
                )
            cs.assign(g_var, (c * pow(denom, p - 2, p)) % p)


def _replay_sponge(
    cs: ConstraintSystem, block: LookupBlock, pairs: Sequence[int],
    counts: Sequence[int],
) -> int:
    p = cs.field.modulus
    values: List[int] = []
    for base in range(0, len(pairs), CHUNK_SIZE):
        chunk = pairs[base : base + CHUNK_SIZE]
        values.append(
            sum(pow(CHUNK_BASE, k, p) * v for k, v in enumerate(chunk)) % p
        )
    values.extend(c % p for c in counts)
    values.extend(0 for _ in range(EXTRA_ROUNDS))
    rc = round_constants(block.table_name, len(values), p)
    state = 0
    for r, ((t2, t4, out, _), v) in enumerate(zip(block.sponge_rounds, values)):
        t = (state + v + rc[r]) % p
        t2_val = (t * t) % p
        t4_val = (t2_val * t2_val) % p
        state = (t4_val * t) % p
        cs.assign(t2, t2_val)
        cs.assign(t4, t4_val)
        cs.assign(out, state)
    return state
