"""Precomputed value tables for quantized 8-bit nonlinearities.

A :class:`LookupTable` is the *semantic contract* of a nonlinearity: the
complete list of legal ``(x, f(x))`` pairs over the function's quantized
input domain.  The plaintext forward pass (:meth:`LookupTable.apply`)
and the circuit lowering (:mod:`repro.lookup.argument`) read the same
table object, so "logits match the plain-Python forward pass" holds by
construction — there is no separate float path to drift from.

Each table carries the :class:`~repro.nn.quantize.QuantParams` of its
input and output tensors: the scale / zero-point metadata that defines
what real-valued function the integer table encodes.  Out-of-domain
inputs *raise* (never wrap): the table domain is exactly the range the
lookup argument proves membership in, so an input outside it is a
soundness event, not a modular-arithmetic detail.

Packing.  The argument combines a pair into one field element as

    packed(x, y) = (x - domain_lo) + 2^16 * (y + y_bias)

``domain_lo``/``y_bias`` shift both components into ``[0, 2^16)``, so
the packing is injective for any in-range pair — given that the input
side is range-proven (by the upstream strict output-commitment range
proof, or by the per-lookup input range proof the engine emits for raw
inputs such as embedding token ids).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.quantize import QuantParams

# Base used to pack (x, y) pairs into one integer: both the shifted input
# and the biased output must stay below PACK_BASE for injectivity.
PACK_BASE = 1 << 16


@dataclass(frozen=True)
class LookupTable:
    """A complete quantized-function table ``f(domain_lo + i) = entries[i]``.

    ``entries[i] + y_bias`` must lie in ``[0, PACK_BASE)``; the stored
    ``entries`` themselves are the *semantic* output values (signed where
    the function is signed, e.g. embedding rows).
    """

    name: str
    domain_lo: int
    entries: Tuple[int, ...]
    y_bias: int = 0
    # Set for registry builtins: lets the circuit auditor recompute the
    # canonical table and reject a circuit whose table column was permuted
    # or edited, even if the block metadata was tampered consistently.
    registry_name: Optional[str] = None
    in_params: QuantParams = field(default_factory=lambda: QuantParams(scale=1.0))
    out_params: QuantParams = field(default_factory=lambda: QuantParams(scale=1.0))

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"table {self.name!r} is empty")
        if len(self.entries) > PACK_BASE:
            raise ValueError(
                f"table {self.name!r} has {len(self.entries)} entries; the "
                f"pair packing supports at most {PACK_BASE}"
            )
        for i, y in enumerate(self.entries):
            if not 0 <= y + self.y_bias < PACK_BASE:
                raise ValueError(
                    f"table {self.name!r} entry {i} ({y} + bias {self.y_bias}) "
                    f"outside [0, {PACK_BASE})"
                )

    @property
    def size(self) -> int:
        return len(self.entries)

    @property
    def domain_hi(self) -> int:
        return self.domain_lo + self.size - 1

    @property
    def domain_bits(self) -> int:
        """Bits needed for the shifted input ``x - domain_lo``."""
        return max(1, (self.size - 1).bit_length())

    def lookup(self, x: int) -> int:
        """``f(x)`` for one integer input; raises when out of domain."""
        idx = int(x) - self.domain_lo
        if not 0 <= idx < self.size:
            raise ValueError(
                f"lookup table {self.name!r}: input {int(x)} outside domain "
                f"[{self.domain_lo}, {self.domain_hi}] — quantized activation "
                f"out of range (rejected, not wrapped)"
            )
        return int(self.entries[idx])

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` with the same reject-don't-wrap rule."""
        arr = np.asarray(x, dtype=np.int64)
        idx = arr - self.domain_lo
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.size):
            bad = arr.reshape(-1)[
                int(np.argmax((idx < 0) | (idx >= self.size)))
            ]
            raise ValueError(
                f"lookup table {self.name!r}: input {int(bad)} outside domain "
                f"[{self.domain_lo}, {self.domain_hi}] — quantized activation "
                f"out of range (rejected, not wrapped)"
            )
        table = np.asarray(self.entries, dtype=np.int64)
        return table[idx]

    def pack(self, x: int, y: int) -> int:
        """The field-element encoding of one (input, output) pair."""
        return (int(x) - self.domain_lo) + PACK_BASE * (int(y) + self.y_bias)

    def packed_entries(self) -> Tuple[int, ...]:
        """Every legal packed pair, in domain order (the table column)."""
        return tuple(
            i + PACK_BASE * (y + self.y_bias)
            for i, y in enumerate(self.entries)
        )


# -- builtin tables ---------------------------------------------------------------
#
# All builtins are pure-integer functions of the quantized input; scales
# are powers of two so the requantization story matches the rest of the
# pipeline.  Domains cover the strict gadget budget's committed-output
# range ([-255, 255] signed / [0, 255] unsigned).

# Fixed-point scale of the signed activations feeding gelu/exp (1 unit =
# 1/32 in real terms), and of the recip/rsqrt fixed-point outputs.
ACT_SCALE = 32
RECIP_SHIFT = 14  # recip(x) = floor(2^14 / x)
RSQRT_SHIFT = 11  # rsqrt(v) = round(2^11 / sqrt(v + 1))


def relu_table() -> LookupTable:
    """ReLU over the signed committed-output range [-256, 255]."""
    return LookupTable(
        name="relu8",
        domain_lo=-256,
        entries=tuple(max(0, x) for x in range(-256, 256)),
        registry_name="relu",
        in_params=QuantParams(scale=1.0),
        out_params=QuantParams(scale=1.0),
    )


def gelu_table() -> LookupTable:
    """Quantized GELU: y = clamp(round(gelu(x / 32) * 32), 0, 255).

    The small negative dip of real GELU (min ~ -0.17) quantizes below one
    output unit at this scale and is clamped to keep outputs uint8 for
    downstream layers.
    """
    entries = []
    for x in range(-256, 256):
        real = x / ACT_SCALE
        g = 0.5 * real * (1.0 + math.erf(real / math.sqrt(2.0)))
        entries.append(min(255, max(0, round(g * ACT_SCALE))))
    return LookupTable(
        name="gelu8",
        domain_lo=-256,
        entries=tuple(entries),
        registry_name="gelu",
        in_params=QuantParams.pow2(-5),  # 1/ACT_SCALE
        out_params=QuantParams.pow2(-5),
    )


def exp_table() -> LookupTable:
    """Softmax numerator: y = round(127 * 2^((x - 255) / 32)).

    Monotone in x with maximum 127 at the top of the domain, so a row of
    attention scores maps to numerators whose sum fits comfortably in the
    row-sum requantization.  Base 2 keeps the table a pure function of
    integer x (no transcendental library variance).
    """
    entries = tuple(
        round(127 * 2.0 ** ((x - 255) / ACT_SCALE)) for x in range(-256, 256)
    )
    return LookupTable(
        name="exp8",
        domain_lo=-256,
        entries=entries,
        registry_name="exp",
        in_params=QuantParams.pow2(-5),  # 1/ACT_SCALE
        out_params=QuantParams(scale=1.0 / 127.0),
    )


def recip_table() -> LookupTable:
    """Fixed-point reciprocal of a uint8: y = floor(2^14 / max(x, 1)).

    recip(0) = 2^14 (the max) so a softmax row whose numerator sum
    requantized to zero degrades gracefully instead of dividing by zero.
    """
    entries = tuple((1 << RECIP_SHIFT) // max(x, 1) for x in range(256))
    return LookupTable(
        name="recip8",
        domain_lo=0,
        entries=entries,
        registry_name="recip",
        in_params=QuantParams(scale=1.0),
        out_params=QuantParams.pow2(-RECIP_SHIFT),
    )


def rsqrt_table() -> LookupTable:
    """Fixed-point reciprocal square root: y = round(2^11 / sqrt(x + 1)).

    The +1 regularizer doubles as LayerNorm's epsilon: a zero-variance
    row normalizes by 1 instead of dividing by zero.
    """
    entries = tuple(
        round((1 << RSQRT_SHIFT) / math.sqrt(x + 1)) for x in range(256)
    )
    return LookupTable(
        name="rsqrt8",
        domain_lo=0,
        entries=entries,
        registry_name="rsqrt",
        in_params=QuantParams(scale=1.0),
        out_params=QuantParams.pow2(-RSQRT_SHIFT),
    )


BUILTIN_TABLES: Dict[str, Callable[[], LookupTable]] = {
    "relu": relu_table,
    "gelu": gelu_table,
    "exp": exp_table,
    "recip": recip_table,
    "rsqrt": rsqrt_table,
}

_CACHE: Dict[str, LookupTable] = {}


def get_table(name: str) -> LookupTable:
    """The builtin table registry (memoized — tables are immutable)."""
    table = _CACHE.get(name)
    if table is None:
        builder = BUILTIN_TABLES.get(name)
        if builder is None:
            raise KeyError(
                f"unknown lookup table {name!r}; builtins: "
                f"{sorted(BUILTIN_TABLES)}"
            )
        table = _CACHE[name] = builder()
    return table
