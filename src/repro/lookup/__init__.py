"""`repro.lookup` — lookup-argument gadgets for 8-bit nonlinearities.

ZENO's type-based gadgets stop at CNN nonlinearities: every activation
pays per-element bit-decomposition constraints, which makes softmax,
GELU, and LayerNorm — and therefore transformers — unaffordable.  This
package adds the primitive the zkML field converged on instead: a
*lookup argument* proving that each ``(input, output)`` pair of a
nonlinearity is a row of a precomputed table.

* :mod:`repro.lookup.table`    — :class:`LookupTable` (a quantized
  function's full value table with its :class:`~repro.nn.quantize.\
  QuantParams` metadata) plus the builtin registry: ``relu``, ``gelu``,
  ``exp`` (softmax numerator), ``recip``, ``rsqrt``;
* :mod:`repro.lookup.argument` — the :class:`LookupEngine` lowering a
  LogUp-style (logarithmic-derivative) multiplicity argument to R1CS
  through the existing :class:`~repro.core.circuit.gadgets.\
  GadgetEmitter` conventions, with per-table columns shared by every
  activation in the circuit, witness generation for the lookup columns
  (inverses, multiplicities, Fiat–Shamir sponge states), and the
  :class:`LookupBlock` metadata the `repro.analysis` auditors and the
  §6.1 batch-sharing witness replay consume.

See docs/ARCHITECTURE.md §13 for the design and the soundness
discussion (strict mode binds the challenge to the witness via an
in-circuit MiMC sponge; lean mode uses a fixed challenge and is — like
every lean gadget — paper-accounting only, not sound).
"""

from repro.lookup.argument import (
    LookupBlock,
    LookupEngine,
    LookupError,
    LookupReport,
    reassign_lookup_columns,
    verify_lookup_block,
)
from repro.lookup.table import (
    BUILTIN_TABLES,
    LookupTable,
    get_table,
)

__all__ = [
    "BUILTIN_TABLES",
    "LookupBlock",
    "LookupEngine",
    "LookupError",
    "LookupReport",
    "LookupTable",
    "get_table",
    "reassign_lookup_columns",
    "verify_lookup_block",
]
