"""Boundary commitments for per-layer proving.

Two commitment modes bind the activations crossing a layer boundary:

* ``public`` (default) — the boundary values themselves are public inputs
  of both adjacent instances, and the commitment is a SHA-256 hash over
  their canonical 32-byte big-endian encodings, computed *outside* the
  circuit.  Soundness comes from Groth16 binding the public-input vector:
  the aggregate verifier recomputes both sides' commitments from the
  claimed publics, so layer ``k``'s outputs and layer ``k+1``'s inputs
  must be the same tuple (up to a SHA-256 collision).  Costs zero extra
  constraints — the instance circuits stay exactly as large as the rows
  they inherit.

* ``hashed`` (opt-in) — the boundary values stay *private* and each
  instance absorbs them into an in-circuit MiMC-x⁵ sponge whose final
  state is the instance's single digest public input.  Costs 3
  constraints per absorbed value (plus finalization rounds) but keeps
  intermediate activations hidden from the aggregate artifact — the shape
  recursive accumulation schemes need.

Either way the artifact-level commitment bytes are a SHA-256 over the
claimed boundary *slot values* (in ``hashed`` mode that tuple is just the
one digest element), so the fold/verify chain logic is mode-independent.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

BOUNDARY_DOMAIN = b"zeno.aggregate.boundary.v1"
MIMC_DOMAIN = b"zeno.aggregate.mimc.v1"

# Finalization rounds absorbed with value 0 after the payload, so the
# digest of a prefix is never the digest of the full tuple.
MIMC_EXTRA_ROUNDS = 2


def boundary_commitment(values: Sequence[int]) -> bytes:
    """SHA-256 over the canonical encoding of a boundary value tuple.

    Length-prefixed and domain-separated: ``H(dom || u32(n) || v_1 ||
    ... || v_n)`` with each value as 32 big-endian bytes.  Equal digests
    imply equal tuples up to SHA-256 collisions, which is what lets the
    aggregate verifier check layer-to-layer consistency without
    re-proving anything.
    """
    h = hashlib.sha256(BOUNDARY_DOMAIN)
    h.update(len(values).to_bytes(4, "big"))
    for value in values:
        h.update(int(value).to_bytes(32, "big"))
    return h.digest()


def mimc_round_constants(count: int, modulus: int) -> List[int]:
    """Deterministic per-round constants: ``sha256(dom || u32(i)) mod p``."""
    out: List[int] = []
    for i in range(count):
        digest = hashlib.sha256(MIMC_DOMAIN + i.to_bytes(4, "big")).digest()
        out.append(int.from_bytes(digest, "big") % modulus)
    return out


def mimc_digest(
    values: Sequence[int], modulus: int, extra_rounds: int = MIMC_EXTRA_ROUNDS
) -> int:
    """Native evaluation of the in-circuit sponge (for witness refresh).

    One round per absorbed value: ``state' = (state + v + rc_i)^5``.
    x⁵ is a permutation of BN254 Fr (``gcd(5, r-1) = 1``), which is what
    makes each round invertible and the construction a sponge rather than
    a lossy fold.  ``extra_rounds`` rounds absorbing 0 finalize.
    """
    rounds = len(values) + extra_rounds
    constants = mimc_round_constants(rounds, modulus)
    state = 0
    for i in range(rounds):
        v = int(values[i]) if i < len(values) else 0
        t = (state + v + constants[i]) % modulus
        t2 = (t * t) % modulus
        t4 = (t2 * t2) % modulus
        state = (t4 * t) % modulus
    return state
