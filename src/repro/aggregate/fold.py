"""Fold per-layer proof sets into one verifiable `AggregateProof` artifact.

The artifact is self-contained canonical JSON: per-layer verifying keys
(hex of :func:`repro.snark.serialize.serialize_verifying_key`), the
public-input layout (which slots are model-level publics and which form
the boundary tuples), and one or more *inferences* — each a full set of
per-layer proofs + claimed publics + chained boundary commitments.

Verification is three cheap structural passes plus ONE cryptographic
check:

1. **chain** — for every inference and boundary ``k``, the commitment
   recomputed from layer ``k``'s claimed output slots equals both the
   stored commitment and the one recomputed from layer ``k+1``'s claimed
   input slots (SHA-256 over the canonical tuple encoding, see
   :mod:`repro.aggregate.commit`);
2. **globals** — layers claiming the same model-level public agree;
3. **pairing** — a single :func:`repro.snark.groth16.batch_verify_multi`
   call over every (vk, claims) group: ``P + 3·L`` pairings for ``P``
   proofs across ``L`` layers, vs ``4·P`` for independent verification —
   the sub-linear growth `BENCH_aggregate.json` tracks.

Soundness of the chain: Groth16 binds each instance's public-input
vector, commitments are collision-resistant hashes of those vectors'
boundary slots, and the slot tuples on both sides of a cut are built in
the same canonical (ascending original variable) order — so accepted
chained instances imply one consistent witness for the unsplit system.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.aggregate.commit import boundary_commitment
from repro.aggregate.split import SplitModel
from repro.ec.backend import GroupBackend, RealBN254Backend, SimulatedBackend
from repro.ec.curve import Point
from repro.snark import groth16
from repro.snark.keys import SetupResult, VerifyingKey
from repro.snark.proof import Proof
from repro.snark.serialize import (
    SerializationError,
    deserialize_proof,
    deserialize_verifying_key,
    serialize_proof,
    serialize_verifying_key,
)

AGGREGATE_VERSION = 1


class AggregateError(ValueError):
    """Raised for malformed aggregate artifacts."""


@dataclass
class AggregateVerdict:
    """Outcome of one aggregate verification."""

    ok: bool
    reason: str = ""
    num_layers: int = 0
    num_proofs: int = 0
    num_pairings: int = 0  # pairings the single batched check performed
    naive_pairings: int = 0  # what per-proof verification would have cost
    # Model-level public claims recovered per inference (slot-consistent
    # across layers by check 2); for a single inference this is the NN
    # prediction the artifact attests to.
    globals_per_inference: List[Dict[int, int]] = dataclass_field(
        default_factory=list
    )

    @property
    def globals_out(self) -> Dict[int, int]:
        return self.globals_per_inference[0] if self.globals_per_inference else {}

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class AggregateProof:
    """One artifact aggregating per-layer proofs for >= 1 inferences."""

    mode: str
    model: str
    crs_seed: Optional[int]
    layers: List[Dict[str, Any]]
    inferences: List[Dict[str, Any]]
    version: int = AGGREGATE_VERSION

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": self.version,
            "mode": self.mode,
            "model": self.model,
            "crs_seed": self.crs_seed,
            "layers": self.layers,
            "inferences": self.inferences,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "AggregateProof":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AggregateError(f"invalid aggregate JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise AggregateError("aggregate artifact must be a JSON object")
        version = payload.get("version")
        if version != AGGREGATE_VERSION:
            raise AggregateError(f"unsupported aggregate version {version!r}")
        for key in ("mode", "model", "layers", "inferences"):
            if key not in payload:
                raise AggregateError(f"aggregate artifact missing {key!r}")
        return cls(
            mode=payload["mode"],
            model=payload["model"],
            crs_seed=payload.get("crs_seed"),
            layers=payload["layers"],
            inferences=payload["inferences"],
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AggregateProof":
        with open(path) as fh:
            return cls.from_json(fh.read())


def _layer_meta(split: SplitModel, setups: Sequence[SetupResult]) -> List[dict]:
    layers = []
    for inst, setup in zip(split.instances, setups):
        layers.append(
            {
                "name": inst.name,
                "num_public": inst.cs.num_public,
                "vk": serialize_verifying_key(setup.verifying_key).hex(),
                "global_slots": [list(pair) for pair in inst.global_slots],
                "in_slots": list(inst.in_slots),
                "out_slots": list(inst.out_slots),
            }
        )
    return layers


def _inference_record(
    split: SplitModel, proofs: Sequence[Proof]
) -> Dict[str, Any]:
    """Package one inference's proofs + publics + boundary commitments.

    Reads the *current* witness values off the split instances, so call
    it while the split still holds the inference it was proved with.
    """
    publics = [inst.cs.public_values() for inst in split.instances]
    boundaries = []
    for k in range(split.num_instances - 1):
        out_vals = [publics[k][s] for s in split.instances[k].out_slots]
        boundaries.append(boundary_commitment(out_vals).hex())
    return {
        "proofs": [serialize_proof(proof).hex() for proof in proofs],
        "publics": [[str(v) for v in vals] for vals in publics],
        "boundaries": boundaries,
    }


def fold(
    split: SplitModel,
    setups: Sequence[SetupResult],
    proof_sets: Sequence[Sequence[Proof]],
    crs_seed: Optional[int] = None,
    publics_sets: Optional[Sequence[Sequence[Sequence[int]]]] = None,
) -> AggregateProof:
    """Fold per-layer proof sets into one aggregate artifact.

    ``proof_sets`` holds one proof list (len == num instances) per
    inference.  With a single inference the publics are read from the
    split's current witness; for multiple inferences pass
    ``publics_sets`` (per inference, per layer) captured at prove time.
    """
    if len(setups) != split.num_instances:
        raise AggregateError(
            f"expected {split.num_instances} setups, got {len(setups)}"
        )
    layers = _layer_meta(split, setups)
    inferences = []
    for i, proofs in enumerate(proof_sets):
        if len(proofs) != split.num_instances:
            raise AggregateError(
                f"inference {i}: expected {split.num_instances} proofs, "
                f"got {len(proofs)}"
            )
        if publics_sets is not None:
            record = _record_from_publics(split, proofs, publics_sets[i])
        else:
            record = _inference_record(split, proofs)
        inferences.append(record)
    return AggregateProof(
        mode=split.mode,
        model=split.source_name,
        crs_seed=crs_seed,
        layers=layers,
        inferences=inferences,
    )


def _record_from_publics(
    split: SplitModel,
    proofs: Sequence[Proof],
    publics: Sequence[Sequence[int]],
) -> Dict[str, Any]:
    if len(publics) != split.num_instances:
        raise AggregateError("publics/instances length mismatch")
    boundaries = []
    for k in range(split.num_instances - 1):
        out_vals = [publics[k][s] for s in split.instances[k].out_slots]
        boundaries.append(boundary_commitment(out_vals).hex())
    return {
        "proofs": [serialize_proof(proof).hex() for proof in proofs],
        "publics": [[str(v) for v in vals] for vals in publics],
        "boundaries": boundaries,
    }


# -- verification ----------------------------------------------------------


def _detect_backend(vk: VerifyingKey) -> GroupBackend:
    if isinstance(vk.alpha_g1, Point):
        return RealBN254Backend()
    return SimulatedBackend()


def _parse_layers(
    agg: AggregateProof,
) -> Tuple[List[VerifyingKey], List[dict]]:
    vks = []
    for i, layer in enumerate(agg.layers):
        try:
            vk = deserialize_verifying_key(bytes.fromhex(layer["vk"]))
        except (SerializationError, ValueError, KeyError, TypeError) as exc:
            raise AggregateError(f"layer {i}: bad verifying key: {exc}")
        if vk.num_public != layer.get("num_public"):
            raise AggregateError(
                f"layer {i}: vk has {vk.num_public} publics, "
                f"metadata says {layer.get('num_public')}"
            )
        vks.append(vk)
    return vks, agg.layers


def verify_aggregate(
    agg: AggregateProof,
    backend: Optional[GroupBackend] = None,
    rng=None,
) -> AggregateVerdict:
    """Check one aggregate artifact: chain, globals, one batched pairing.

    Never raises on malformed input — every defect (bad hex, wrong
    lengths, broken chain, inconsistent globals, failed pairing) comes
    back as a falsy :class:`AggregateVerdict` with a reason, so callers
    can treat tampered artifacts and invalid proofs uniformly.
    """
    try:
        return _verify(agg, backend, rng)
    except AggregateError as exc:
        return AggregateVerdict(ok=False, reason=str(exc))


def _verify(
    agg: AggregateProof, backend: Optional[GroupBackend], rng
) -> AggregateVerdict:
    if agg.mode not in ("public", "hashed"):
        raise AggregateError(f"unknown boundary mode {agg.mode!r}")
    if not agg.layers:
        raise AggregateError("aggregate has no layers")
    if not agg.inferences:
        raise AggregateError("aggregate has no inferences")
    vks, layers = _parse_layers(agg)
    # Chain termination: a truncated artifact (a prefix or suffix of the
    # real layer sequence) is internally consistent, but its endpoints
    # betray the cut — a genuine first layer consumes no boundary and a
    # genuine last layer feeds none.  (Substituted layer *metadata* is
    # out of scope here, exactly as a substituted verifying key is for
    # plain Groth16: the verifier must hold authentic layer metadata.)
    if layers[0].get("in_slots"):
        raise AggregateError("first layer claims boundary inputs (truncated?)")
    if layers[-1].get("out_slots"):
        raise AggregateError(
            "last layer has dangling boundary outputs (truncated?)"
        )
    backend = backend or _detect_backend(vks[0])
    p = backend.scalar_field.modulus
    num_layers = len(layers)

    claims_per_layer: List[List[Tuple[List[int], Proof]]] = [
        [] for _ in range(num_layers)
    ]
    globals_per_inference: List[Dict[int, int]] = []
    for i, inference in enumerate(agg.inferences):
        globals_out: Dict[int, int] = {}
        globals_per_inference.append(globals_out)
        proofs_hex = inference.get("proofs", [])
        publics_str = inference.get("publics", [])
        boundaries_hex = inference.get("boundaries", [])
        if len(proofs_hex) != num_layers or len(publics_str) != num_layers:
            raise AggregateError(
                f"inference {i}: expected {num_layers} proofs/publics"
            )
        if len(boundaries_hex) != num_layers - 1:
            raise AggregateError(
                f"inference {i}: expected {num_layers - 1} boundary "
                f"commitments, got {len(boundaries_hex)}"
            )
        publics: List[List[int]] = []
        for k, vals in enumerate(publics_str):
            if len(vals) != layers[k]["num_public"]:
                raise AggregateError(
                    f"inference {i} layer {k}: wrong public count"
                )
            try:
                parsed = [int(v) for v in vals]
            except (ValueError, TypeError) as exc:
                raise AggregateError(
                    f"inference {i} layer {k}: bad public value: {exc}"
                )
            for v in parsed:
                if not 0 <= v < p:
                    raise AggregateError(
                        f"inference {i} layer {k}: public input out of range"
                    )
            publics.append(parsed)
        # 1. chain: out-commitment(k) == stored == in-commitment(k+1).
        for k in range(num_layers - 1):
            out_vals = [publics[k][s] for s in layers[k]["out_slots"]]
            in_vals = [publics[k + 1][s] for s in layers[k + 1]["in_slots"]]
            stored = boundaries_hex[k]
            out_hex = boundary_commitment(out_vals).hex()
            in_hex = boundary_commitment(in_vals).hex()
            if out_hex != stored or in_hex != stored:
                raise AggregateError(
                    f"inference {i}: boundary {k} commitment chain broken"
                )
        # 2. model-level publics must agree wherever claimed.
        for k, layer in enumerate(layers):
            for slot, global_index in layer.get("global_slots", []):
                value = publics[k][slot]
                prior = globals_out.get(global_index)
                if prior is not None and prior != value:
                    raise AggregateError(
                        f"inference {i}: global public {global_index} "
                        f"claimed inconsistently across layers"
                    )
                globals_out[global_index] = value
        for k in range(num_layers):
            try:
                proof = deserialize_proof(bytes.fromhex(proofs_hex[k]))
            except (SerializationError, ValueError, TypeError) as exc:
                raise AggregateError(
                    f"inference {i} layer {k}: bad proof: {exc}"
                )
            claims_per_layer[k].append((publics[k], proof))

    # 3. the single cryptographic check: one grouped multi-pairing.  A
    # proof that deserialized but carries wrong-group/off-curve elements
    # makes the backend raise; that is a rejection, not an error.
    groups = list(zip(vks, claims_per_layer))
    num_proofs = num_layers * len(agg.inferences)
    try:
        ok = groth16.batch_verify_multi(groups, backend, rng=rng)
    except (ValueError, TypeError) as exc:
        raise AggregateError(f"malformed proof or key: {exc}")
    return AggregateVerdict(
        ok=ok,
        reason="" if ok else "batched pairing check failed",
        num_layers=num_layers,
        num_proofs=num_proofs,
        num_pairings=num_proofs + 3 * num_layers,
        naive_pairings=4 * num_proofs,
        globals_per_inference=globals_per_inference,
    )
