"""Split a compiled constraint system at layer boundaries.

``split_model`` turns one monolithic :class:`ConstraintSystem` into an
ordered list of independent per-layer instances, reusing the §5.2 layer
partition (:func:`repro.core.schedule.executor.plan_layer_slices`) so the
cut points are exactly the compiler's layer provenance — rows outside
every tagged range (knit flushes, trailing gadgets) become anonymous
filler segments, so coverage is total and no constraint is dropped.

A private variable whose uses span several segments is a *boundary*
variable.  Boundary ``k`` (between instance ``k`` and ``k+1``) is the
ordered tuple of variables alive across that cut — first use in segment
``<= k``, last use ``> k``.  Instance ``k``'s input set is boundary
``k-1`` and its output set is boundary ``k``; a variable alive across
both cuts (used or merely passing through) occupies exactly ONE local
slot shared by both sets, so input/output agreement inside one instance
is structural rather than proved.

In ``public`` mode boundary variables become local public inputs (bound
by Groth16's IC term); in ``hashed`` mode they stay private and each
side's tuple is absorbed into an in-circuit MiMC sponge (see
:mod:`repro.aggregate.commit`) whose digest is the instance's public
input.  Either way, satisfying every instance with chained boundary
claims is equivalent to satisfying the original system: the union of the
instances' rows IS the original row set, and the chain pins every
crossing variable to a single value along the whole path from its
defining segment to its last consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregate.commit import (
    MIMC_EXTRA_ROUNDS,
    mimc_round_constants,
)
from repro.core.schedule.executor import plan_layer_slices
from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE, LinearCombination
from repro.r1cs.system import ConstraintSystem


class SplitError(ValueError):
    """Raised when a constraint system cannot be split as requested."""


@dataclass
class SpongeRound:
    """One MiMC round's wires, stored so witness refresh can recompute."""

    value_var: Optional[int]  # local signed index absorbed (None = pad 0)
    constant: int
    w2: int  # local private wires: t², t⁴, t⁵ (the next state)
    w4: int
    w5: int


@dataclass
class LayerInstance:
    """One independent Groth16 instance covering a contiguous row range."""

    name: str
    index: int
    row_start: int
    row_stop: int
    cs: ConstraintSystem
    # Local-slot provenance: original signed index per local public slot
    # (slot i <-> local variable -(i+1)) and per local private (entry i
    # <-> local variable i+1).  ``None`` marks synthesized variables —
    # sponge digests/wires — recomputed by :meth:`refresh_from`.
    public_map: List[Optional[int]] = dataclass_field(default_factory=list)
    private_map: List[Optional[int]] = dataclass_field(default_factory=list)
    # (local slot, original public index >= 0) for model-level publics.
    global_slots: List[Tuple[int, int]] = dataclass_field(default_factory=list)
    # Local public slots forming the input/output boundary tuples, in
    # canonical (ascending original variable) order.
    in_slots: List[int] = dataclass_field(default_factory=list)
    out_slots: List[int] = dataclass_field(default_factory=list)
    # hashed mode only: sponge recomputation plans per side.
    in_sponge: List[SpongeRound] = dataclass_field(default_factory=list)
    out_sponge: List[SpongeRound] = dataclass_field(default_factory=list)

    @property
    def num_rows(self) -> int:
        return self.row_stop - self.row_start

    def public_values(self) -> List[int]:
        return self.cs.public_values()

    def boundary_values(self, slots: Sequence[int]) -> List[int]:
        publics = self.cs.public_values()
        return [publics[s] for s in slots]

    def refresh_from(self, orig: ConstraintSystem) -> None:
        """Re-pull witness values from the original system (§6.1 reuse).

        After :meth:`repro.core.reuse.batch.BatchProver.assign_image`
        re-assigns the shared system for a new image, this maps the fresh
        values into the instance and recomputes any sponge wires/digests.
        """
        for slot, orig_var in enumerate(self.public_map):
            if orig_var is not None:
                self.cs.assign(-(slot + 1), orig.value_of(orig_var))
        for i, orig_var in enumerate(self.private_map):
            if orig_var is not None:
                self.cs.assign(i + 1, orig.value_of(orig_var))
        self._replay_sponges()

    def _replay_sponges(self) -> None:
        if not self.in_sponge and not self.out_sponge:
            return
        p = self.cs.field.modulus
        digest_slots = {s for s in self.in_slots + self.out_slots}
        for rounds, slots in (
            (self.in_sponge, self.in_slots),
            (self.out_sponge, self.out_slots),
        ):
            if not rounds:
                continue
            state = 0
            for rnd in rounds:
                v = (
                    self.cs.value_of(rnd.value_var)
                    if rnd.value_var is not None
                    else 0
                )
                t = (state + v + rnd.constant) % p
                t2 = (t * t) % p
                t4 = (t2 * t2) % p
                state = (t4 * t) % p
                self.cs.assign(rnd.w2, t2)
                self.cs.assign(rnd.w4, t4)
                self.cs.assign(rnd.w5, state)
            (digest_slot,) = slots
            assert digest_slot in digest_slots
            self.cs.assign(-(digest_slot + 1), state)


@dataclass
class SplitModel:
    """The ordered per-layer instances plus the boundary variable tuples."""

    mode: str  # "public" | "hashed"
    source_name: str
    instances: List[LayerInstance]
    # boundaries[k] = original private variables alive across the cut
    # between instance k and k+1, ascending — the commitment pre-image
    # order both sides use.
    boundaries: List[Tuple[int, ...]]

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def refresh_from(self, orig: ConstraintSystem) -> None:
        for inst in self.instances:
            inst.refresh_from(orig)

    def total_constraints(self) -> int:
        return sum(inst.cs.num_constraints for inst in self.instances)


def _merge_segments(
    slices: Sequence, num_segments: int
) -> List[Tuple[str, int, int]]:
    """Greedy proportional merge of ordered slices into ``num_segments``
    contiguous groups, balancing constraint-row counts."""
    segments: List[Tuple[str, int, int]] = []
    total = sum(s.num_rows for s in slices)
    consumed = 0
    group: List = []
    for pos, s in enumerate(slices):
        group.append(s)
        consumed += s.num_rows
        remaining_groups = num_segments - len(segments)
        slices_left = len(slices) - pos - 1
        # Cut when the cumulative row count reaches this group's
        # proportional share — or when every remaining slice must become
        # its own group to still reach ``num_segments``.
        hit_share = consumed * num_segments >= total * (len(segments) + 1)
        must_cut = slices_left == remaining_groups - 1
        if (
            remaining_groups > 1
            and slices_left >= remaining_groups - 1
            and (hit_share or must_cut)
        ):
            segments.append(_group_to_segment(group))
            group = []
    if group:
        segments.append(_group_to_segment(group))
    return segments


def _group_to_segment(group: Sequence) -> Tuple[str, int, int]:
    if len(group) == 1:
        name = group[0].name
    else:
        name = f"{group[0].name}..{group[-1].name}"
    return (name, group[0].start, group[-1].stop)


def split_model(
    cs: ConstraintSystem,
    mode: str = "public",
    num_segments: Optional[int] = None,
    extra_rounds: int = MIMC_EXTRA_ROUNDS,
) -> SplitModel:
    """Split ``cs`` into independent per-layer instances.

    ``num_segments`` caps the instance count by merging consecutive layer
    slices into balanced contiguous groups (useful to match a worker
    pool's parallelism); by default every layer slice — named or
    anonymous filler — becomes its own instance.
    """
    if mode not in ("public", "hashed"):
        raise SplitError(f"unknown boundary mode {mode!r}")
    num_rows = cs.num_constraints
    if num_rows == 0:
        raise SplitError("cannot split an empty constraint system")
    slices = plan_layer_slices(num_rows, cs.layer_ranges, num_workers=1)
    if num_segments is not None:
        if num_segments < 1:
            raise SplitError("num_segments must be >= 1")
        segments = _merge_segments(slices, min(num_segments, len(slices)))
    else:
        segments = [(s.name, s.start, s.stop) for s in slices]
    n = len(segments)

    # -- variable usage scan: first/last segment per private variable ------
    first_seg: Dict[int, int] = {}
    last_seg: Dict[int, int] = {}
    used_globals: List[List[int]] = [[] for _ in range(n)]
    seen_globals: List[set] = [set() for _ in range(n)]
    for k, (_, start, stop) in enumerate(segments):
        for row in range(start, stop):
            constraint = cs.constraints[row]
            for lc in (constraint.a, constraint.b, constraint.c):
                for var in lc.indices():
                    if var == ONE:
                        continue
                    if var < 0:
                        if var not in seen_globals[k]:
                            seen_globals[k].add(var)
                            used_globals[k].append(var)
                        continue
                    if var not in first_seg:
                        first_seg[var] = k
                    last_seg[var] = k

    # boundaries[k] = vars with first use <= k < last use, ascending.
    boundaries: List[Tuple[int, ...]] = []
    for k in range(n - 1):
        crossing = sorted(
            v for v, f in first_seg.items() if f <= k < last_seg[v]
        )
        boundaries.append(tuple(crossing))

    instances: List[LayerInstance] = []
    for k, (name, start, stop) in enumerate(segments):
        instances.append(
            _build_instance(
                cs,
                k,
                name,
                start,
                stop,
                in_vars=boundaries[k - 1] if k > 0 else (),
                out_vars=boundaries[k] if k < n - 1 else (),
                globals_used=sorted(used_globals[k], key=lambda v: -v),
                first_seg=first_seg,
                last_seg=last_seg,
                mode=mode,
                extra_rounds=extra_rounds,
            )
        )

    split = SplitModel(
        mode=mode,
        source_name=cs.name,
        instances=instances,
        boundaries=boundaries,
    )
    if split.total_constraints() < num_rows:
        raise SplitError(
            "split dropped constraints: "
            f"{split.total_constraints()} < {num_rows}"
        )
    return split


def _build_instance(
    cs: ConstraintSystem,
    index: int,
    name: str,
    start: int,
    stop: int,
    in_vars: Tuple[int, ...],
    out_vars: Tuple[int, ...],
    globals_used: List[int],
    first_seg: Dict[int, int],
    last_seg: Dict[int, int],
    mode: str,
    extra_rounds: int,
) -> LayerInstance:
    inst_cs = ConstraintSystem(cs.field, name=f"{cs.name}/{name}")
    inst = LayerInstance(
        name=name,
        index=index,
        row_start=start,
        row_stop=stop,
        cs=inst_cs,
    )
    var_map: Dict[int, int] = {ONE: ONE}

    # Model-level publics keep their meaning via global_slots provenance.
    for orig in globals_used:
        slot = len(inst.public_map)
        var_map[orig] = inst_cs.new_public(cs.value_of(orig))
        inst.public_map.append(orig)
        inst.global_slots.append((slot, -orig - 1))

    boundary_union = sorted(set(in_vars) | set(out_vars))
    if mode == "public":
        # One shared slot per crossing variable: membership in both the
        # input and output tuples is structural, not an extra claim.
        for orig in boundary_union:
            slot = len(inst.public_map)
            var_map[orig] = inst_cs.new_public(cs.value_of(orig))
            inst.public_map.append(orig)
            if orig in in_vars:
                inst.in_slots.append(slot)
            if orig in out_vars:
                inst.out_slots.append(slot)
    else:
        for orig in boundary_union:
            var_map[orig] = inst_cs.new_private(cs.value_of(orig))
            inst.private_map.append(orig)

    # Locals: variables used in this segment only.
    for row in range(start, stop):
        constraint = cs.constraints[row]
        for lc in (constraint.a, constraint.b, constraint.c):
            for var in lc.indices():
                if var <= 0 or var in var_map:
                    continue
                var_map[var] = inst_cs.new_private(cs.value_of(var))
                inst.private_map.append(var)

    # Remap the inherited rows verbatim.
    for row in range(start, stop):
        constraint = cs.constraints[row]
        inst_cs.enforce(
            _remap_lc(constraint.a, var_map, inst_cs),
            _remap_lc(constraint.b, var_map, inst_cs),
            _remap_lc(constraint.c, var_map, inst_cs),
            tag=constraint.tag,
        )

    if mode == "hashed":
        for side, vars_side in (("in", in_vars), ("out", out_vars)):
            if not vars_side:
                continue
            rounds, digest_slot = _absorb_sponge(
                inst_cs,
                [var_map[v] for v in vars_side],
                extra_rounds,
                tag=f"{name}/boundary-{side}",
                private_map=inst.private_map,
                public_map=inst.public_map,
            )
            if side == "in":
                inst.in_sponge, inst.in_slots = rounds, [digest_slot]
            else:
                inst.out_sponge, inst.out_slots = rounds, [digest_slot]

    inst_cs.mark_layer(name, 0)
    return inst


def _remap_lc(
    lc: LinearCombination, var_map: Dict[int, int], inst_cs: ConstraintSystem
) -> LinearCombination:
    return LinearCombination(
        inst_cs.field, {var_map[i]: c for i, c in lc.terms.items()}
    )


def _absorb_sponge(
    inst_cs: ConstraintSystem,
    local_vars: List[int],
    extra_rounds: int,
    tag: str,
    private_map: List[Optional[int]],
    public_map: List[Optional[int]],
) -> Tuple[List[SpongeRound], int]:
    """Append MiMC-x⁵ absorb constraints; returns (rounds, digest slot).

    Per round (3 constraints): ``t = state + v + rc`` is a free LC, then
    ``t·t = t²``, ``t²·t² = t⁴``, ``t⁴·t = t⁵`` and the next state is
    ``t⁵``.  The final state is pinned to a fresh public digest slot.
    """
    p = inst_cs.field.modulus
    num_rounds = len(local_vars) + extra_rounds
    constants = mimc_round_constants(num_rounds, p)
    rounds: List[SpongeRound] = []
    state_lc = inst_cs.lc()  # initial state 0
    state_val = 0
    for i in range(num_rounds):
        var = local_vars[i] if i < len(local_vars) else None
        v_val = inst_cs.value_of(var) if var is not None else 0
        rc = constants[i]
        t_lc = state_lc.copy()
        if var is not None:
            t_lc.add_term(var, 1)
        t_lc.add_term(ONE, rc)
        has_values = v_val is not None and state_val is not None
        t = (state_val + v_val + rc) % p if has_values else None
        t2 = (t * t) % p if t is not None else None
        t4 = (t2 * t2) % p if t2 is not None else None
        t5 = (t4 * t) % p if t4 is not None else None
        w2 = inst_cs.new_private(t2)
        private_map.append(None)
        w4 = inst_cs.new_private(t4)
        private_map.append(None)
        w5 = inst_cs.new_private(t5)
        private_map.append(None)
        inst_cs.enforce(t_lc, t_lc, inst_cs.lc_variable(w2), tag=tag)
        inst_cs.enforce(
            inst_cs.lc_variable(w2),
            inst_cs.lc_variable(w2),
            inst_cs.lc_variable(w4),
            tag=tag,
        )
        inst_cs.enforce(
            inst_cs.lc_variable(w4), t_lc, inst_cs.lc_variable(w5), tag=tag
        )
        rounds.append(SpongeRound(var, rc, w2, w4, w5))
        state_lc = inst_cs.lc_variable(w5)
        state_val = t5
    digest_slot = len(public_map)
    digest_var = inst_cs.new_public(state_val)
    public_map.append(None)
    inst_cs.enforce_equal(
        state_lc, inst_cs.lc_variable(digest_var), tag=f"{tag}/digest"
    )
    return rounds, digest_slot
