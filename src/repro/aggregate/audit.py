"""Soundness-audit a split model, instance by instance.

Splitting changes what "under-constrained" means: a boundary variable is
*pinned by the chain*, not by the instance that consumes it, so auditing
each :class:`~repro.aggregate.split.LayerInstance` in isolation needs
the split's provenance maps to translate the whole-model assumptions
(``assume_from_recipe`` talks about *original* variable indices) into
each instance's local index space — and, in ``hashed`` mode, to seed the
determinism detector with the input-boundary privates whose values the
commitment chain fixes from the producing segment.

:func:`audit_split` runs :func:`repro.analysis.audit_system` per
instance and merges the results into ONE :class:`AuditReport` whose
findings carry the instance name in their ``layer`` anchor, so ``zeno
audit --per-layer`` reads like the whole-model report with layer-level
blame.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from repro.aggregate.split import LayerInstance, SplitModel
from repro.analysis import audit_system
from repro.analysis.report import AuditReport


def _local_assume(
    inst: LayerInstance,
    assume: Iterable[int],
    in_boundary: Iterable[int],
) -> List[int]:
    """Translate original-variable assumptions into instance-local ones.

    Boundary variables that became local *publics* (``public`` mode) are
    already in the determinism seed set and need no translation; only
    variables that stayed private (segment locals, and every boundary
    variable in ``hashed`` mode) are mapped.  Input-boundary variables
    are always assumed: their value is produced by an earlier segment
    and pinned by the commitment chain, which the per-instance detector
    cannot see.
    """
    orig_to_local: Dict[int, int] = {}
    for i, orig in enumerate(inst.private_map):
        if orig is not None:
            orig_to_local[orig] = i + 1
    wanted = set(assume) | set(in_boundary)
    return sorted(
        orig_to_local[orig] for orig in wanted if orig in orig_to_local
    )


def audit_split(
    split: SplitModel,
    assume: Iterable[int] = (),
    lint: bool = True,
    determinism: bool = True,
    fuzz: int = 0,
    rng: Optional[random.Random] = None,
) -> AuditReport:
    """Audit every instance of ``split``; return one merged report.

    ``assume`` uses *original* (pre-split) private variable indices —
    pass :func:`repro.analysis.assume_from_recipe` output directly.
    ``fuzz`` is the per-instance mutation budget; the shared ``rng``
    keeps the total work comparable to a whole-model fuzz run.
    """
    assume = list(assume)
    merged = AuditReport(
        system=f"{split.source_name}[split x{split.num_instances}]",
        num_constraints=split.total_constraints(),
        num_public=sum(i.cs.num_public for i in split.instances),
        num_private=sum(i.cs.num_private for i in split.instances),
    )
    for inst in split.instances:
        in_boundary = (
            split.boundaries[inst.index - 1] if inst.index > 0 else ()
        )
        report = audit_system(
            inst.cs,
            assume=_local_assume(inst, assume, in_boundary),
            lint=lint,
            determinism=determinism,
            fuzz=fuzz,
            rng=rng,
        )
        merged.extend(
            f if f.layer else replace(f, layer=inst.name)
            for f in report.findings
        )
        for name, seconds in report.sections.items():
            merged.section(name, seconds)
    return merged
