"""Per-layer proving with chained boundary commitments (ZKTorch direction).

The pipeline: :func:`split_model` cuts a compiled constraint system at
its layer boundaries into independent Groth16 instances whose
inter-layer consistency rides on hash-committed boundary tuples;
:func:`setup_split`/:func:`prove_split` run the per-layer setups and
prove the instances concurrently with deterministic blinding; and
:func:`fold` packs the proof set into a single self-contained
:class:`AggregateProof` that :func:`verify_aggregate` checks with ONE
batched multi-pairing — ``P + 3L`` pairings for ``P`` proofs over ``L``
layers instead of ``4P``.

See ARCHITECTURE.md §11 for the dataflow and the boundary-commitment
soundness argument.
"""

from repro.aggregate.audit import audit_split
from repro.aggregate.commit import (
    boundary_commitment,
    mimc_digest,
    mimc_round_constants,
)
from repro.aggregate.fold import (
    AggregateError,
    AggregateProof,
    AggregateVerdict,
    fold,
    verify_aggregate,
)
from repro.aggregate.prove import (
    DEFAULT_CRS_SEED,
    blinding_rng,
    crs_rng,
    prove_instance,
    prove_split,
    setup_split,
)
from repro.aggregate.split import (
    LayerInstance,
    SplitError,
    SplitModel,
    split_model,
)

__all__ = [
    "AggregateError",
    "AggregateProof",
    "AggregateVerdict",
    "DEFAULT_CRS_SEED",
    "LayerInstance",
    "SplitError",
    "SplitModel",
    "audit_split",
    "blinding_rng",
    "boundary_commitment",
    "crs_rng",
    "fold",
    "mimc_digest",
    "mimc_round_constants",
    "prove_instance",
    "prove_split",
    "setup_split",
    "split_model",
    "verify_aggregate",
]
