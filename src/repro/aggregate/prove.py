"""Per-layer setup and concurrent proving with deterministic blinding.

Every derivation here is a pure function of ``(crs_seed, layer_index)``
(plus the instance's public inputs for blinding), so a local process
pool, the serving :class:`~repro.serve.pool.WorkerPool`, and remote
``repro.cluster`` worker nodes all produce byte-identical proofs for the
same inference — asserted by the tests and by ``BENCH_aggregate.json``.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import random
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregate.split import SplitModel
from repro.ec.backend import GroupBackend, RealBN254Backend, SimulatedBackend
from repro.snark import groth16
from repro.snark.keys import SetupResult
from repro.snark.proof import Proof
from repro.snark.serialize import (
    deserialize_proof,
    deserialize_proving_key,
    serialize_proof,
    serialize_proving_key,
)

CRS_DOMAIN = b"zeno.aggregate.crs.v1"
BLIND_DOMAIN = b"zeno.aggregate.blind.v1"

DEFAULT_CRS_SEED = 0x5E70A66


def _rng_from_digest(digest: bytes) -> random.Random:
    return random.Random(int.from_bytes(digest, "big"))


def crs_rng(crs_seed: int, layer_index: int) -> random.Random:
    """The per-layer trusted-setup RNG: ``H(dom || seed || layer)``."""
    digest = hashlib.sha256(
        CRS_DOMAIN
        + int(crs_seed).to_bytes(8, "big", signed=False)
        + layer_index.to_bytes(4, "big")
    ).digest()
    return _rng_from_digest(digest)


def blinding_rng(
    crs_seed: int, layer_index: int, public_values: Sequence[int]
) -> random.Random:
    """Deterministic Groth16 blinding: seeded by layer AND instance publics.

    Binding the publics means two different inferences never share
    blinding factors (which would leak witness relations), while the same
    inference proved anywhere yields the same ``(r, s)`` and hence the
    same proof bytes.
    """
    inner = hashlib.sha256()
    inner.update(len(public_values).to_bytes(4, "big"))
    for value in public_values:
        inner.update(int(value).to_bytes(32, "big"))
    digest = hashlib.sha256(
        BLIND_DOMAIN
        + int(crs_seed).to_bytes(8, "big", signed=False)
        + layer_index.to_bytes(4, "big")
        + inner.digest()
    ).digest()
    return _rng_from_digest(digest)


def backend_by_name(name: str) -> GroupBackend:
    """Reconstruct a group backend in a worker process from its name."""
    if name == SimulatedBackend.name:
        return SimulatedBackend()
    if name == RealBN254Backend.name:
        return RealBN254Backend()
    raise ValueError(f"unknown group backend {name!r}")


def setup_split(
    split: SplitModel,
    backend: Optional[GroupBackend] = None,
    crs_seed: int = DEFAULT_CRS_SEED,
) -> List[SetupResult]:
    """Run the per-layer trusted setups (deterministic per layer)."""
    backend = backend or SimulatedBackend()
    return [
        groth16.setup(inst.cs, backend, crs_rng(crs_seed, inst.index))
        for inst in split.instances
    ]


def prove_instance(
    split: SplitModel,
    layer_index: int,
    setup: SetupResult,
    backend: Optional[GroupBackend] = None,
    crs_seed: Optional[int] = DEFAULT_CRS_SEED,
) -> Proof:
    """Prove one layer instance, with deterministic blinding by default.

    ``crs_seed=None`` opts out of determinism (fresh random blinding).
    """
    backend = backend or SimulatedBackend()
    inst = split.instances[layer_index]
    rng = (
        blinding_rng(crs_seed, inst.index, inst.cs.public_values())
        if crs_seed is not None
        else random.Random()
    )
    return groth16.prove(setup.proving_key, inst.cs, backend, rng)


def _prove_layer_remote(args) -> bytes:
    """Pickle-path pool entry point: prove one shipped layer instance.

    Receives the proving key in its canonical serialized form (the same
    bytes the artifact store persists) so the transfer is compact and the
    child rebuilds exactly the CRS the parent set up.  Used only where
    ``fork`` is unavailable — shipping keys costs O(model) per layer.
    """
    inst_cs, layer_index, pk_bytes, backend_name, crs_seed = args
    backend = backend_by_name(backend_name)
    pk = deserialize_proving_key(pk_bytes)
    rng = (
        blinding_rng(crs_seed, layer_index, inst_cs.public_values())
        if crs_seed is not None
        else random.Random()
    )
    proof = groth16.prove(pk, inst_cs, backend, rng)
    return serialize_proof(proof)


# Fork-shared prove state: the parent parks (split, setups, ...) here
# right before creating a fork-context pool, so children inherit it via
# copy-on-write and jobs carry only (token, layer_index) — constant-size
# regardless of model size.  Same trick as the CSR schedule executor.
_FORK_STATE: Dict[int, Tuple[SplitModel, Sequence[SetupResult], str,
                             Optional[int]]] = {}
_FORK_TOKENS = itertools.count(1)


def _prove_layer_fork(args) -> bytes:
    token, layer_index = args
    split, setups, backend_name, crs_seed = _FORK_STATE[token]
    proof = prove_instance(
        split, layer_index, setups[layer_index],
        backend_by_name(backend_name), crs_seed,
    )
    return serialize_proof(proof)


def prove_split(
    split: SplitModel,
    setups: Sequence[SetupResult],
    backend: Optional[GroupBackend] = None,
    crs_seed: Optional[int] = DEFAULT_CRS_SEED,
    parallelism: int = 1,
) -> List[Proof]:
    """Prove every layer instance, concurrently when ``parallelism > 1``.

    The parallel path runs complete per-layer prove pipelines in a
    process pool — a model-prove becomes max(layer prove) instead of
    sum(layer prove), which is the whole point of splitting.  Where the
    platform supports ``fork``, children inherit the split and proving
    keys by copy-on-write; otherwise each (instance, serialized proving
    key) pair is pickled across.
    """
    backend = backend or SimulatedBackend()
    if len(setups) != split.num_instances:
        raise ValueError(
            f"expected {split.num_instances} setups, got {len(setups)}"
        )
    if parallelism <= 1 or split.num_instances == 1:
        return [
            prove_instance(split, k, setups[k], backend, crs_seed)
            for k in range(split.num_instances)
        ]
    workers = min(parallelism, split.num_instances)
    if "fork" in multiprocessing.get_all_start_methods():
        token = next(_FORK_TOKENS)
        _FORK_STATE[token] = (split, setups, backend.name, crs_seed)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                proof_bytes = list(
                    pool.map(
                        _prove_layer_fork,
                        [(token, k) for k in range(split.num_instances)],
                    )
                )
        finally:
            del _FORK_STATE[token]
    else:
        jobs = [
            (
                split.instances[k].cs,
                k,
                serialize_proving_key(setups[k].proving_key),
                backend.name,
                crs_seed,
            )
            for k in range(split.num_instances)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            proof_bytes = list(pool.map(_prove_layer_remote, jobs))
    return [deserialize_proof(raw) for raw in proof_bytes]
