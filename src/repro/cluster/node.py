"""The worker-node daemon: a warm proving pool behind a TCP connection.

A node dials the coordinator, registers with a ``HELLO`` (its id, pid,
in-flight window, and pool size), then serves ``JOB`` frames.  Each JOB is
one sharded batch — the same ``(spec, payloads)`` contract as
:func:`repro.serve.workers.prove_batch` — executed on the node's own
:class:`repro.serve.workers.WorkerPool`, so the per-worker warm caches
(compiled circuit + CRS + fixed-base ``msm_tables`` per batch key) live in
the node's processes and amortize across every batch the coordinator
routes to it.

Robustness:

* a heartbeat thread sends a telemetry frame every ``heartbeat_interval``
  seconds; the coordinator declares the node dead when frames stop;
* a batch that kills a pool process (``BrokenProcessPool``) is reported as
  ``JOB_ERROR`` and the pool is rebuilt — the node survives, the
  coordinator reroutes the jobs;
* losing the coordinator connection shuts the node down cleanly.

``mode="inline"`` runs :func:`prove_batch` in a thread instead of the
process pool (one shared warm cache per *process*, serialized by a lock) —
used by tests and benchmarks that stack several nodes in one process.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional, Tuple

from repro.cluster.protocol import (
    ConnectionClosed,
    MsgType,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.workers import WorkerPool, prove_batch

# Inline-mode batches share the module-level warm cache of
# repro.serve.workers within this process; BatchProver re-assignment is
# stateful, so concurrent inline batches for the same key must serialize.
_INLINE_LOCK = threading.Lock()


class WorkerNode:
    """One proving node: a warm worker pool registered with a coordinator."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        node_id: Optional[str] = None,
        pool_workers: int = 1,
        window: int = 2,
        heartbeat_interval: float = 0.5,
        mode: str = "pool",  # "pool" | "inline"
        prewarm: bool = True,
        connect_timeout: float = 10.0,
    ) -> None:
        if mode not in ("pool", "inline"):
            raise ValueError(f"unknown node mode {mode!r}")
        self.address = address
        self.node_id = node_id or f"node-{uuid.uuid4().hex[:8]}"
        self.window = window
        self.heartbeat_interval = heartbeat_interval
        self.mode = mode
        self.pool_workers = pool_workers
        self.prewarm = prewarm
        self.connect_timeout = connect_timeout

        self._pool: Optional[WorkerPool] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._inflight = 0
        self._batches_done = 0
        self._jobs_done = 0
        self._failures = 0
        self._stop = threading.Event()
        self._threads: list = []

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "WorkerNode":
        """Connect, register, and start serving jobs in the background."""
        self._sock = self._connect()
        write_frame(
            self._sock,
            MsgType.HELLO,
            {
                "node_id": self.node_id,
                "pid": os.getpid(),
                "window": self.window,
                "pool_workers": self.pool_workers,
                "mode": self.mode,
            },
        )
        msg_type, payload = read_frame(self._sock)
        if msg_type is not MsgType.HELLO_ACK:
            raise ProtocolError(f"expected HELLO_ACK, got {msg_type.name}")
        if payload.get("node_id") not in (None, self.node_id):
            self.node_id = payload["node_id"]

        if self.mode == "pool":
            self._pool = WorkerPool(self.pool_workers)
            if self.prewarm:
                self._pool.prewarm()
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max(self.window, 1),
                thread_name_prefix=f"{self.node_id}-prove",
            )
        for target, name in (
            (self._recv_loop, "recv"),
            (self._heartbeat_loop, "heartbeat"),
        ):
            thread = threading.Thread(
                target=target, name=f"{self.node_id}-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _connect(self) -> socket.socket:
        """Dial the coordinator, retrying until ``connect_timeout``."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection(self.address, timeout=5.0)
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def run_forever(self) -> None:
        """Block until the coordinator disconnects or :meth:`stop` is called."""
        self._stop.wait()

    def stop(self) -> None:
        """Graceful shutdown: deregister, close, tear down the pool."""
        if self._stop.is_set():
            return
        self._send(MsgType.BYE, {"node_id": self.node_id})
        self._shutdown()

    def kill(self) -> None:
        """Fault injection for tests: drop the connection with no BYE.

        From the coordinator's point of view this is indistinguishable
        from the node process dying — in-flight batches must reroute.
        """
        self._shutdown()

    def _shutdown(self) -> None:
        self._stop.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # -- serving ---------------------------------------------------------------------

    def _recv_loop(self) -> None:
        sock = self._sock
        while not self._stop.is_set():
            try:
                msg_type, payload = read_frame(sock)
            except (ProtocolError, OSError):
                self._shutdown()
                return
            if msg_type is MsgType.JOB:
                self._start_batch(payload)
            elif msg_type is MsgType.BYE:
                self._shutdown()
                return
            # HEARTBEAT_ACK and anything else: liveness only.

    def _start_batch(self, payload: Dict[str, Any]) -> None:
        batch_id = payload["batch_id"]
        spec = payload["spec"]
        jobs = payload["payloads"]
        with self._lock:
            self._inflight += 1
        if self.mode == "pool":
            try:
                future = self._pool.submit_batch(spec, jobs)
            except Exception as exc:  # pool broken beyond repair
                self._batch_failed(batch_id, len(jobs), exc)
                return
            future.add_done_callback(
                lambda fut, b=batch_id, n=len(jobs): self._on_pool_done(
                    b, n, fut
                )
            )
        else:
            self._executor.submit(self._run_inline, batch_id, spec, jobs)

    def _on_pool_done(self, batch_id: int, n_jobs: int, future) -> None:
        try:
            out = future.result()
        except BrokenProcessPool as exc:
            self._pool.reset()  # node survives; coordinator reroutes
            self._batch_failed(batch_id, n_jobs, exc)
        except Exception as exc:
            self._batch_failed(batch_id, n_jobs, exc)
        else:
            self._batch_done(batch_id, n_jobs, out)

    def _run_inline(self, batch_id: int, spec, jobs) -> None:
        try:
            with _INLINE_LOCK:
                out = prove_batch(spec, jobs)
        except Exception as exc:
            self._batch_failed(batch_id, len(jobs), exc)
        else:
            self._batch_done(batch_id, len(jobs), out)

    def _batch_done(self, batch_id: int, n_jobs: int, out: Dict) -> None:
        with self._lock:
            self._inflight -= 1
            self._batches_done += 1
            self._jobs_done += n_jobs
        self._send(
            MsgType.JOB_RESULT,
            {"node_id": self.node_id, "batch_id": batch_id, "out": out},
        )

    def _batch_failed(self, batch_id: int, n_jobs: int, exc: Exception) -> None:
        with self._lock:
            self._inflight -= 1
            self._failures += 1
        self._send(
            MsgType.JOB_ERROR,
            {
                "node_id": self.node_id,
                "batch_id": batch_id,
                "error": f"{type(exc).__name__}: {exc}",
            },
        )

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                frame = {
                    "node_id": self.node_id,
                    "pid": os.getpid(),
                    "inflight": self._inflight,
                    "batches_done": self._batches_done,
                    "jobs_done": self._jobs_done,
                    "failures": self._failures,
                }
            if not self._send(MsgType.HEARTBEAT, frame):
                return

    def _send(self, msg_type: MsgType, payload: Dict[str, Any]) -> bool:
        sock = self._sock
        if sock is None:
            return False
        try:
            with self._send_lock:
                write_frame(sock, msg_type, payload)
            return True
        except (OSError, ProtocolError):
            self._shutdown()
            return False
