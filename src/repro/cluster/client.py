"""Client for submitting proving jobs to a cluster coordinator.

One persistent TCP connection carries request/response pairs (``SUBMIT``/
``SUBMIT_ACK``, ``STATS``/``STATS_REPLY``, matched by a ``req`` counter)
interleaved with ``JOB_DONE`` pushes the coordinator sends when a
submitted job reaches a terminal state.  A background receive thread
demultiplexes them; :meth:`ClusterClient.result` blocks on the push.

Losing the coordinator socket mid-session does NOT surface to callers as
a dead client: the receive thread redials with capped exponential
backoff (``reconnect_backoff_base * 2^attempt``, capped at
``reconnect_backoff_cap``, for up to ``reconnect_deadline`` seconds) and,
once reconnected, re-registers every outstanding job with a ``WATCH``
frame so pending :meth:`result` calls keep working.  Jobs the coordinator
no longer knows (it restarted and lost its in-memory state) are reported
in the ``WATCH_ACK`` and surface as :class:`ClusterError` from
:meth:`result` — the caller can resubmit.  Requests that were in flight
when the connection dropped fail with :class:`ClusterError` (their reply
may have been lost; a blind retry of SUBMIT could double-submit).  Only
when every redial attempt within the deadline fails does the client give
up and fail all waiters.

Results mirror :class:`repro.serve.jobs.JobResult` and additionally carry
the serialized verifying key, so a client can re-verify and archive the
proof with no further round trips.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.protocol import (
    MsgType,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.jobs import JobResult, JobState
from repro.serve.service import JobFailedError


class ClusterError(RuntimeError):
    """Submission failed or the coordinator connection was lost."""


class RemoteJobFailedError(JobFailedError):
    """A cluster job ended FAILED/TIMED_OUT; carries the remote error."""

    def __init__(self, job_id: str, state: str, error: Optional[str]) -> None:
        RuntimeError.__init__(
            self, f"{job_id} ended {state}: {error or 'unknown'}"
        )
        self.job_id = job_id
        self.state = JobState(state)
        self.remote_error = error


class ClusterClient:
    """Thread-safe client bound to one coordinator; survives reconnects."""

    def __init__(
        self,
        address: Tuple[str, int],
        connect_timeout: float = 10.0,
        *,
        reconnect: bool = True,
        reconnect_backoff_base: float = 0.05,
        reconnect_backoff_cap: float = 2.0,
        reconnect_deadline: float = 30.0,
    ) -> None:
        self.address = tuple(address)
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.reconnect_backoff_base = reconnect_backoff_base
        self.reconnect_backoff_cap = reconnect_backoff_cap
        self.reconnect_deadline = reconnect_deadline
        self.reconnects = 0  # successful redials this session

        self._sock = self._dial(connect_timeout)
        self._send_lock = threading.Lock()
        self._cond = threading.Condition()
        self._req_ids = itertools.count(1)
        self._replies: Dict[int, Dict[str, Any]] = {}
        self._pending_reqs: set = set()  # reqs awaiting a reply
        self._done: Dict[str, Dict[str, Any]] = {}  # job_id -> JOB_DONE payload
        self._outstanding: set = set()  # submitted, not yet terminal
        self._lost: Dict[str, str] = {}  # job_id -> reason (coordinator forgot)
        self._closed = False  # user called close()
        self._failed = False  # reconnect exhausted; client is dead
        self._connected = True
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name="repro-cluster-client", daemon=True
        )
        self._recv_thread.start()

    # -- plumbing --------------------------------------------------------------------

    def _dial(self, timeout: float) -> socket.socket:
        sock = socket.create_connection(self.address, timeout)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _recv_loop(self) -> None:
        while True:
            sock = self._sock
            try:
                msg_type, payload = read_frame(sock)
            except (ProtocolError, OSError):
                with self._cond:
                    if self._closed:
                        return
                if not self.reconnect or not self._reconnect():
                    with self._cond:
                        self._failed = True
                        self._connected = False
                        self._cond.notify_all()
                    return
                continue
            with self._cond:
                if msg_type is MsgType.JOB_DONE:
                    job_id = payload["job_id"]
                    self._done[job_id] = payload
                    self._outstanding.discard(job_id)
                elif msg_type is MsgType.WATCH_ACK and payload.get("req") == 0:
                    # Reconnect-time re-watch (no waiter): jobs this
                    # coordinator has never heard of are unrecoverable
                    # through this client — fail their result() waiters.
                    for job_id in payload.get("unknown") or []:
                        self._lost[job_id] = (
                            "coordinator does not know this job "
                            "(it restarted?)"
                        )
                        self._outstanding.discard(job_id)
                else:
                    self._replies[payload.get("req", 0)] = payload
                    self._pending_reqs.discard(payload.get("req", 0))
                self._cond.notify_all()

    def _reconnect(self) -> bool:
        """Redial with capped exponential backoff; re-watch outstanding jobs.

        Returns True once a new connection is registered (the recv loop
        resumes reading from it), False when the deadline expires.
        """
        # Requests that were awaiting replies may have lost them with the
        # socket; fail them now rather than hanging forever.
        with self._cond:
            self._connected = False
            for req in list(self._pending_reqs):
                self._replies[req] = {"req": req, "connection_lost": True}
            self._pending_reqs.clear()
            self._cond.notify_all()
        deadline = time.monotonic() + self.reconnect_deadline
        attempt = 0
        while True:
            with self._cond:
                if self._closed:
                    return False
            try:
                sock = self._dial(min(self.connect_timeout, 5.0))
            except OSError:
                delay = min(
                    self.reconnect_backoff_cap,
                    self.reconnect_backoff_base * (2 ** attempt),
                )
                attempt += 1
                if time.monotonic() + delay >= deadline:
                    return False
                time.sleep(delay)
                continue
            with self._send_lock:
                old, self._sock = self._sock, sock
            try:
                old.close()
            except OSError:
                pass
            with self._cond:
                self._connected = True
                self.reconnects += 1
                outstanding = sorted(self._outstanding)
                self._cond.notify_all()
            if outstanding:
                try:
                    with self._send_lock:
                        write_frame(
                            self._sock,
                            MsgType.WATCH,
                            {"req": 0, "job_ids": outstanding},
                        )
                except (OSError, ProtocolError):
                    continue  # the fresh socket died already; redial
            return True

    def _check_alive(self) -> None:
        if self._closed:
            raise ClusterError("client is closed")
        if self._failed:
            raise ClusterError(
                "coordinator connection lost and reconnect gave up"
            )

    def _request(
        self,
        msg_type: MsgType,
        payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        req = next(self._req_ids)
        payload = dict(payload, req=req)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._check_alive()
            # During a redial window, wait for the new socket instead of
            # writing into a dead one.
            while not self._connected:
                self._check_alive()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"no connection to send {msg_type.name}"
                    )
                self._cond.wait(timeout=remaining)
            self._pending_reqs.add(req)
        try:
            with self._send_lock:
                write_frame(self._sock, msg_type, payload)
        except (OSError, ProtocolError):
            # The recv loop will notice and redial; this request's send
            # never completed, so it is safe to report as failed.
            with self._cond:
                self._pending_reqs.discard(req)
            raise ClusterError(
                f"connection lost while sending {msg_type.name}; retry"
            ) from None
        with self._cond:
            while req not in self._replies:
                self._check_alive()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self._pending_reqs.discard(req)
                    raise TimeoutError(f"no reply to {msg_type.name}")
                self._cond.wait(timeout=remaining)
            reply = self._replies.pop(req)
        if reply.get("connection_lost"):
            raise ClusterError(
                f"connection lost awaiting the {msg_type.name} reply; "
                "it may or may not have been processed"
            )
        return reply

    # -- API -------------------------------------------------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        *,
        image_seed: Optional[int] = None,
        scale: str = "mini",
        seed: int = 0,
        privacy: str = "one-private",
        priority: int = 0,
        timeout: Optional[float] = None,
        tenant: str = "default",
        extra: Optional[dict] = None,
    ) -> str:
        """Enqueue one job on the coordinator; returns its job id."""
        reply = self._request(
            MsgType.SUBMIT,
            {
                "model": model,
                "image": image,
                "image_seed": image_seed,
                "scale": scale,
                "seed": seed,
                "privacy": privacy,
                "priority": priority,
                "timeout": timeout,
                "tenant": tenant,
                "extra": extra or {},
            },
        )
        if "error" in reply:
            raise ClusterError(f"submit rejected: {reply['error']}")
        job_id = reply["job_id"]
        with self._cond:
            if job_id not in self._done:
                self._outstanding.add(job_id)
        return job_id

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until ``job_id`` finishes; return its verified result.

        Raises :class:`RemoteJobFailedError` for FAILED/TIMED_OUT jobs,
        :class:`ClusterError` if the job was lost to a coordinator
        restart or the connection is unrecoverable, and ``TimeoutError``
        if nothing arrives within ``timeout`` seconds.  A transient
        disconnect does not fail this call — the client reconnects and
        re-watches the job.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while job_id not in self._done:
                if job_id in self._lost:
                    raise ClusterError(
                        f"{job_id} lost: {self._lost[job_id]}"
                    )
                self._check_alive()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"{job_id} still pending")
                self._cond.wait(timeout=remaining)
            payload = self._done[job_id]
        if payload["state"] != JobState.DONE.value:
            raise RemoteJobFailedError(
                job_id, payload["state"], payload.get("error")
            )
        res = payload["result"]
        result = JobResult(
            proof=res["proof"],
            public_inputs=[int(v) for v in res["public_inputs"]],
            logits=[int(v) for v in res["logits"]],
            verified=bool(res["verified"]),
            worker_pid=int(res["worker_pid"]),
            batch_id=int(res["batch_id"]),
            batch_size=int(res["batch_size"]),
            store_keys=dict(res["store_keys"]),
        )
        return result

    def lost_jobs(self) -> List[str]:
        """Job ids the coordinator forgot across a reconnect (resubmit them)."""
        with self._cond:
            return sorted(self._lost)

    def verifying_key(self, job_id: str) -> Optional[bytes]:
        """Serialized VK shipped with a finished job's JOB_DONE push."""
        with self._cond:
            payload = self._done.get(job_id)
        if payload is None or "result" not in payload:
            return None
        return payload["result"].get("vk")

    def attempts(self, job_id: str) -> Optional[int]:
        """How many dispatch attempts a finished job consumed."""
        with self._cond:
            payload = self._done.get(job_id)
        return None if payload is None else payload.get("attempts")

    def stats(self, timeout: Optional[float] = None) -> dict:
        """The coordinator's merged telemetry + per-node snapshot."""
        return self._request(MsgType.STATS, {}, timeout=timeout)["stats"]

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
        try:
            with self._send_lock:
                write_frame(self._sock, MsgType.BYE, {})
        except (OSError, ProtocolError):
            pass
        self._sock.close()
        with self._cond:
            self._cond.notify_all()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
