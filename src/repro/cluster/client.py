"""Client for submitting proving jobs to a cluster coordinator.

One persistent TCP connection carries request/response pairs (``SUBMIT``/
``SUBMIT_ACK``, ``STATS``/``STATS_REPLY``, matched by a ``req`` counter)
interleaved with ``JOB_DONE`` pushes the coordinator sends when a
submitted job reaches a terminal state.  A background receive thread
demultiplexes them; :meth:`ClusterClient.result` blocks on the push.

Results mirror :class:`repro.serve.jobs.JobResult` and additionally carry
the serialized verifying key, so a client can re-verify and archive the
proof with no further round trips.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cluster.protocol import (
    MsgType,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.jobs import JobResult, JobState
from repro.serve.service import JobFailedError


class ClusterError(RuntimeError):
    """Submission failed or the coordinator connection was lost."""


class RemoteJobFailedError(JobFailedError):
    """A cluster job ended FAILED/TIMED_OUT; carries the remote error."""

    def __init__(self, job_id: str, state: str, error: Optional[str]) -> None:
        RuntimeError.__init__(
            self, f"{job_id} ended {state}: {error or 'unknown'}"
        )
        self.job_id = job_id
        self.state = JobState(state)
        self.remote_error = error


class ClusterClient:
    """Thread-safe client bound to one coordinator."""

    def __init__(
        self, address: Tuple[str, int], connect_timeout: float = 10.0
    ) -> None:
        self.address = tuple(address)
        self._sock = socket.create_connection(self.address, connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._cond = threading.Condition()
        self._req_ids = itertools.count(1)
        self._replies: Dict[int, Dict[str, Any]] = {}
        self._done: Dict[str, Dict[str, Any]] = {}  # job_id -> JOB_DONE payload
        self._closed = False
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name="repro-cluster-client", daemon=True
        )
        self._recv_thread.start()

    # -- plumbing --------------------------------------------------------------------

    def _recv_loop(self) -> None:
        while True:
            try:
                msg_type, payload = read_frame(self._sock)
            except (ProtocolError, OSError):
                with self._cond:
                    self._closed = True
                    self._cond.notify_all()
                return
            with self._cond:
                if msg_type is MsgType.JOB_DONE:
                    self._done[payload["job_id"]] = payload
                else:
                    self._replies[payload.get("req", 0)] = payload
                self._cond.notify_all()

    def _request(
        self,
        msg_type: MsgType,
        payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        req = next(self._req_ids)
        payload = dict(payload, req=req)
        with self._send_lock:
            write_frame(self._sock, msg_type, payload)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while req not in self._replies:
                if self._closed:
                    raise ClusterError("coordinator connection lost")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"no reply to {msg_type.name}")
                self._cond.wait(timeout=remaining)
            return self._replies.pop(req)

    # -- API -------------------------------------------------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        *,
        image_seed: Optional[int] = None,
        scale: str = "mini",
        seed: int = 0,
        privacy: str = "one-private",
        priority: int = 0,
        timeout: Optional[float] = None,
        extra: Optional[dict] = None,
    ) -> str:
        """Enqueue one job on the coordinator; returns its job id."""
        reply = self._request(
            MsgType.SUBMIT,
            {
                "model": model,
                "image": image,
                "image_seed": image_seed,
                "scale": scale,
                "seed": seed,
                "privacy": privacy,
                "priority": priority,
                "timeout": timeout,
                "extra": extra or {},
            },
        )
        if "error" in reply:
            raise ClusterError(f"submit rejected: {reply['error']}")
        return reply["job_id"]

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until ``job_id`` finishes; return its verified result.

        Raises :class:`RemoteJobFailedError` for FAILED/TIMED_OUT jobs and
        ``TimeoutError`` if nothing arrives within ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while job_id not in self._done:
                if self._closed:
                    raise ClusterError("coordinator connection lost")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"{job_id} still pending")
                self._cond.wait(timeout=remaining)
            payload = self._done[job_id]
        if payload["state"] != JobState.DONE.value:
            raise RemoteJobFailedError(
                job_id, payload["state"], payload.get("error")
            )
        res = payload["result"]
        result = JobResult(
            proof=res["proof"],
            public_inputs=[int(v) for v in res["public_inputs"]],
            logits=[int(v) for v in res["logits"]],
            verified=bool(res["verified"]),
            worker_pid=int(res["worker_pid"]),
            batch_id=int(res["batch_id"]),
            batch_size=int(res["batch_size"]),
            store_keys=dict(res["store_keys"]),
        )
        return result

    def verifying_key(self, job_id: str) -> Optional[bytes]:
        """Serialized VK shipped with a finished job's JOB_DONE push."""
        with self._cond:
            payload = self._done.get(job_id)
        if payload is None or "result" not in payload:
            return None
        return payload["result"].get("vk")

    def attempts(self, job_id: str) -> Optional[int]:
        """How many dispatch attempts a finished job consumed."""
        with self._cond:
            payload = self._done.get(job_id)
        return None if payload is None else payload.get("attempts")

    def stats(self, timeout: Optional[float] = None) -> dict:
        """The coordinator's merged telemetry + per-node snapshot."""
        return self._request(MsgType.STATS, {}, timeout=timeout)["stats"]

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
        try:
            with self._send_lock:
                write_frame(self._sock, MsgType.BYE, {})
        except (OSError, ProtocolError):
            pass
        self._sock.close()
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
