"""`repro.cluster` — a distributed multi-node proving cluster with failover.

Scales :mod:`repro.serve` past one machine: a :class:`ClusterCoordinator`
owns the job queue and §6.1 micro-batcher and shards ready batches over
TCP to registered :class:`WorkerNode` daemons, each wrapping the existing
warm-cache worker pool (compiled circuits, CRS, fixed-base ``msm_tables``
per node).  The wire format (:mod:`repro.cluster.protocol`) is a
length-prefixed, versioned, CRC-checked frame codec whose proof/key blobs
are produced and validated by :mod:`repro.snark.serialize`.

Robustness is first-class: heartbeats with liveness timeouts, per-node
circuit breakers, bounded per-node in-flight windows, retry-with-backoff
rerouting off dead or faulty nodes, and graceful drain.  The coordinator
batch-verifies every returned proof against the VK
(:mod:`repro.cluster.verification`) before acking, so a faulty node can
never corrupt results.

Entry points: :class:`ClusterCoordinator` / :class:`WorkerNode` /
:class:`ClusterClient`, or ``python -m repro.cli cluster
coordinator|worker|submit``.
"""

from repro.cluster.client import ClusterClient, ClusterError, RemoteJobFailedError
from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.node import WorkerNode
from repro.cluster.protocol import (
    ConnectionClosed,
    MsgType,
    ProtocolError,
    PROTOCOL_VERSION,
)
from repro.cluster.verification import BatchVerdict, verify_claims

__all__ = [
    "BatchVerdict",
    "ClusterClient",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "ConnectionClosed",
    "MsgType",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteJobFailedError",
    "WorkerNode",
    "verify_claims",
]
