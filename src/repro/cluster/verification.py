"""Trust-but-verify batch verification shared by coordinator and CLI.

The coordinator never acks a batch a worker node returns without checking
every proof against the verifying key — a faulty or malicious node can
therefore never corrupt results, only waste its own cycles.  The same
path backs ``repro.cli verify --batch`` over a directory of claim files.

Verification is batched (:func:`repro.snark.groth16.batch_verify`): one
random-linear-combination check costs ``k + 3`` pairings for ``k`` proofs.
Only when the aggregate check fails do we fall back to per-proof
verification to isolate the culprits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.snark import groth16
from repro.snark.serialize import (
    SerializationError,
    deserialize_proof,
    deserialize_verifying_key,
)


def backend_for(name: str):
    """Group backend instance matching a ``VerifyingKey.backend_name``."""
    from repro.ec.backend import RealBN254Backend, SimulatedBackend

    return RealBN254Backend() if name == "bn254" else SimulatedBackend()


@dataclass
class BatchVerdict:
    """Outcome of verifying one batch of claims under one key."""

    per_proof: List[bool]  # one entry per claim, in input order
    aggregate: bool  # the k+3-pairing RLC check (or all(per_proof) on fallback)
    errors: List[Optional[str]]  # decode errors, aligned with per_proof

    @property
    def all_ok(self) -> bool:
        return self.aggregate and all(self.per_proof)


def verify_claims(
    vk_bytes: bytes,
    claims: Sequence[Tuple[Sequence[int], bytes]],
    rng: Optional[random.Random] = None,
) -> BatchVerdict:
    """Verify ``(public_inputs, proof_bytes)`` claims under one serialized VK.

    Proof and key bytes pass through :mod:`repro.snark.serialize`, so
    off-curve or non-canonical points are rejected before any pairing
    runs.  A claim whose proof fails to decode is marked failed without
    poisoning the rest of the batch.
    """
    vk = deserialize_verifying_key(vk_bytes)
    backend = backend_for(vk.backend_name)

    proofs = []
    errors: List[Optional[str]] = []
    for _, proof_bytes in claims:
        try:
            proofs.append(deserialize_proof(proof_bytes))
            errors.append(None)
        except SerializationError as exc:
            proofs.append(None)
            errors.append(str(exc))

    decodable = [
        (list(publics), proof)
        for (publics, _), proof in zip(claims, proofs)
        if proof is not None
    ]
    aggregate = all(e is None for e in errors) and groth16.batch_verify(
        vk, decodable, backend, rng=rng
    )
    if aggregate:
        return BatchVerdict(
            per_proof=[True] * len(claims), aggregate=True, errors=errors
        )

    # Aggregate failed (or something didn't decode): isolate per proof.
    per_proof = []
    for (publics, _), proof in zip(claims, proofs):
        if proof is None:
            per_proof.append(False)
        else:
            per_proof.append(
                bool(groth16.verify(vk, list(publics), proof, backend))
            )
    return BatchVerdict(per_proof=per_proof, aggregate=False, errors=errors)
