"""Length-prefixed, versioned wire protocol for the proving cluster.

Every frame on a cluster connection is::

    MAGIC(2) | version(1) | msg_type(1) | u32 payload_len | u32 crc32 | payload

The payload is one *value* in a small tagged binary encoding (None, bool,
arbitrary-precision int, float, str, bytes, list, dict with str keys, and
C-contiguous numpy arrays for images) — enough to carry job specs, image
tensors, telemetry frames, and the byte blobs produced by
:mod:`repro.snark.serialize` (proofs, verifying keys, proving keys travel
as ``bytes`` fields and are validated on decode by that module, so the
cluster layer never invents its own point formats).

Decoding is strict: truncated frames, bad magic, unknown versions or
message types, CRC mismatches, unknown value tags, and trailing bytes all
raise :class:`ProtocolError` — a malformed or bit-flipped frame can never
be half-parsed into a wrong job.  A peer closing its socket at a frame
boundary raises :class:`ConnectionClosed` (a ``ProtocolError`` subclass)
so callers can tell clean disconnects from corruption.
"""

from __future__ import annotations

import enum
import socket
import struct
import zlib
from typing import Any, Dict, List, Tuple

import numpy as np

MAGIC = b"ZN"
PROTOCOL_VERSION = 1

# magic, version, msg_type, payload_len, payload_crc32
_HEADER = struct.Struct(">2sBBII")
HEADER_BYTES = _HEADER.size

# Hard ceiling on a single frame; a proving-key blob for the mini models
# is a few MB, images are KB — anything near this bound is corruption.
MAX_FRAME_BYTES = 256 << 20


class ProtocolError(ValueError):
    """Raised on malformed, truncated, or corrupted frames."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF at a frame boundary)."""


class MsgType(enum.IntEnum):
    # worker node <-> coordinator
    HELLO = 1  # node registration: node_id, pid, window, pool size
    HELLO_ACK = 2
    HEARTBEAT = 3  # node liveness + telemetry frame
    HEARTBEAT_ACK = 4
    JOB = 5  # one sharded batch: spec + per-job payloads
    JOB_RESULT = 6  # proved batch: serialized proofs + vk + phases
    JOB_ERROR = 7  # batch failed in the node (e.g. its pool died)
    BYE = 8  # graceful deregistration / coordinator drain
    # client <-> coordinator
    SUBMIT = 9  # one proving job
    SUBMIT_ACK = 10
    JOB_DONE = 11  # pushed when a submitted job reaches a terminal state
    STATS = 12  # telemetry snapshot request
    STATS_REPLY = 13
    WATCH = 14  # re-register for JOB_DONE pushes after a reconnect
    WATCH_ACK = 15  # echoes known/unknown job ids; terminal ones re-push


# -- value codec -------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_NDARRAY = 0x09

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def _encode_into(obj: Any, out: List[bytes]) -> None:
    if obj is None:
        out.append(bytes([_T_NONE]))
    elif obj is True:
        out.append(bytes([_T_TRUE]))
    elif obj is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(obj, (int, np.integer)):
        v = int(obj)
        sign = 1 if v < 0 else 0
        mag = abs(v)
        body = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
        out.append(bytes([_T_INT, sign]) + _U32.pack(len(body)) + body)
    elif isinstance(obj, (float, np.floating)):
        out.append(bytes([_T_FLOAT]) + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(body)) + body)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        body = bytes(obj)
        out.append(bytes([_T_BYTES]) + _U32.pack(len(body)) + body)
    elif isinstance(obj, np.ndarray):
        dt = obj.dtype.str.encode("ascii")
        arr = np.ascontiguousarray(obj)
        if arr.shape != obj.shape:  # ascontiguousarray promotes 0-d to (1,)
            arr = arr.reshape(obj.shape)
        out.append(
            bytes([_T_NDARRAY, len(dt)])
            + dt
            + bytes([arr.ndim])
            + b"".join(_U32.pack(d) for d in arr.shape)
        )
        body = arr.tobytes()
        out.append(_U32.pack(len(body)) + body)
    elif isinstance(obj, (list, tuple)):
        out.append(bytes([_T_LIST]) + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(obj)))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            body = key.encode("utf-8")
            out.append(_U32.pack(len(body)) + body)
            _encode_into(value, out)
    else:
        raise ProtocolError(f"cannot encode {type(obj).__name__}")


def encode_value(obj: Any) -> bytes:
    """Encode one value in the tagged binary format."""
    out: List[bytes] = []
    _encode_into(obj, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, n: int) -> bytes:
        end = self.offset + n
        if n < 0 or end > len(self.data):
            raise ProtocolError("truncated value")
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def value(self) -> Any:
        tag = self.u8()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            sign = self.u8()
            if sign not in (0, 1):
                raise ProtocolError(f"bad int sign byte {sign:#x}")
            mag = int.from_bytes(self.take(self.u32()), "big")
            return -mag if sign else mag
        if tag == _T_FLOAT:
            return _F64.unpack(self.take(8))[0]
        if tag == _T_STR:
            try:
                return self.take(self.u32()).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"bad utf-8 in string: {exc}") from None
        if tag == _T_BYTES:
            return self.take(self.u32())
        if tag == _T_NDARRAY:
            dt = self.take(self.u8()).decode("ascii", errors="replace")
            try:
                dtype = np.dtype(dt)
            except TypeError:
                raise ProtocolError(f"bad ndarray dtype {dt!r}") from None
            ndim = self.u8()
            shape = tuple(self.u32() for _ in range(ndim))
            body = self.take(self.u32())
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if len(body) != expected:
                raise ProtocolError(
                    f"ndarray body is {len(body)} bytes, shape needs {expected}"
                )
            return np.frombuffer(body, dtype=dtype).reshape(shape).copy()
        if tag == _T_LIST:
            return [self.value() for _ in range(self.u32())]
        if tag == _T_DICT:
            count = self.u32()
            out: Dict[str, Any] = {}
            for _ in range(count):
                key = self.take(self.u32()).decode("utf-8")
                out[key] = self.value()
            return out
        raise ProtocolError(f"unknown value tag {tag:#x}")


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing bytes."""
    reader = _Reader(data)
    obj = reader.value()
    if reader.offset != len(data):
        raise ProtocolError(
            f"{len(data) - reader.offset} trailing byte(s) after value"
        )
    return obj


# -- framing -----------------------------------------------------------------------


def _frame_crc(msg_type: int, body: bytes) -> int:
    # Seed the CRC with the version and message type so header corruption
    # (e.g. a bit flip turning SUBMIT into JOB_DONE) is caught too — the
    # length-prefix header itself carries no other integrity check.
    return zlib.crc32(body, zlib.crc32(bytes([PROTOCOL_VERSION, msg_type])))


def pack_frame(msg_type: MsgType, payload: Dict[str, Any]) -> bytes:
    """One wire frame: header + CRC protecting payload, version, and type."""
    body = encode_value(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"payload of {len(body)} bytes exceeds frame cap")
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(msg_type), len(body),
        _frame_crc(int(msg_type), body),
    )
    return header + body


def unpack_frame(data: bytes) -> Tuple[MsgType, Dict[str, Any]]:
    """Decode one complete frame from ``data`` (must be exactly one frame)."""
    if len(data) < HEADER_BYTES:
        raise ProtocolError("frame shorter than header")
    magic, version, msg_type, length, crc = _HEADER.unpack(
        data[:HEADER_BYTES]
    )
    _check_header(magic, version, msg_type, length)
    body = data[HEADER_BYTES:]
    if len(body) != length:
        raise ProtocolError(
            f"frame body is {len(body)} bytes, header says {length}"
        )
    return _decode_body(msg_type, body, crc)


def _check_header(magic: bytes, version: int, msg_type: int, length: int) -> None:
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} unsupported (speaking "
            f"{PROTOCOL_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds cap")
    try:
        MsgType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type:#x}") from None


def _decode_body(
    msg_type: int, body: bytes, crc: int
) -> Tuple[MsgType, Dict[str, Any]]:
    if _frame_crc(msg_type, body) != crc:
        raise ProtocolError("payload CRC mismatch (corrupted frame)")
    payload = decode_value(body)
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a dict")
    return MsgType(msg_type), payload


# -- socket I/O --------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Tuple[MsgType, Dict[str, Any]]:
    """Read exactly one frame; blocks until it arrives.

    Raises :class:`ConnectionClosed` on clean EOF, :class:`ProtocolError`
    on anything malformed, and lets socket timeouts/``OSError`` propagate.
    """
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    magic, version, msg_type, length, crc = _HEADER.unpack(header)
    _check_header(magic, version, msg_type, length)
    body = _recv_exact(sock, length, at_boundary=False) if length else b""
    return _decode_body(msg_type, body, crc)


def write_frame(
    sock: socket.socket, msg_type: MsgType, payload: Dict[str, Any]
) -> None:
    """Serialize and send one frame (``sendall``; caller holds any lock)."""
    sock.sendall(pack_frame(msg_type, payload))
