"""The cluster coordinator: one queue, many nodes, zero trust.

The coordinator owns the same scheduling machinery as the in-process
:class:`repro.serve.service.ProvingService` — a :class:`JobQueue` with
priorities/deadlines/backoff, the §6.1 :class:`MicroBatcher`, the
content-addressed :class:`ArtifactStore`, and :class:`ServiceTelemetry` —
but dispatches ready batches over TCP to registered
:class:`repro.cluster.node.WorkerNode` daemons instead of a local process
pool.  All the batching/retry knobs come from the embedded
:class:`~repro.serve.service.ServiceConfig`, so the local pool and the
cluster share one scheduling code path.

Robustness model:

* **liveness** — every frame from a node refreshes ``last_seen``; a
  monitor thread declares a node dead after ``heartbeat_timeout`` silent
  seconds (socket EOF/reset is detected immediately);
* **failover** — a dead node's in-flight jobs reroute: each job re-enters
  the queue with :meth:`ProofJob.next_backoff` until its retry budget is
  spent, so killing a node mid-batch loses nothing;
* **backpressure** — a node never holds more than ``node_window``
  batches; ready batches queue at the coordinator until a node has room;
* **circuit breaking** — ``breaker_threshold`` *consecutive* faults
  (errors, bad proofs) open a node's breaker for ``breaker_reset``
  seconds: it keeps its warm caches but receives no new work;
* **verification** — every returned proof is checked against the VK
  (:func:`repro.cluster.verification.verify_claims`, the ``k+3``-pairing
  batch check) before the job is acked, so a faulty node can never
  corrupt results.
"""

from __future__ import annotations

import itertools
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import verification
from repro.cluster.protocol import (
    ConnectionClosed,
    MsgType,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.jobs import JobQueue, JobResult, JobState, ProofJob
from repro.serve.service import JobFailedError, ServiceConfig
from repro.serve.store import ArtifactStore
from repro.serve.telemetry import ServiceTelemetry


@dataclass
class ClusterConfig:
    """Coordinator tunables; scheduling knobs live in ``service``."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = bind an ephemeral port (reported by start())
    heartbeat_interval: float = 0.5  # expected node heartbeat period
    heartbeat_timeout: float = 3.0  # silent seconds before a node is dead
    node_window: int = 2  # max in-flight batches per node
    breaker_threshold: int = 3  # consecutive faults to open the breaker
    breaker_reset: float = 5.0  # seconds the breaker stays open
    service: ServiceConfig = field(default_factory=ServiceConfig)


class _Node:
    """Coordinator-side handle for one registered worker node."""

    def __init__(
        self, node_id: str, sock: socket.socket, payload: Dict[str, Any]
    ) -> None:
        self.node_id = node_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.pid = int(payload.get("pid", 0))
        self.window = max(int(payload.get("window", 1)), 1)
        self.pool_workers = int(payload.get("pool_workers", 1))
        self.mode = str(payload.get("mode", "pool"))
        self.registered_at = time.monotonic()
        self.last_seen = self.registered_at
        self.alive = True
        self.inflight: Dict[int, Batch] = {}
        self.consecutive_faults = 0
        self.breaker_open_until = 0.0
        self.breaker_opens = 0
        self.batches_done = 0
        self.jobs_done = 0
        self.faults = 0
        self.last_heartbeat: Dict[str, Any] = {}

    def breaker_open(self, now: float) -> bool:
        return now < self.breaker_open_until

    def has_room(self, now: float) -> bool:
        return (
            self.alive
            and not self.breaker_open(now)
            and len(self.inflight) < self.window
        )

    def stats(self, now: float) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "mode": self.mode,
            "pool_workers": self.pool_workers,
            "window": self.window,
            "alive": self.alive,
            "inflight_batches": len(self.inflight),
            "inflight_jobs": sum(len(b) for b in self.inflight.values()),
            "batches_done": self.batches_done,
            "jobs_done": self.jobs_done,
            "faults": self.faults,
            "breaker_open": self.breaker_open(now),
            "breaker_opens": self.breaker_opens,
            "last_seen_age_seconds": now - self.last_seen,
            "heartbeat": dict(self.last_heartbeat),
        }


class ClusterCoordinator:
    """TCP coordinator sharding proof batches across registered nodes."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        self.config = replace(config or ClusterConfig(), **overrides)
        cfg = self.config.service
        self._queue = JobQueue()
        self._batcher = MicroBatcher(cfg.max_batch, cfg.max_wait)
        self.telemetry = ServiceTelemetry()
        store_dir = cfg.store_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        self.store = ArtifactStore(store_dir, max_entries=cfg.store_entries)

        self._jobs: Dict[str, ProofJob] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._stop = False
        self._drain = False
        self._input_shapes: Dict[Tuple[str, str, int], Tuple[int, ...]] = {}
        self._terminal_callbacks: List[Callable[[ProofJob], None]] = []

        self._nodes: Dict[str, _Node] = {}
        self._dead_nodes: Dict[str, Dict[str, Any]] = {}
        self._pending: Deque[Batch] = deque()  # ready batches awaiting a node
        # job_id -> (client socket, its send lock): where to push JOB_DONE
        self._watchers: Dict[str, Tuple[socket.socket, threading.Lock]] = {}
        self._client_conns: set = set()
        self.node_deaths = 0
        self.reroutes = 0  # jobs requeued off a dead/faulty node
        self.late_results = 0  # results from nodes already declared dead
        self.bad_proof_batches = 0  # batches failing coordinator verification

        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start the accept/dispatch/monitor threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()
        for target, name in (
            (self._accept_loop, "accept"),
            (self._dispatch_loop, "dispatch"),
            (self._monitor_loop, "monitor"),
        ):
            thread = threading.Thread(
                target=target, name=f"repro-cluster-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self.address

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the cluster; with ``drain`` wait for in-flight jobs first."""
        with self._lock:
            if drain:
                self._drain = True
            else:
                self._stop = True
        self._wake.set()
        if drain:
            self.wait_all(timeout=timeout)
        with self._lock:
            self._stop = True
        self._wake.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            # close() alone does not wake a thread blocked in accept():
            # the syscall pins the kernel socket, leaving the port in
            # LISTEN and an immediate restart on the same address with
            # EADDRINUSE.  shutdown() aborts the pending accept first.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            listener.close()
        with self._lock:
            nodes = list(self._nodes.values())
            clients = list(self._client_conns)
        for node in nodes:
            self._send_to_node(node, MsgType.BYE, {})
            try:
                node.sock.close()
            except OSError:
                pass
        # Sever client connections too: a lingering handler thread from
        # this epoch must not keep answering requests after a restart
        # takes over the address.
        for conn in clients:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- submission / results (mirrors ProvingService) -------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        *,
        image_seed: Optional[int] = None,
        scale: str = "mini",
        seed: int = 0,
        privacy: str = "one-private",
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        tenant: str = "default",
        extra: Optional[dict] = None,
    ) -> str:
        """Enqueue one proving job; returns its job id immediately."""
        with self._lock:
            if self._stop or self._drain:
                raise RuntimeError("cluster is shutting down")
        if image is None:
            if image_seed is None:
                raise ValueError("provide an image or an image_seed")
            image = self._synthesize(model, scale, seed, image_seed)
        cfg = self.config.service
        job = ProofJob(
            job_id=f"job-{next(self._job_ids):06d}",
            model=model,
            image=image,
            scale=scale,
            seed=seed,
            privacy=privacy,
            priority=priority,
            timeout=cfg.default_timeout if timeout is None else timeout,
            max_retries=cfg.max_retries if max_retries is None else max_retries,
            tenant=tenant,
            extra=extra or {},
        )
        job.submitted_at = time.monotonic()
        with self._lock:
            self._jobs[job.job_id] = job
        self._queue.push(job)
        self.telemetry.record_submit(tenant=tenant)
        self.telemetry.record_queue_depth(max(1, self._queue.depth()))
        self._wake.set()
        return job.job_id

    def _synthesize(
        self, model: str, scale: str, seed: int, image_seed: int
    ) -> np.ndarray:
        from repro.nn.data import synthetic_images
        from repro.nn.models import build_model

        key = (model, scale, seed)
        shape = self._input_shapes.get(key)
        if shape is None:
            shape = build_model(model, scale=scale, seed=seed).input_shape
            self._input_shapes[key] = shape
        return synthetic_images(shape, n=1, seed=image_seed)[0]

    def add_terminal_callback(
        self, callback: Callable[[ProofJob], None]
    ) -> None:
        """Invoke ``callback(job)`` after every job reaches a terminal
        state (called on the finalizing thread; must not block long).
        The gateway's crash journal records terminal transitions here."""
        with self._lock:
            self._terminal_callbacks.append(callback)

    def job(self, job_id: str) -> ProofJob:
        with self._lock:
            return self._jobs[job_id]

    def status(self, job_id: str) -> JobState:
        return self.job(job_id).state

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until ``job_id`` is terminal; return its verified result."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            job = self._jobs[job_id]
            while not job.state.terminal:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"{job_id} still {job.state.value}")
                self._terminal.wait(timeout=remaining)
            if job.state is not JobState.DONE:
                raise JobFailedError(job)
            assert job.result is not None
            return job.result

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while any(not j.state.terminal for j in self._jobs.values()):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._terminal.wait(timeout=remaining)
            return True

    def stats(self) -> dict:
        """Service telemetry merged with per-node cluster state."""
        now = time.monotonic()
        snap = self.telemetry.snapshot()
        snap["store"] = self.store.stats()
        with self._lock:
            snap["cluster"] = {
                "nodes": {
                    node_id: node.stats(now)
                    for node_id, node in self._nodes.items()
                },
                "dead_nodes": {k: dict(v) for k, v in self._dead_nodes.items()},
                "node_deaths": self.node_deaths,
                "reroutes": self.reroutes,
                "late_results": self.late_results,
                "bad_proof_batches": self.bad_proof_batches,
                "pending_batches": len(self._pending),
            }
        return snap

    def live_nodes(self) -> List[str]:
        with self._lock:
            return [n.node_id for n in self._nodes.values() if n.alive]

    # -- accept / per-connection handlers --------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed during shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-cluster-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """Dispatch a fresh connection: worker node or submitting client.

        The conn is tracked from accept time (not first frame) so that
        shutdown can sever even connections still awaiting their HELLO —
        a handler thread from a dead epoch must never keep answering
        after a restarted coordinator takes over the address.
        """
        with self._lock:
            if self._stop:
                conn.close()
                return
            self._client_conns.add(conn)
        try:
            msg_type, payload = read_frame(conn)
        except (ProtocolError, OSError):
            with self._lock:
                self._client_conns.discard(conn)
            conn.close()
            return
        if msg_type is MsgType.HELLO:
            with self._lock:
                self._client_conns.discard(conn)
            self._serve_node(conn, payload)
        else:
            self._serve_client(conn, msg_type, payload)

    # -- node side -------------------------------------------------------------------

    def _serve_node(self, conn: socket.socket, hello: Dict[str, Any]) -> None:
        node_id = str(hello.get("node_id") or f"node-{id(conn):x}")
        node = _Node(node_id, conn, hello)
        with self._lock:
            if node_id in self._nodes:  # reconnect: replace the stale handle
                self._node_died(self._nodes[node_id], "replaced by reconnect")
            self._nodes[node_id] = node
            self._dead_nodes.pop(node_id, None)
        try:
            write_frame(conn, MsgType.HELLO_ACK, {"node_id": node_id})
        except OSError:
            self._node_died(node, "handshake failed")
            return
        self._wake.set()
        while node.alive:
            try:
                msg_type, payload = read_frame(conn)
            except (ProtocolError, OSError):
                self._node_died(node, "connection lost")
                return
            node.last_seen = time.monotonic()
            if msg_type is MsgType.HEARTBEAT:
                node.last_heartbeat = {
                    k: v for k, v in payload.items() if k != "node_id"
                }
                self._send_to_node(node, MsgType.HEARTBEAT_ACK, {})
            elif msg_type is MsgType.JOB_RESULT:
                self._on_job_result(node, payload)
            elif msg_type is MsgType.JOB_ERROR:
                self._on_job_error(node, payload)
            elif msg_type is MsgType.BYE:
                self._node_died(node, "deregistered", graceful=True)
                return

    def _send_to_node(
        self, node: _Node, msg_type: MsgType, payload: Dict[str, Any]
    ) -> bool:
        try:
            with node.send_lock:
                write_frame(node.sock, msg_type, payload)
            return True
        except (OSError, ProtocolError):
            self._node_died(node, "send failed")
            return False

    def _node_died(
        self, node: _Node, reason: str, graceful: bool = False
    ) -> None:
        """Mark a node dead and reroute everything it was proving."""
        with self._lock:
            if not node.alive:
                return
            node.alive = False
            if self._nodes.get(node.node_id) is node:
                del self._nodes[node.node_id]
            stranded = list(node.inflight.values())
            node.inflight.clear()
            if not graceful:
                self.node_deaths += 1
            self._dead_nodes[node.node_id] = {
                "reason": reason,
                "graceful": graceful,
                "batches_done": node.batches_done,
                "jobs_done": node.jobs_done,
                "rerouted_jobs": sum(len(b) for b in stranded),
            }
        try:
            node.sock.close()
        except OSError:
            pass
        for batch in stranded:
            with self._lock:
                self.reroutes += len(batch.jobs)
            self._requeue_or_fail(batch, f"node {node.node_id} died: {reason}")
        self._wake.set()

    def _take_batch(self, node: _Node, payload: Dict[str, Any]) -> Optional[Batch]:
        batch_id = payload.get("batch_id")
        with self._lock:
            batch = node.inflight.pop(batch_id, None)
            if batch is None:
                # Already rerouted (node was declared dead, then answered).
                self.late_results += 1
        return batch

    def _on_job_result(self, node: _Node, payload: Dict[str, Any]) -> None:
        batch = self._take_batch(node, payload)
        if batch is None:
            return
        out = payload["out"]
        if out.get("audit_rejected"):
            self._audit_reject(node, batch, out)
            return
        by_id = {r["job_id"]: r for r in out["results"]}
        claims = []
        for job in batch.jobs:
            res = by_id.get(job.job_id)
            claims.append(
                (res["public_inputs"], res["proof"]) if res else ([], b"")
            )
        try:
            verdict = verification.verify_claims(out["vk"], claims)
        except verification.SerializationError as exc:
            self._node_fault(node)
            self._requeue_or_fail(
                batch, f"node {node.node_id} returned a malformed VK: {exc}"
            )
            return

        self.telemetry.record_batch(
            len(batch), out["cold"], out["phases"], out.get("msm_tables"),
            aggregate_layer=out.get("aggregate_layer"),
        )
        vk_key = self.store.put("vk", out["vk"])
        bad_jobs = []
        with self._lock:
            node.batches_done += 1
        for job, ok in zip(batch.jobs, verdict.per_proof):
            if not ok:
                bad_jobs.append(job)
                continue
            res = by_id[job.job_id]
            proof_key = self.store.put("proof", res["proof"])
            job.result = JobResult(
                proof=res["proof"],
                public_inputs=[int(v) for v in res["public_inputs"]],
                logits=[int(v) for v in res["logits"]],
                verified=True,
                worker_pid=int(out["pid"]),
                batch_id=batch.batch_id,
                batch_size=len(batch),
                store_keys={
                    "proof": proof_key,
                    "vk": vk_key,
                    "node": node.node_id,
                },
            )
            with self._lock:
                node.jobs_done += 1
            self._finalize(job, JobState.DONE)
        if bad_jobs:
            with self._lock:
                self.bad_proof_batches += 1
                self.reroutes += len(bad_jobs)
            self._node_fault(node)
            self._requeue_or_fail(
                Batch(batch.batch_id, batch.key, bad_jobs, batch.created_at),
                f"node {node.node_id} returned proofs that fail verification",
            )
        else:
            with self._lock:
                node.consecutive_faults = 0
        self._wake.set()

    def _audit_reject(self, node: _Node, batch: Batch, out: Dict) -> None:
        """Audit rejections are circuit properties — fail without retry."""
        rejected = out["audit_rejected"]
        self.telemetry.record_audit_rejection(len(batch))
        for phase, seconds in out.get("phases", {}).items():
            self.telemetry.phases.add(phase, seconds)
        error = (
            f"circuit audit rejected batch: {rejected['errors']} error(s); "
            f"first: {rejected['first']}"
        )
        with self._lock:
            node.consecutive_faults = 0  # the circuit's fault, not the node's
        for job in batch.jobs:
            job.result = None
            self._finalize(job, JobState.FAILED, error=error)
        self._wake.set()

    def _on_job_error(self, node: _Node, payload: Dict[str, Any]) -> None:
        batch = self._take_batch(node, payload)
        if batch is None:
            return
        self._node_fault(node)
        with self._lock:
            self.reroutes += len(batch.jobs)
        self._requeue_or_fail(
            batch,
            f"node {node.node_id} failed batch: {payload.get('error')}",
        )
        self._wake.set()

    def _node_fault(self, node: _Node) -> None:
        """Count one fault; open the circuit breaker on a streak."""
        cfg = self.config
        with self._lock:
            node.faults += 1
            node.consecutive_faults += 1
            if node.consecutive_faults >= cfg.breaker_threshold:
                node.breaker_open_until = time.monotonic() + cfg.breaker_reset
                node.breaker_opens += 1
                node.consecutive_faults = 0

    # -- scheduling ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        cfg = self.config.service
        while True:
            self._wake.clear()
            now = time.monotonic()
            for job in self._queue.expire(now):
                self._finalize(
                    job, JobState.TIMED_OUT,
                    error="deadline exceeded before dispatch",
                )
            while True:
                job = self._queue.pop(now)
                if job is None:
                    break
                if job.expired(now):
                    self._finalize(
                        job, JobState.TIMED_OUT,
                        error="deadline exceeded before dispatch",
                    )
                    continue
                self._batcher.add(job, now)
            with self._lock:
                force = self._drain or self._stop
            for batch in self._batcher.take_ready(now, force=force):
                self._pending.append(batch)
            self._expire_pending(now)
            self._assign_pending(now)
            inflight = self._inflight_jobs()
            self.telemetry.record_queue_depth(
                self._queue.depth()
                + self._batcher.pending()
                + sum(len(b) for b in self._pending)
            )
            self.telemetry.record_gauges(
                batcher_pending=self._batcher.pending()
                + sum(len(b) for b in self._pending),
                inflight_jobs=inflight,
            )
            with self._lock:
                if self._stop:
                    return
                idle = (
                    self._queue.depth() == 0
                    and self._batcher.pending() == 0
                    and not self._pending
                    and inflight == 0
                )
                if self._drain and idle:
                    return
            self._wake.wait(timeout=cfg.poll_interval)

    def _inflight_jobs(self) -> int:
        with self._lock:
            return sum(
                len(b)
                for node in self._nodes.values()
                for b in node.inflight.values()
            )

    def _pick_node(self, now: float) -> Optional[_Node]:
        """Least-loaded live node with window room (fraction of window used)."""
        with self._lock:
            candidates = [n for n in self._nodes.values() if n.has_room(now)]
            if not candidates:
                return None
            return min(
                candidates,
                key=lambda n: (len(n.inflight) / n.window, n.registered_at),
            )

    def _expire_pending(self, now: float) -> None:
        """Reap deadline-overrun jobs parked in batches awaiting a node.

        ``JobQueue.expire`` only sees queued jobs; with no live node a
        flushed batch can sit in ``_pending`` past every deadline, which
        must surface as TIMED_OUT rather than waiting forever.
        """
        if not self._pending:
            return
        still = deque()
        for batch in self._pending:
            live = []
            for job in batch.jobs:
                if job.expired(now):
                    self._finalize(
                        job, JobState.TIMED_OUT,
                        error="deadline exceeded before dispatch",
                    )
                else:
                    live.append(job)
            if live:
                batch.jobs = live
                still.append(batch)
        self._pending = still

    def _assign_pending(self, now: float) -> None:
        while self._pending:
            node = self._pick_node(now)
            if node is None:
                return
            batch = self._pending.popleft()
            self._dispatch(node, batch, now)

    def _dispatch(self, node: _Node, batch: Batch, now: float) -> None:
        cfg = self.config.service
        spec = {
            "model": batch.jobs[0].model,
            "scale": batch.jobs[0].scale,
            "seed": batch.jobs[0].seed,
            "privacy": batch.jobs[0].privacy,
            "backend": cfg.backend,
            "parallelism": (
                cfg.prove_parallelism
                if cfg.prove_parallelism is not None
                else cfg.msm_parallelism
            ),
            "audit": cfg.audit,
            "gadgets": cfg.gadget_mode,
            "deterministic": cfg.deterministic,
        }
        # Per-layer aggregate fan-out mirrors the local service: the batch
        # key pins every job in the batch to one (split params, layer).
        aggregate = batch.jobs[0].extra.get("aggregate")
        if aggregate:
            spec["aggregate"] = aggregate
        payloads = []
        for job in batch.jobs:
            job.state = JobState.RUNNING
            job.started_at = now
            job.attempts += 1
            payload = {"job_id": job.job_id, "image": job.image}
            if "crash_token" in job.extra:
                payload["crash_token"] = job.extra["crash_token"]
            payloads.append(payload)
        with self._lock:
            node.inflight[batch.batch_id] = batch
        # A failed send marks the node dead, which reroutes this batch too.
        self._send_to_node(
            node,
            MsgType.JOB,
            {"batch_id": batch.batch_id, "spec": spec, "payloads": payloads},
        )

    def _requeue_or_fail(self, batch: Batch, error: str) -> None:
        cfg = self.config.service
        now = time.monotonic()
        for job in batch.jobs:
            if job.expired(now):
                self._finalize(
                    job, JobState.TIMED_OUT, error="deadline exceeded"
                )
            elif job.attempts > job.max_retries:
                self._finalize(job, JobState.FAILED, error=error)
            else:
                self.telemetry.record_retry()
                job.state = JobState.QUEUED
                self._queue.push(job, delay=job.next_backoff(cfg.backoff_base))

    def _monitor_loop(self) -> None:
        cfg = self.config
        period = max(cfg.heartbeat_interval / 2, 0.05)
        while True:
            time.sleep(period)
            with self._lock:
                if self._stop:
                    return
                now = time.monotonic()
                silent = [
                    node
                    for node in self._nodes.values()
                    if now - node.last_seen > cfg.heartbeat_timeout
                ]
            for node in silent:
                self._node_died(node, "heartbeat timeout")

    # -- client side -----------------------------------------------------------------

    def _serve_client(
        self, conn: socket.socket, msg_type: MsgType, payload: Dict[str, Any]
    ) -> None:
        send_lock = threading.Lock()
        with self._lock:
            self._client_conns.add(conn)
        try:
            while True:
                self._handle_client_frame(conn, send_lock, msg_type, payload)
                msg_type, payload = read_frame(conn)
        except (ProtocolError, OSError):
            pass
        finally:
            with self._lock:
                self._client_conns.discard(conn)
                stale = [
                    job_id
                    for job_id, (sock, _) in self._watchers.items()
                    if sock is conn
                ]
                for job_id in stale:
                    del self._watchers[job_id]
            conn.close()

    def _handle_client_frame(
        self,
        conn: socket.socket,
        send_lock: threading.Lock,
        msg_type: MsgType,
        payload: Dict[str, Any],
    ) -> None:
        req = payload.get("req", 0)
        if msg_type is MsgType.SUBMIT:
            try:
                job_id = self.submit(
                    payload["model"],
                    payload.get("image"),
                    image_seed=payload.get("image_seed"),
                    scale=payload.get("scale", "mini"),
                    seed=payload.get("seed", 0),
                    privacy=payload.get("privacy", "one-private"),
                    priority=payload.get("priority", 0),
                    timeout=payload.get("timeout"),
                    tenant=payload.get("tenant", "default"),
                    extra=payload.get("extra") or {},
                )
            except Exception as exc:  # shutting down, bad args, missing keys
                with send_lock:
                    write_frame(
                        conn, MsgType.SUBMIT_ACK, {"req": req, "error": str(exc)}
                    )
                return
            with self._lock:
                self._watchers[job_id] = (conn, send_lock)
                job = self._jobs[job_id]
                already_terminal = job.state.terminal
            with send_lock:
                write_frame(
                    conn, MsgType.SUBMIT_ACK, {"req": req, "job_id": job_id}
                )
            if already_terminal:  # raced to terminal before we registered
                self._push_done(job)
        elif msg_type is MsgType.WATCH:
            # A reconnected client re-registers for its outstanding jobs:
            # live ones get a watcher entry (JOB_DONE will push later),
            # already-terminal ones re-push immediately, and ids this
            # coordinator has never seen (e.g. it restarted) are reported
            # back so the client can fail or resubmit them.
            job_ids = [str(j) for j in payload.get("job_ids") or []]
            unknown, terminal = [], []
            with self._lock:
                for job_id in job_ids:
                    job = self._jobs.get(job_id)
                    if job is None:
                        unknown.append(job_id)
                    elif job.state.terminal:
                        terminal.append(job)
                    else:
                        self._watchers[job_id] = (conn, send_lock)
            with send_lock:
                write_frame(
                    conn,
                    MsgType.WATCH_ACK,
                    {
                        "req": req,
                        "watching": [
                            j for j in job_ids if j not in unknown
                        ],
                        "unknown": unknown,
                    },
                )
            for job in terminal:
                with self._lock:
                    self._watchers[job.job_id] = (conn, send_lock)
                self._push_done(job)
        elif msg_type is MsgType.STATS:
            with send_lock:
                write_frame(
                    conn,
                    MsgType.STATS_REPLY,
                    {"req": req, "stats": _jsonable(self.stats())},
                )
        elif msg_type is MsgType.BYE:
            raise ConnectionClosed("client said BYE")
        else:
            raise ProtocolError(
                f"unexpected {msg_type.name} frame from a client"
            )

    def _push_done(self, job: ProofJob) -> None:
        with self._lock:
            watcher = self._watchers.pop(job.job_id, None)
        if watcher is None:
            return
        conn, send_lock = watcher
        payload: Dict[str, Any] = {
            "job_id": job.job_id,
            "state": job.state.value,
            "error": job.error,
            "attempts": job.attempts,
        }
        if job.result is not None:
            res = job.result
            payload["result"] = {
                "proof": res.proof,
                "public_inputs": list(res.public_inputs),
                "logits": list(res.logits),
                "verified": res.verified,
                "worker_pid": res.worker_pid,
                "batch_id": res.batch_id,
                "batch_size": res.batch_size,
                "store_keys": dict(res.store_keys),
            }
            try:
                payload["result"]["vk"] = self.store.get(res.store_keys["vk"])
            except KeyError:  # evicted by the LRU bound under heavy churn
                payload["result"]["vk"] = None
        try:
            with send_lock:
                write_frame(conn, MsgType.JOB_DONE, payload)
        except (OSError, ProtocolError):
            pass  # client went away; the result stays in self._jobs

    def _finalize(
        self, job: ProofJob, state: JobState, error: Optional[str] = None
    ) -> None:
        with self._terminal:
            job.state = state
            job.error = error
            job.finished_at = time.monotonic()
            self._terminal.notify_all()
        self.telemetry.record_terminal(state.value, tenant=job.tenant)
        with self._lock:
            callbacks = list(self._terminal_callbacks)
        for callback in callbacks:
            try:
                callback(job)
            except Exception:  # observers must never break finalization
                pass
        self._push_done(job)


def _jsonable(obj: Any) -> Any:
    """Strip non-codec types (tuples become lists) for the STATS reply."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj
