"""Command-line interface: compile, prove, verify, serve, and inspect.

Usage (after ``pip install -e .``)::

    python -m repro.cli models                      # Table 4 inventory
    python -m repro.cli compile --model LCS         # circuit statistics
    python -m repro.cli prove --model SHAL --scale mini --out proof.bin
    python -m repro.cli verify --proof proof.bin ... (see prove output)
    python -m repro.cli compare --model LCL         # arkworks vs ZENO
    python -m repro.cli serve --jobs 8 --workers 2  # batched proving service
    python -m repro.cli submit --input img.npy      # one job via the service

``prove`` writes the serialized proof plus a JSON claim file; ``verify``
replays Groth16 verification against them.  The trusted setup is
re-derived from the deterministic seed recorded in the claim, standing in
for CRS distribution (a real deployment ships the verifying key instead).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.compiler import (
    PrivacySetting,
    ZenoCompiler,
    arkworks_options,
    zeno_options,
)
from repro.nn.data import synthetic_images
from repro.nn.models import (
    MODEL_ORDER,
    TRANSFORMER_ORDER,
    build_model,
    model_table,
)
from repro.snark import groth16
from repro.snark.serialize import (
    deserialize_proof,
    deserialize_verifying_key,
    serialize_proof,
)

PRIVACY_CHOICES = {
    "one-private": PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS,
    "both-private": PrivacySetting.PRIVATE_IMAGE_PRIVATE_WEIGHTS,
}


def _build_artifact(args):
    model = build_model(
        args.model, scale=args.scale, seed=args.seed,
        prune=getattr(args, "prune", None),
    )
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    options = zeno_options(
        PRIVACY_CHOICES[args.privacy],
        sparse=getattr(args, "sparse", False),
        relu_mode=getattr(args, "relu_mode", None) or "bits",
    )
    if args.gadgets:
        options.gadget_mode = args.gadgets
    compiler = ZenoCompiler(options)
    return model, image, compiler, compiler.compile_model(model, image)


def _parse_size(text: str) -> int:
    """Parse a human byte size: '512M', '16G', '4096', '1.5G'."""
    text = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    mult = 1
    if text and text[-1].upper() in units:
        mult = units[text[-1].upper()]
        text = text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        raise argparse.ArgumentTypeError(f"unparseable size: {text!r}")


def cmd_models(args) -> int:
    print(f"{'abbr':7s}{'network':18s}{'layers':>7s}{'#FLOPs(K)':>11s}"
          f"{'paper(K)':>10s}")
    for row in model_table(scale=args.scale):
        print(
            f"{row['abbr']:7s}{row['network']:18s}{row['layers']:>7d}"
            f"{row['flops_k']:>11,}{row['paper_flops_k']:>10,}"
        )
    return 0


def _print_relu_comparison(args) -> None:
    """Compile both nonlinearity lowerings and report the constraint delta."""
    model = build_model(
        args.model, scale=args.scale, seed=args.seed,
        prune=getattr(args, "prune", None),
    )
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    counts = {}
    for mode in ("bits", "lookup"):
        options = zeno_options(
            PRIVACY_CHOICES[args.privacy],
            sparse=getattr(args, "sparse", False),
            relu_mode=mode,
        )
        if args.gadgets:
            options.gadget_mode = args.gadgets
        counts[mode] = ZenoCompiler(options).compile_model(
            model, image
        ).num_constraints
    gadgets = args.gadgets or "lean"
    delta = counts["bits"] - counts["lookup"]
    ratio = counts["bits"] / counts["lookup"] if counts["lookup"] else 0.0
    print(
        f"  relu-mode comparison ({gadgets} gadgets): "
        f"bits={counts['bits']:,} lookup={counts['lookup']:,} "
        f"({'saves' if delta >= 0 else 'costs'} {abs(delta):,} constraints, "
        f"{ratio:.2f}x)"
    )


def cmd_compile(args) -> int:
    _, _, compiler, artifact = _build_artifact(args)
    report = compiler.report(artifact)
    print(report.summary())
    lookup = artifact.lookup
    if lookup is not None:
        print(
            f"  lookup ({lookup.mode}): {lookup.total_lookups:,} lookups over "
            f"{len(lookup.tables)} tables, "
            f"{lookup.total_lookup_constraints:,} constraints "
            f"(bit-decomposition estimate "
            f"{lookup.bits_equivalent_constraints:,})"
        )
    if getattr(args, "compare_relu", False):
        _print_relu_comparison(args)
    if artifact.compute.knit_constraints:
        saving = artifact.compute.knit_expressions / artifact.compute.knit_constraints
        print(f"  knit packing: {saving:.1f} equality checks per constraint")
    sparsity = artifact.sparsity
    if sparsity is not None:
        if sparsity.enabled:
            print(
                f"  sparsity: elided {sparsity.zero_terms_elided:,} of "
                f"{sparsity.weight_terms_total:,} weight terms "
                f"({sparsity.zero_rows:,}/{sparsity.total_rows:,} zero rows, "
                f"{sparsity.distinct_rows:,} distinct row plans, "
                f"{sparsity.row_plan_hits:,} plan reuses)"
            )
            if sparsity.outputs_shared or sparsity.relus_shared:
                print(
                    f"  sparsity: shared {sparsity.outputs_shared:,} output "
                    f"sub-circuits, {sparsity.relus_shared:,} ReLU gadgets"
                )
        else:
            print("  sparsity: requested but inactive (weights are private)")
    if args.detail:
        from repro.core.inspect import format_layer_table

        print()
        print(format_layer_table(artifact))
    return 0


def cmd_audit(args) -> int:
    from repro.analysis import assume_from_recipe, audit_system

    model = build_model(
        args.model, scale=args.scale, seed=args.seed,
        prune=getattr(args, "prune", None),
    )
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    options = zeno_options(
        PRIVACY_CHOICES[args.privacy], record_recipe=True,
        sparse=getattr(args, "sparse", False),
        relu_mode=getattr(args, "relu_mode", None) or "bits",
    )
    # Default to the sound gadget profile: lean mode's slack wires are
    # exactly what the determinism check exists to flag.
    options.gadget_mode = args.gadgets or "strict"
    artifact = ZenoCompiler(options).compile_model(model, image)
    assume = assume_from_recipe(artifact.compute.recipe)
    if getattr(args, "per_layer", False):
        from repro.aggregate import audit_split

        split = artifact.split(
            mode=args.boundary_mode, num_segments=args.segments
        )
        report = audit_split(
            split, assume=assume, fuzz=args.fuzz,
            rng=random.Random(args.fuzz_seed),
        )
    else:
        report = audit_system(
            artifact.cs, assume=assume, fuzz=args.fuzz,
            rng=random.Random(args.fuzz_seed),
        )
    print(report.summary())
    if args.json:
        Path(args.json).write_text(report.to_json(indent=2))
        print(f"report: {args.json}")
    return 0 if report.ok else 1


def _cmd_prove_per_layer(args, artifact) -> int:
    """Split at layer boundaries, prove each instance, fold to one file."""
    from repro.aggregate import (
        fold,
        prove_split,
        setup_split,
        verify_aggregate,
    )

    start = time.perf_counter()
    split = artifact.split(mode=args.boundary_mode, num_segments=args.segments)
    setups = setup_split(split, crs_seed=args.crs_seed)
    proofs = prove_split(
        split, setups, crs_seed=args.crs_seed, parallelism=args.parallelism
    )
    agg = fold(split, setups, [proofs], crs_seed=args.crs_seed)
    verdict = verify_aggregate(agg)
    elapsed = time.perf_counter() - start
    assert verdict.ok, f"aggregate self-check failed: {verdict.reason}"

    out = Path(args.out if args.out != "proof.bin" else "aggregate.json")
    agg.save(str(out))
    logits = artifact.public_outputs_signed()
    print(f"prediction: class {int(np.argmax(logits))}")
    for inst in split.instances:
        print(
            f"  layer {inst.index} {inst.name:24s} "
            f"m={inst.cs.num_constraints:6d} pub={inst.cs.num_public:5d} "
            f"rows [{inst.row_start},{inst.row_stop})"
        )
    print(f"aggregate: {out} ({out.stat().st_size} bytes, "
          f"{split.num_instances} layers, mode={split.mode})")
    print(
        f"proved {split.total_constraints()} constraints in {elapsed:.2f}s "
        f"({args.parallelism} worker(s)); verification costs "
        f"{verdict.num_pairings} pairings vs {verdict.naive_pairings} naive"
    )
    print(f"verify with: repro verify --aggregate {out}")
    return 0


def cmd_prove(args) -> int:
    model, image, compiler, artifact = _build_artifact(args)
    if args.per_layer:
        return _cmd_prove_per_layer(args, artifact)
    max_rss = getattr(args, "max_rss", None)
    start = time.perf_counter()
    tmp_store = None
    if max_rss is not None:
        # Streamed mode: the CRS goes through a content-addressed chunk
        # store and the prover maps one chunk at a time, so the working
        # set stays bounded by ZENO_MSM_CHUNK_BYTES instead of the full
        # proving key.
        import os as _os
        import tempfile

        from repro.serve.store import ArtifactStore

        _os.environ.setdefault("ZENO_MSM_CHUNK_BYTES", str(8 << 20))
        tmp_store = tempfile.TemporaryDirectory(prefix="zeno-crs-")
        store = ArtifactStore(tmp_store.name, max_entries=1 << 30)
        setup = groth16.setup(
            artifact.cs, rng=random.Random(args.crs_seed), store=store
        )
    else:
        setup = groth16.setup(artifact.cs, rng=random.Random(args.crs_seed))
    phases: dict = {}
    proof = groth16.prove(
        setup.proving_key, artifact.cs, parallelism=args.parallelism,
        phase_sink=phases,
    )
    elapsed = time.perf_counter() - start
    assert groth16.verify(
        setup.verifying_key, artifact.public_inputs(), proof
    ), "self-check failed"
    if tmp_store is not None:
        tmp_store.cleanup()

    out = Path(args.out)
    out.write_bytes(serialize_proof(proof))
    claim = {
        "model": args.model,
        "scale": args.scale,
        "seed": args.seed,
        "image_seed": args.image_seed,
        "privacy": args.privacy,
        "gadgets": args.gadgets or "lean",
        "relu_mode": getattr(args, "relu_mode", None) or "bits",
        "crs_seed": args.crs_seed,
        "sparse": getattr(args, "sparse", False),
        "prune": getattr(args, "prune", None),
        "public_inputs": [str(v) for v in artifact.public_inputs()],
        "logits": artifact.public_outputs_signed(),
    }
    claim_path = out.with_suffix(out.suffix + ".claim.json")
    claim_path.write_text(json.dumps(claim, indent=2))
    print(f"prediction: class {int(np.argmax(claim['logits']))}")
    print(f"proof:  {out} ({out.stat().st_size} bytes)")
    print(f"claim:  {claim_path}")
    print(f"proved m={artifact.num_constraints} constraints in {elapsed:.2f}s")
    breakdown = ", ".join(f"{k} {v:.3f}s" for k, v in phases.items())
    print(f"prover phases ({args.parallelism} worker(s)): {breakdown}")
    if max_rss is not None:
        from repro.core.metrics import peak_rss_bytes

        peak = peak_rss_bytes()
        status = "within" if peak <= max_rss else "EXCEEDED"
        print(
            f"peak RSS: {peak / (1 << 20):.1f} MiB "
            f"({status} --max-rss {max_rss / (1 << 20):.1f} MiB)"
        )
        if peak > max_rss:
            return 3
    return 0


def _batch_verify_dir(directory: Path) -> int:
    """Verify every ``*.claim.json`` under ``directory`` in one batch pass."""
    from repro.cluster.verification import verify_claims
    from repro.snark.serialize import serialize_verifying_key

    claim_paths = sorted(directory.glob("*.claim.json"))
    if not claim_paths:
        print(f"no *.claim.json files under {directory}")
        return 1

    # Claims that share a verifying key verify together under one
    # random-linear-combination check (k + 3 pairings for k proofs);
    # seed-derived CRSes are rebuilt once per recipe, not per claim.
    vk_cache: dict = {}
    groups: dict = {}
    for claim_path in claim_paths:
        claim = json.loads(claim_path.read_text())
        proof_path = claim_path.with_name(claim_path.name[: -len(".claim.json")])
        if "vk_file" in claim:
            vk_bytes = (claim_path.parent / claim["vk_file"]).read_bytes()
        else:
            recipe = (
                claim["model"], claim["scale"], claim["seed"],
                claim["image_seed"], claim["privacy"], claim["gadgets"],
                claim.get("relu_mode", "bits"),
                claim["crs_seed"], claim.get("sparse", False),
                claim.get("prune"),
            )
            if recipe not in vk_cache:
                ns = argparse.Namespace(
                    model=claim["model"], scale=claim["scale"],
                    seed=claim["seed"], image_seed=claim["image_seed"],
                    privacy=claim["privacy"], gadgets=claim["gadgets"],
                    relu_mode=claim.get("relu_mode", "bits"),
                    sparse=claim.get("sparse", False),
                    prune=claim.get("prune"),
                )
                _, _, _, artifact = _build_artifact(ns)
                setup = groth16.setup(
                    artifact.cs, rng=random.Random(claim["crs_seed"])
                )
                vk_cache[recipe] = serialize_verifying_key(setup.verifying_key)
            vk_bytes = vk_cache[recipe]
        groups.setdefault(vk_bytes, []).append(
            (
                proof_path.name,
                [int(v) for v in claim["public_inputs"]],
                proof_path.read_bytes(),
            )
        )

    failed = 0
    for vk_bytes, entries in groups.items():
        verdict = verify_claims(
            vk_bytes, [(publics, proof) for _, publics, proof in entries]
        )
        for (name, _, _), ok, err in zip(
            entries, verdict.per_proof, verdict.errors
        ):
            detail = f"  ({err})" if err else ""
            print(f"  {name}: {'ACCEPTED' if ok else 'REJECTED'}{detail}")
            failed += 0 if ok else 1
        print(
            f"aggregate ({len(entries)} proof(s), 1 key): "
            f"{'ACCEPTED' if verdict.aggregate else 'REJECTED'}"
        )
    total = sum(len(entries) for entries in groups.values())
    print(
        f"batch verification: {total - failed}/{total} accepted "
        f"across {len(groups)} verifying key(s)"
    )
    return 0 if failed == 0 else 1


def _verify_aggregate_file(path: Path) -> int:
    """Verify a folded per-layer artifact with one batched pairing check."""
    from repro.aggregate import AggregateError, AggregateProof, verify_aggregate
    from repro.field import BN254_FR_MODULUS

    try:
        agg = AggregateProof.load(str(path))
    except (OSError, AggregateError) as exc:
        print(f"aggregate: unreadable artifact: {exc}")
        return 1
    verdict = verify_aggregate(agg)
    print(
        f"aggregate {path}: model={agg.model} mode={agg.mode} "
        f"{len(agg.layers)} layer(s), {len(agg.inferences)} inference(s)"
    )
    if not verdict.ok:
        print(f"verification: REJECTED ({verdict.reason})")
        return 1
    p = BN254_FR_MODULUS
    half = p // 2
    for i, globals_out in enumerate(verdict.globals_per_inference):
        logits = [
            v - p if v > half else v
            for _, v in sorted(globals_out.items())
        ]
        if logits:
            print(
                f"  inference {i}: prediction class "
                f"{int(np.argmax(logits))} (logits {logits})"
            )
    print(
        f"verification: ACCEPTED — {verdict.num_proofs} proofs in "
        f"{verdict.num_pairings} pairings ({verdict.naive_pairings} naive)"
    )
    return 0


def cmd_verify(args) -> int:
    if args.aggregate:
        return _verify_aggregate_file(Path(args.aggregate))
    if args.batch:
        return _batch_verify_dir(Path(args.batch))
    if not (args.proof and args.claim):
        print("verify: either --batch DIR or both --proof and --claim")
        return 2
    proof = deserialize_proof(Path(args.proof).read_bytes())
    claim = json.loads(Path(args.claim).read_text())

    if "vk_file" in claim:
        # Service-produced claim (``submit``): the CRS was generated inside a
        # worker, so the claim ships the verifying key instead of a CRS seed.
        vk_path = Path(args.claim).parent / claim["vk_file"]
        vk = deserialize_verifying_key(vk_path.read_bytes())
        ok = groth16.verify(
            vk, [int(v) for v in claim["public_inputs"]], proof
        )
        print(f"verification: {'ACCEPTED' if ok else 'REJECTED'}")
        return 0 if ok else 1

    # Rebuild the circuit (the verifier knows the public model) and re-derive
    # the CRS from the recorded seed.
    ns = argparse.Namespace(
        model=claim["model"],
        scale=claim["scale"],
        seed=claim["seed"],
        image_seed=claim["image_seed"],
        privacy=claim["privacy"],
        gadgets=claim["gadgets"],
        relu_mode=claim.get("relu_mode", "bits"),
        sparse=claim.get("sparse", False),
        prune=claim.get("prune"),
    )
    _, _, _, artifact = _build_artifact(ns)
    setup = groth16.setup(artifact.cs, rng=random.Random(claim["crs_seed"]))
    ok = groth16.verify(
        setup.verifying_key, [int(v) for v in claim["public_inputs"]], proof
    )
    print(f"verification: {'ACCEPTED' if ok else 'REJECTED'}")
    return 0 if ok else 1


def cmd_compare(args) -> int:
    model = build_model(args.model, scale=args.scale, seed=args.seed)
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    privacy = PRIVACY_CHOICES[args.privacy]
    reports = {}
    for options in (arkworks_options(privacy), zeno_options(privacy)):
        compiler = ZenoCompiler(options)
        artifact = compiler.compile_model(model, image)
        reports[options.name] = compiler.report(artifact)
        print(reports[options.name].summary())
        print()
    speedup = reports["zeno"].speedup_over(reports["arkworks"])
    print(f"end-to-end ZENO speedup: {speedup:.2f}x")
    return 0


def cmd_serve(args) -> int:
    """Run a demo workload through the batched multi-worker proving service."""
    from repro.serve import ProvingService

    service = ProvingService(
        max_workers=args.workers,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        store_dir=args.store_dir,
        msm_parallelism=args.parallelism,
        audit=args.audit,
        gadget_mode=args.gadgets,
    )
    print(
        f"serving {args.jobs} jobs for {args.model}/{args.scale} "
        f"across {args.workers} workers (max batch {args.max_batch})"
    )
    job_ids = [
        service.submit(
            args.model,
            image_seed=args.image_seed + i,
            scale=args.scale,
            seed=args.seed,
            privacy=args.privacy,
        )
        for i in range(args.jobs)
    ]
    for job_id in job_ids:
        res = service.result(job_id, timeout=600)
        print(
            f"{job_id}: class {int(np.argmax(res.logits))}  "
            f"verified={res.verified}  worker={res.worker_pid}  "
            f"batch #{res.batch_id} (size {res.batch_size})  "
            f"proof {len(res.proof)}B -> {res.store_keys['proof']}"
        )
    service.shutdown(drain=True)
    print(json.dumps(service.stats(), indent=2))
    return 0


def cmd_submit(args) -> int:
    """Enqueue one job (from a saved ``.npy`` input) and save its proof."""
    from repro.serve import ProvingService

    if args.input:
        image = np.load(args.input)
    else:
        from repro.nn.data import synthetic_images
        from repro.nn.models import build_model

        shape = build_model(
            args.model, scale=args.scale, seed=args.seed
        ).input_shape
        image = synthetic_images(shape, n=1, seed=args.image_seed)[0]

    service = ProvingService(max_workers=1, max_wait=0.0)
    job_id = service.submit(
        args.model,
        image,
        scale=args.scale,
        seed=args.seed,
        privacy=args.privacy,
    )
    res = service.result(job_id, timeout=600)
    service.shutdown(drain=True)

    out = Path(args.out)
    out.write_bytes(res.proof)
    vk_path = out.with_suffix(out.suffix + ".vk")
    vk_path.write_bytes(service.store.get(res.store_keys["vk"]))
    claim = {
        "model": args.model,
        "scale": args.scale,
        "seed": args.seed,
        "privacy": args.privacy,
        "public_inputs": [str(v) for v in res.public_inputs],
        "logits": res.logits,
        "vk_file": vk_path.name,
    }
    claim_path = out.with_suffix(out.suffix + ".claim.json")
    claim_path.write_text(json.dumps(claim, indent=2))
    print(f"prediction: class {int(np.argmax(res.logits))}")
    print(f"proof:  {out} ({out.stat().st_size} bytes)  verified={res.verified}")
    print(f"vk:     {vk_path}")
    print(f"claim:  {claim_path}")
    return 0


def _parse_address(text: str):
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def cmd_cluster_coordinator(args) -> int:
    """Run a coordinator until interrupted; nodes/clients dial its port."""
    from repro.cluster import ClusterConfig, ClusterCoordinator
    from repro.serve.service import ServiceConfig

    cfg = ClusterConfig(
        host=args.host,
        port=args.port,
        heartbeat_timeout=args.heartbeat_timeout,
        node_window=args.window,
        service=ServiceConfig(
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            max_retries=args.max_retries,
            deterministic=args.deterministic,
            audit=args.audit,
            gadget_mode=args.gadgets,
        ),
    )
    coord = ClusterCoordinator(cfg)
    host, port = coord.start()
    print(f"coordinator listening on {host}:{port}", flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    coord.shutdown(drain=True)
    print(json.dumps(coord.stats(), indent=2, default=repr))
    return 0


def cmd_cluster_worker(args) -> int:
    """Register one proving node with a coordinator and serve batches."""
    from repro.cluster import WorkerNode

    node = WorkerNode(
        _parse_address(args.connect),
        node_id=args.node_id,
        pool_workers=args.pool_workers,
        window=args.window,
        mode=args.mode,
    )
    node.start()
    print(
        f"worker {node.node_id} connected to {args.connect} "
        f"[mode={args.mode} pool={args.pool_workers} window={args.window}]",
        flush=True,
    )
    try:
        node.run_forever()
    except KeyboardInterrupt:
        node.stop()
    return 0


def cmd_cluster_submit(args) -> int:
    """Submit a batch of jobs to a running cluster and collect the proofs."""
    from repro.cluster import ClusterClient

    with ClusterClient(_parse_address(args.connect)) as client:
        job_ids = [
            client.submit(
                args.model,
                image_seed=args.image_seed + i,
                scale=args.scale,
                seed=args.seed,
                privacy=args.privacy,
            )
            for i in range(args.jobs)
        ]
        out_dir = Path(args.out_dir) if args.out_dir else None
        if out_dir:
            out_dir.mkdir(parents=True, exist_ok=True)
        all_verified = True
        for job_id in job_ids:
            res = client.result(job_id, timeout=args.timeout)
            all_verified &= res.verified
            print(
                f"{job_id}: class {int(np.argmax(res.logits))}  "
                f"verified={res.verified}  node={res.store_keys.get('node')}  "
                f"batch #{res.batch_id} (size {res.batch_size})  "
                f"attempts={client.attempts(job_id)}"
            )
            if out_dir:
                # Same naming contract ``verify --batch`` scans for:
                # <name> is the proof, <name>.claim.json the claim,
                # <name>.vk the verifying key the claim references.
                proof_path = out_dir / f"{job_id}.proof.bin"
                proof_path.write_bytes(res.proof)
                vk_path = proof_path.with_suffix(proof_path.suffix + ".vk")
                vk = client.verifying_key(job_id)
                if vk:
                    vk_path.write_bytes(vk)
                claim = {
                    "model": args.model,
                    "scale": args.scale,
                    "seed": args.seed,
                    "privacy": args.privacy,
                    "public_inputs": [str(v) for v in res.public_inputs],
                    "logits": res.logits,
                    "vk_file": vk_path.name,
                }
                claim_path = proof_path.with_suffix(
                    proof_path.suffix + ".claim.json"
                )
                claim_path.write_text(json.dumps(claim, indent=2))
        if args.stats:
            print(json.dumps(client.stats(timeout=30), indent=2, default=repr))
        if out_dir:
            print(f"artifacts: {out_dir} (verify with: repro verify --batch "
                  f"{out_dir})")
    return 0 if all_verified else 1


def cmd_gateway(args) -> int:
    """Run the durable HTTP gateway: journal + coordinator + autoscaler."""
    from repro.cluster import ClusterConfig, ClusterCoordinator
    from repro.gateway import (
        Autoscaler,
        AutoscalerConfig,
        DurableCoordinator,
        GatewayConfig,
        GatewayServer,
        InProcessNodeLauncher,
        JobJournal,
        SubprocessNodeLauncher,
    )
    from repro.serve.service import ServiceConfig

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)

    cluster_cfg = ClusterConfig(
        host="127.0.0.1",
        port=args.cluster_port,
        node_window=args.window,
        service=ServiceConfig(
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            max_retries=args.max_retries,
            deterministic=True,  # recovery re-proves must be byte-identical
            gadget_mode=args.gadgets,
        ),
    )
    coordinator = ClusterCoordinator(cluster_cfg)
    chost, cport = coordinator.start()

    journal = JobJournal(data_dir / "journal.wal")
    durable = DurableCoordinator(coordinator, journal)

    if args.node_mode == "subprocess":
        launcher = SubprocessNodeLauncher(
            (chost, cport), pool_workers=args.pool_workers,
            window=args.window,
        )
    else:
        launcher = InProcessNodeLauncher(
            (chost, cport), mode=args.node_mode,
            pool_workers=args.pool_workers, window=args.window,
        )
    autoscaler = Autoscaler(
        coordinator, launcher,
        AutoscalerConfig(
            min_nodes=args.min_nodes, max_nodes=args.max_nodes,
            scale_up_backlog=args.scale_up_backlog,
            scale_down_idle=args.scale_down_idle,
        ),
    ).start()

    api_keys = dict(kv.split("=", 1) for kv in args.api_key or [])
    weights = {
        t: float(w)
        for t, w in (kv.split("=", 1) for kv in args.tenant_weight or [])
    }
    gateway = GatewayServer(
        durable,
        GatewayConfig(
            host=args.host, port=args.port, api_keys=api_keys,
            tenant_weights=weights, rate=args.rate, burst=args.burst,
        ),
        autoscaler=autoscaler,
    ).start()

    if args.port_file:
        # Atomic: the smoke/bench harness polls for this file to learn
        # the bound port, and must never read a half-written one.
        tmp_path = Path(args.port_file + ".tmp")
        tmp_path.write_text(f"{gateway.host} {gateway.port}\n")
        tmp_path.replace(args.port_file)
    print(
        f"gateway listening on {gateway.host}:{gateway.port} "
        f"(cluster {chost}:{cport}, journal {journal.path}, "
        f"recovered pending={durable.recovered_pending} "
        f"completed={durable.recovered_completed})",
        flush=True,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    gateway.stop()
    autoscaler.stop()
    coordinator.shutdown(drain=True)
    durable.close()
    print(json.dumps(durable.stats(), indent=2, default=repr))
    return 0


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="LCS", choices=MODEL_ORDER + TRANSFORMER_ORDER
    )
    parser.add_argument("--scale", default="mini",
                        choices=["full", "mini", "micro"])
    parser.add_argument("--seed", type=int, default=0, help="weight seed")
    parser.add_argument("--image-seed", type=int, default=42)
    parser.add_argument(
        "--privacy", default="one-private", choices=sorted(PRIVACY_CHOICES)
    )
    parser.add_argument("--gadgets", choices=["lean", "strict"], default=None)
    parser.add_argument(
        "--relu-mode", choices=["bits", "lookup"], default=None,
        help="nonlinearity lowering: bit-decomposition gadgets (default) or "
             "the repro.lookup table argument (required for transformer "
             "models' LUT layers to amortize; both compile either way)",
    )
    parser.add_argument(
        "--sparse", action="store_true",
        help="sparsity-aware compilation: skip zero-weight terms and share "
             "repeated sub-circuits (active when weights are public)",
    )
    parser.add_argument(
        "--prune", default=None, metavar="S[,U]",
        help="magnitude-prune weights before compiling: structured row "
             "fraction, optional unstructured fraction (e.g. '0.6,0.2')",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list the Table 4 networks")
    p_models.add_argument("--scale", default="full",
                          choices=["full", "mini", "micro"])
    p_models.set_defaults(func=cmd_models)

    p_compile = sub.add_parser("compile", help="compile and print statistics")
    _common(p_compile)
    p_compile.add_argument(
        "--detail", action="store_true", help="per-layer constraint table"
    )
    p_compile.add_argument(
        "--compare-relu", action="store_true",
        help="compile with both --relu-mode settings and print the "
             "constraint-count delta (lookup vs bit decomposition)",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_audit = sub.add_parser(
        "audit", help="soundness-audit a compiled circuit (exit 1 on errors)"
    )
    _common(p_audit)
    p_audit.add_argument(
        "--fuzz", type=int, default=0,
        help="adversarial witness mutations to try (0 = lint+determinism only)",
    )
    p_audit.add_argument("--fuzz-seed", type=int, default=2024)
    p_audit.add_argument("--json", default=None,
                         help="also write the full report as JSON")
    p_audit.add_argument(
        "--per-layer", action="store_true",
        help="split at layer boundaries and audit each instance, merging "
             "findings into one layer-attributed report",
    )
    p_audit.add_argument("--segments", type=int, default=None,
                         help="with --per-layer: cap the instance count")
    p_audit.add_argument("--boundary-mode", choices=["public", "hashed"],
                         default="public")
    p_audit.set_defaults(func=cmd_audit)

    p_prove = sub.add_parser("prove", help="generate a Groth16 proof")
    _common(p_prove)
    p_prove.add_argument("--out", default="proof.bin")
    p_prove.add_argument("--crs-seed", type=int, default=2024)
    p_prove.add_argument(
        "--parallelism", type=int, default=1,
        help="prover worker processes: CSR witness rows via the §5.2 "
             "schedule executor, QAP coset-NTT chains, and chunked MSMs "
             "(bn254 G1, large inputs)",
    )
    p_prove.add_argument(
        "--max-rss", type=_parse_size, default=None, metavar="SIZE",
        help="stream the CRS through chunked storage (ZENO_MSM_CHUNK_BYTES "
             "sets the chunk size) and exit 3 if peak RSS exceeds SIZE "
             "(e.g. 512M, 16G)",
    )
    p_prove.add_argument(
        "--per-layer", action="store_true",
        help="prove each layer as an independent Groth16 instance chained "
             "by boundary commitments; writes one aggregate JSON artifact "
             "(default out: aggregate.json)",
    )
    p_prove.add_argument(
        "--segments", type=int, default=None,
        help="with --per-layer: merge layer slices into this many "
             "balanced instances (e.g. match --parallelism)",
    )
    p_prove.add_argument(
        "--boundary-mode", choices=["public", "hashed"], default="public",
        help="boundary tuples as public inputs (default) or as in-circuit "
             "MiMC sponge digests",
    )
    p_prove.set_defaults(func=cmd_prove)

    p_verify = sub.add_parser("verify", help="verify serialized proof(s)")
    p_verify.add_argument("--proof", default=None)
    p_verify.add_argument("--claim", default=None)
    p_verify.add_argument(
        "--batch", default=None, metavar="DIR",
        help="batch-verify every *.claim.json under DIR "
             "(one k+3-pairing check per shared verifying key)",
    )
    p_verify.add_argument(
        "--aggregate", default=None, metavar="FILE",
        help="verify a `prove --per-layer` artifact: boundary-commitment "
             "chain + one batched multi-pairing over all layer proofs",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_compare = sub.add_parser("compare", help="arkworks vs ZENO profiles")
    _common(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_serve = sub.add_parser(
        "serve", help="run a demo workload on the batched proving service"
    )
    _common(p_serve)
    p_serve.add_argument("--jobs", type=int, default=8)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--max-batch", type=int, default=4)
    p_serve.add_argument("--max-wait", type=float, default=0.05)
    p_serve.add_argument("--store-dir", default=None,
                         help="artifact store directory (default: temp)")
    p_serve.add_argument(
        "--parallelism", type=int, default=1,
        help="prover-engine processes per proving worker (CSR witness "
             "rows, QAP NTT chains, and chunked bn254 MSMs)",
    )
    p_serve.add_argument(
        "--audit", action="store_true",
        help="soundness-audit each cold circuit before proving "
             "(pair with --gadgets strict; rejected batches fail their jobs)",
    )
    p_serve.set_defaults(func=cmd_serve, model="SHAL")

    p_submit = sub.add_parser(
        "submit", help="prove one saved input through the service"
    )
    _common(p_submit)
    p_submit.add_argument("--input", default=None,
                          help=".npy image file (default: synthetic)")
    p_submit.add_argument("--out", default="proof.bin")
    p_submit.set_defaults(func=cmd_submit, model="SHAL")

    p_cluster = sub.add_parser(
        "cluster", help="distributed proving cluster (coordinator/worker/submit)"
    )
    cluster_sub = p_cluster.add_subparsers(dest="role", required=True)

    p_coord = cluster_sub.add_parser(
        "coordinator", help="run the scheduling/verifying coordinator"
    )
    p_coord.add_argument("--host", default="127.0.0.1")
    p_coord.add_argument("--port", type=int, default=0,
                         help="0 = bind an ephemeral port (printed at startup)")
    p_coord.add_argument("--max-batch", type=int, default=4)
    p_coord.add_argument("--max-wait", type=float, default=0.05)
    p_coord.add_argument("--max-retries", type=int, default=2)
    p_coord.add_argument("--window", type=int, default=2,
                         help="max in-flight batches per node")
    p_coord.add_argument("--heartbeat-timeout", type=float, default=3.0)
    p_coord.add_argument(
        "--deterministic", action="store_true",
        help="derive proof blinding from the job so every node emits "
             "byte-identical proofs for the same job",
    )
    p_coord.add_argument("--audit", action="store_true",
                         help="soundness-audit each cold circuit on the nodes")
    p_coord.add_argument("--gadgets", choices=["lean", "strict"], default=None)
    p_coord.set_defaults(func=cmd_cluster_coordinator)

    p_worker = cluster_sub.add_parser(
        "worker", help="run one proving node against a coordinator"
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT")
    p_worker.add_argument("--node-id", default=None)
    p_worker.add_argument("--pool-workers", type=int, default=1,
                          help="proving processes in this node's pool")
    p_worker.add_argument("--window", type=int, default=2,
                          help="batches this node accepts in flight")
    p_worker.add_argument("--mode", choices=["pool", "inline"], default="pool")
    p_worker.set_defaults(func=cmd_cluster_worker)

    p_csubmit = cluster_sub.add_parser(
        "submit", help="submit jobs to a running cluster"
    )
    _common(p_csubmit)
    p_csubmit.add_argument("--connect", required=True, metavar="HOST:PORT")
    p_csubmit.add_argument("--jobs", type=int, default=4)
    p_csubmit.add_argument("--timeout", type=float, default=600.0)
    p_csubmit.add_argument(
        "--out-dir", default=None,
        help="write proof/vk/claim files scannable by `verify --batch`",
    )
    p_csubmit.add_argument("--stats", action="store_true",
                           help="print the coordinator telemetry snapshot")
    p_csubmit.set_defaults(func=cmd_cluster_submit, model="SHAL")

    p_gateway = sub.add_parser(
        "gateway",
        help="durable HTTP front door: WAL journal + coordinator + autoscaler",
    )
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--port", type=int, default=0,
                           help="HTTP port (0 = ephemeral)")
    p_gateway.add_argument("--cluster-port", type=int, default=0,
                           help="coordinator TCP port for external workers")
    p_gateway.add_argument("--data-dir", default="gateway-data",
                           help="journal directory (reused across restarts)")
    p_gateway.add_argument("--port-file", default=None,
                           help="write '<host> <port>' here once bound")
    p_gateway.add_argument("--min-nodes", type=int, default=1)
    p_gateway.add_argument("--max-nodes", type=int, default=4)
    p_gateway.add_argument(
        "--node-mode", choices=["inline", "pool", "subprocess"],
        default="inline",
        help="autoscaled workers: in-process threads, in-process pools, "
             "or `cluster worker` subprocesses",
    )
    p_gateway.add_argument("--pool-workers", type=int, default=1)
    p_gateway.add_argument("--window", type=int, default=2)
    p_gateway.add_argument("--max-batch", type=int, default=4)
    p_gateway.add_argument("--max-wait", type=float, default=0.05)
    p_gateway.add_argument("--max-retries", type=int, default=2)
    p_gateway.add_argument("--scale-up-backlog", type=float, default=8.0)
    p_gateway.add_argument("--scale-down-idle", type=float, default=10.0)
    p_gateway.add_argument(
        "--api-key", action="append", metavar="KEY=TENANT",
        help="repeatable; enables X-API-Key auth when given",
    )
    p_gateway.add_argument(
        "--tenant-weight", action="append", metavar="TENANT=WEIGHT",
        help="repeatable; fair-share admission weights (default 1)",
    )
    p_gateway.add_argument("--rate", type=float, default=0.0,
                           help="per-tenant token-bucket refill, req/s "
                                "(0 = unlimited)")
    p_gateway.add_argument("--burst", type=int, default=64)
    p_gateway.add_argument("--gadgets", choices=["lean", "strict"],
                           default=None)
    p_gateway.set_defaults(func=cmd_gateway)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
