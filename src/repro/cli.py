"""Command-line interface: compile, prove, verify, serve, and inspect.

Usage (after ``pip install -e .``)::

    python -m repro.cli models                      # Table 4 inventory
    python -m repro.cli compile --model LCS         # circuit statistics
    python -m repro.cli prove --model SHAL --scale mini --out proof.bin
    python -m repro.cli verify --proof proof.bin ... (see prove output)
    python -m repro.cli compare --model LCL         # arkworks vs ZENO
    python -m repro.cli serve --jobs 8 --workers 2  # batched proving service
    python -m repro.cli submit --input img.npy      # one job via the service

``prove`` writes the serialized proof plus a JSON claim file; ``verify``
replays Groth16 verification against them.  The trusted setup is
re-derived from the deterministic seed recorded in the claim, standing in
for CRS distribution (a real deployment ships the verifying key instead).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.compiler import (
    PrivacySetting,
    ZenoCompiler,
    arkworks_options,
    zeno_options,
)
from repro.nn.data import synthetic_images
from repro.nn.models import MODEL_ORDER, build_model, model_table
from repro.snark import groth16
from repro.snark.serialize import (
    deserialize_proof,
    deserialize_verifying_key,
    serialize_proof,
)

PRIVACY_CHOICES = {
    "one-private": PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS,
    "both-private": PrivacySetting.PRIVATE_IMAGE_PRIVATE_WEIGHTS,
}


def _build_artifact(args):
    model = build_model(args.model, scale=args.scale, seed=args.seed)
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    options = zeno_options(PRIVACY_CHOICES[args.privacy])
    if args.gadgets:
        options.gadget_mode = args.gadgets
    compiler = ZenoCompiler(options)
    return model, image, compiler, compiler.compile_model(model, image)


def cmd_models(args) -> int:
    print(f"{'abbr':7s}{'network':18s}{'layers':>7s}{'#FLOPs(K)':>11s}"
          f"{'paper(K)':>10s}")
    for row in model_table(scale=args.scale):
        print(
            f"{row['abbr']:7s}{row['network']:18s}{row['layers']:>7d}"
            f"{row['flops_k']:>11,}{row['paper_flops_k']:>10,}"
        )
    return 0


def cmd_compile(args) -> int:
    _, _, compiler, artifact = _build_artifact(args)
    report = compiler.report(artifact)
    print(report.summary())
    if artifact.compute.knit_constraints:
        saving = artifact.compute.knit_expressions / artifact.compute.knit_constraints
        print(f"  knit packing: {saving:.1f} equality checks per constraint")
    if args.detail:
        from repro.core.inspect import format_layer_table

        print()
        print(format_layer_table(artifact))
    return 0


def cmd_audit(args) -> int:
    from repro.analysis import assume_from_recipe, audit_system

    model = build_model(args.model, scale=args.scale, seed=args.seed)
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    options = zeno_options(PRIVACY_CHOICES[args.privacy], record_recipe=True)
    # Default to the sound gadget profile: lean mode's slack wires are
    # exactly what the determinism check exists to flag.
    options.gadget_mode = args.gadgets or "strict"
    artifact = ZenoCompiler(options).compile_model(model, image)
    report = audit_system(
        artifact.cs,
        assume=assume_from_recipe(artifact.compute.recipe),
        fuzz=args.fuzz,
        rng=random.Random(args.fuzz_seed),
    )
    print(report.summary())
    if args.json:
        Path(args.json).write_text(report.to_json(indent=2))
        print(f"report: {args.json}")
    return 0 if report.ok else 1


def cmd_prove(args) -> int:
    model, image, compiler, artifact = _build_artifact(args)
    start = time.perf_counter()
    setup = groth16.setup(artifact.cs, rng=random.Random(args.crs_seed))
    phases: dict = {}
    proof = groth16.prove(
        setup.proving_key, artifact.cs, parallelism=args.parallelism,
        phase_sink=phases,
    )
    elapsed = time.perf_counter() - start
    assert groth16.verify(
        setup.verifying_key, artifact.public_inputs(), proof
    ), "self-check failed"

    out = Path(args.out)
    out.write_bytes(serialize_proof(proof))
    claim = {
        "model": args.model,
        "scale": args.scale,
        "seed": args.seed,
        "image_seed": args.image_seed,
        "privacy": args.privacy,
        "gadgets": args.gadgets or "lean",
        "crs_seed": args.crs_seed,
        "public_inputs": [str(v) for v in artifact.public_inputs()],
        "logits": artifact.public_outputs_signed(),
    }
    claim_path = out.with_suffix(out.suffix + ".claim.json")
    claim_path.write_text(json.dumps(claim, indent=2))
    print(f"prediction: class {int(np.argmax(claim['logits']))}")
    print(f"proof:  {out} ({out.stat().st_size} bytes)")
    print(f"claim:  {claim_path}")
    print(f"proved m={artifact.num_constraints} constraints in {elapsed:.2f}s")
    breakdown = ", ".join(f"{k} {v:.3f}s" for k, v in phases.items())
    print(f"prover phases ({args.parallelism} worker(s)): {breakdown}")
    return 0


def cmd_verify(args) -> int:
    proof = deserialize_proof(Path(args.proof).read_bytes())
    claim = json.loads(Path(args.claim).read_text())

    if "vk_file" in claim:
        # Service-produced claim (``submit``): the CRS was generated inside a
        # worker, so the claim ships the verifying key instead of a CRS seed.
        vk_path = Path(args.claim).parent / claim["vk_file"]
        vk = deserialize_verifying_key(vk_path.read_bytes())
        ok = groth16.verify(
            vk, [int(v) for v in claim["public_inputs"]], proof
        )
        print(f"verification: {'ACCEPTED' if ok else 'REJECTED'}")
        return 0 if ok else 1

    # Rebuild the circuit (the verifier knows the public model) and re-derive
    # the CRS from the recorded seed.
    ns = argparse.Namespace(
        model=claim["model"],
        scale=claim["scale"],
        seed=claim["seed"],
        image_seed=claim["image_seed"],
        privacy=claim["privacy"],
        gadgets=claim["gadgets"],
    )
    _, _, _, artifact = _build_artifact(ns)
    setup = groth16.setup(artifact.cs, rng=random.Random(claim["crs_seed"]))
    ok = groth16.verify(
        setup.verifying_key, [int(v) for v in claim["public_inputs"]], proof
    )
    print(f"verification: {'ACCEPTED' if ok else 'REJECTED'}")
    return 0 if ok else 1


def cmd_compare(args) -> int:
    model = build_model(args.model, scale=args.scale, seed=args.seed)
    image = synthetic_images(model.input_shape, n=1, seed=args.image_seed)[0]
    privacy = PRIVACY_CHOICES[args.privacy]
    reports = {}
    for options in (arkworks_options(privacy), zeno_options(privacy)):
        compiler = ZenoCompiler(options)
        artifact = compiler.compile_model(model, image)
        reports[options.name] = compiler.report(artifact)
        print(reports[options.name].summary())
        print()
    speedup = reports["zeno"].speedup_over(reports["arkworks"])
    print(f"end-to-end ZENO speedup: {speedup:.2f}x")
    return 0


def cmd_serve(args) -> int:
    """Run a demo workload through the batched multi-worker proving service."""
    from repro.serve import ProvingService

    service = ProvingService(
        max_workers=args.workers,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        store_dir=args.store_dir,
        msm_parallelism=args.parallelism,
        audit=args.audit,
        gadget_mode=args.gadgets,
    )
    print(
        f"serving {args.jobs} jobs for {args.model}/{args.scale} "
        f"across {args.workers} workers (max batch {args.max_batch})"
    )
    job_ids = [
        service.submit(
            args.model,
            image_seed=args.image_seed + i,
            scale=args.scale,
            seed=args.seed,
            privacy=args.privacy,
        )
        for i in range(args.jobs)
    ]
    for job_id in job_ids:
        res = service.result(job_id, timeout=600)
        print(
            f"{job_id}: class {int(np.argmax(res.logits))}  "
            f"verified={res.verified}  worker={res.worker_pid}  "
            f"batch #{res.batch_id} (size {res.batch_size})  "
            f"proof {len(res.proof)}B -> {res.store_keys['proof']}"
        )
    service.shutdown(drain=True)
    print(json.dumps(service.stats(), indent=2))
    return 0


def cmd_submit(args) -> int:
    """Enqueue one job (from a saved ``.npy`` input) and save its proof."""
    from repro.serve import ProvingService

    if args.input:
        image = np.load(args.input)
    else:
        from repro.nn.data import synthetic_images
        from repro.nn.models import build_model

        shape = build_model(
            args.model, scale=args.scale, seed=args.seed
        ).input_shape
        image = synthetic_images(shape, n=1, seed=args.image_seed)[0]

    service = ProvingService(max_workers=1, max_wait=0.0)
    job_id = service.submit(
        args.model,
        image,
        scale=args.scale,
        seed=args.seed,
        privacy=args.privacy,
    )
    res = service.result(job_id, timeout=600)
    service.shutdown(drain=True)

    out = Path(args.out)
    out.write_bytes(res.proof)
    vk_path = out.with_suffix(out.suffix + ".vk")
    vk_path.write_bytes(service.store.get(res.store_keys["vk"]))
    claim = {
        "model": args.model,
        "scale": args.scale,
        "seed": args.seed,
        "privacy": args.privacy,
        "public_inputs": [str(v) for v in res.public_inputs],
        "logits": res.logits,
        "vk_file": vk_path.name,
    }
    claim_path = out.with_suffix(out.suffix + ".claim.json")
    claim_path.write_text(json.dumps(claim, indent=2))
    print(f"prediction: class {int(np.argmax(res.logits))}")
    print(f"proof:  {out} ({out.stat().st_size} bytes)  verified={res.verified}")
    print(f"vk:     {vk_path}")
    print(f"claim:  {claim_path}")
    return 0


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="LCS", choices=MODEL_ORDER)
    parser.add_argument("--scale", default="mini",
                        choices=["full", "mini", "micro"])
    parser.add_argument("--seed", type=int, default=0, help="weight seed")
    parser.add_argument("--image-seed", type=int, default=42)
    parser.add_argument(
        "--privacy", default="one-private", choices=sorted(PRIVACY_CHOICES)
    )
    parser.add_argument("--gadgets", choices=["lean", "strict"], default=None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_models = sub.add_parser("models", help="list the Table 4 networks")
    p_models.add_argument("--scale", default="full",
                          choices=["full", "mini", "micro"])
    p_models.set_defaults(func=cmd_models)

    p_compile = sub.add_parser("compile", help="compile and print statistics")
    _common(p_compile)
    p_compile.add_argument(
        "--detail", action="store_true", help="per-layer constraint table"
    )
    p_compile.set_defaults(func=cmd_compile)

    p_audit = sub.add_parser(
        "audit", help="soundness-audit a compiled circuit (exit 1 on errors)"
    )
    _common(p_audit)
    p_audit.add_argument(
        "--fuzz", type=int, default=0,
        help="adversarial witness mutations to try (0 = lint+determinism only)",
    )
    p_audit.add_argument("--fuzz-seed", type=int, default=2024)
    p_audit.add_argument("--json", default=None,
                         help="also write the full report as JSON")
    p_audit.set_defaults(func=cmd_audit)

    p_prove = sub.add_parser("prove", help="generate a Groth16 proof")
    _common(p_prove)
    p_prove.add_argument("--out", default="proof.bin")
    p_prove.add_argument("--crs-seed", type=int, default=2024)
    p_prove.add_argument(
        "--parallelism", type=int, default=1,
        help="prover worker processes: CSR witness rows via the §5.2 "
             "schedule executor, QAP coset-NTT chains, and chunked MSMs "
             "(bn254 G1, large inputs)",
    )
    p_prove.set_defaults(func=cmd_prove)

    p_verify = sub.add_parser("verify", help="verify a serialized proof")
    p_verify.add_argument("--proof", required=True)
    p_verify.add_argument("--claim", required=True)
    p_verify.set_defaults(func=cmd_verify)

    p_compare = sub.add_parser("compare", help="arkworks vs ZENO profiles")
    _common(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_serve = sub.add_parser(
        "serve", help="run a demo workload on the batched proving service"
    )
    _common(p_serve)
    p_serve.add_argument("--jobs", type=int, default=8)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--max-batch", type=int, default=4)
    p_serve.add_argument("--max-wait", type=float, default=0.05)
    p_serve.add_argument("--store-dir", default=None,
                         help="artifact store directory (default: temp)")
    p_serve.add_argument(
        "--parallelism", type=int, default=1,
        help="prover-engine processes per proving worker (CSR witness "
             "rows, QAP NTT chains, and chunked bn254 MSMs)",
    )
    p_serve.add_argument(
        "--audit", action="store_true",
        help="soundness-audit each cold circuit before proving "
             "(pair with --gadgets strict; rejected batches fail their jobs)",
    )
    p_serve.set_defaults(func=cmd_serve, model="SHAL")

    p_submit = sub.add_parser(
        "submit", help="prove one saved input through the service"
    )
    _common(p_submit)
    p_submit.add_argument("--input", default=None,
                          help=".npy image file (default: synthetic)")
    p_submit.add_argument("--out", default="proof.bin")
    p_submit.set_defaults(func=cmd_submit, model="SHAL")

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
