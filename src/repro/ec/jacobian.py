"""Jacobian-coordinate G1 arithmetic: the inversion-free fast path.

Affine point addition (:mod:`repro.ec.curve`) pays one field inversion per
operation — fine for tests, ruinous for MSMs.  This module implements the
standard Jacobian projective formulas for BN254 G1 (``a = 0``), where a
point ``(X, Y, Z)`` represents affine ``(X/Z^2, Y/Z^3)``:

* doubling: 2M + 5S (a = 0 shortcut), no inversion;
* mixed addition (Jacobian + affine): 7M + 4S, no inversion;
* one inversion total at the end of an MSM, to normalize the result.

Everything is raw-``int`` arithmetic on the base prime.  The test suite
cross-checks every operation against the affine implementation, and
:func:`msm_jacobian` against both Pippenger-over-affine and the naive MSM.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ec.bn254 import BN254_G1
from repro.ec.curve import Point
from repro.ec.msm import pick_window
from repro.field.counters import global_counter
from repro.field.fp import BN254_FQ, BN254_FQ_MODULUS

_Q = BN254_FQ_MODULUS

# A Jacobian point is (X, Y, Z) with Z == 0 encoding infinity.
JPoint = Tuple[int, int, int]

J_INFINITY: JPoint = (1, 1, 0)


def to_jacobian(p: Point) -> JPoint:
    if p.inf:
        return J_INFINITY
    return (p.x.value, p.y.value, 1)


def to_affine(j: JPoint) -> Point:
    x, y, z = j
    if z == 0:
        return BN254_G1.infinity()
    z_inv = pow(z, -1, _Q)
    z2 = (z_inv * z_inv) % _Q
    return BN254_G1.point(
        BN254_FQ((x * z2) % _Q), BN254_FQ((y * z2 * z_inv) % _Q)
    )


def j_double(p: JPoint) -> JPoint:
    """Doubling with the a=0 shortcut (dbl-2009-l)."""
    x, y, z = p
    if z == 0 or y == 0:
        return J_INFINITY
    a = (x * x) % _Q
    b = (y * y) % _Q
    c = (b * b) % _Q
    d = (2 * ((x + b) * (x + b) - a - c)) % _Q
    e = (3 * a) % _Q
    f = (e * e) % _Q
    x3 = (f - 2 * d) % _Q
    y3 = (e * (d - x3) - 8 * c) % _Q
    z3 = (2 * y * z) % _Q
    global_counter().group_add += 1
    return (x3, y3, z3)


def j_add_mixed(p: JPoint, q_affine: Tuple[int, int]) -> JPoint:
    """Mixed addition: Jacobian ``p`` plus affine ``q`` (madd-2007-bl)."""
    x1, y1, z1 = p
    x2, y2 = q_affine
    if z1 == 0:
        return (x2, y2, 1)
    z1z1 = (z1 * z1) % _Q
    u2 = (x2 * z1z1) % _Q
    s2 = (y2 * z1 * z1z1) % _Q
    if u2 == x1:
        if s2 == y1:
            return j_double(p)
        return J_INFINITY
    h = (u2 - x1) % _Q
    hh = (h * h) % _Q
    i = (4 * hh) % _Q
    j = (h * i) % _Q
    r = (2 * (s2 - y1)) % _Q
    v = (x1 * i) % _Q
    x3 = (r * r - j - 2 * v) % _Q
    y3 = (r * (v - x3) - 2 * y1 * j) % _Q
    z3 = ((z1 + h) * (z1 + h) - z1z1 - hh) % _Q
    global_counter().group_add += 1
    return (x3, y3, z3)


def j_add(p: JPoint, q: JPoint) -> JPoint:
    """Full Jacobian addition (add-2007-bl)."""
    x1, y1, z1 = p
    x2, y2, z2 = q
    if z1 == 0:
        return q
    if z2 == 0:
        return p
    z1z1 = (z1 * z1) % _Q
    z2z2 = (z2 * z2) % _Q
    u1 = (x1 * z2z2) % _Q
    u2 = (x2 * z1z1) % _Q
    s1 = (y1 * z2 * z2z2) % _Q
    s2 = (y2 * z1 * z1z1) % _Q
    if u1 == u2:
        if s1 == s2:
            return j_double(p)
        return J_INFINITY
    h = (u2 - u1) % _Q
    i = (4 * h * h) % _Q
    j = (h * i) % _Q
    r = (2 * (s2 - s1)) % _Q
    v = (u1 * i) % _Q
    x3 = (r * r - j - 2 * v) % _Q
    y3 = (r * (v - x3) - 2 * s1 * j) % _Q
    # z3 = ((z1+z2)^2 - z1^2 - z2^2) * h = 2 z1 z2 h
    z3 = ((z1 + z2) * (z1 + z2) - z1z1 - z2z2) % _Q * h % _Q
    global_counter().group_add += 1
    return (x3, y3, z3)


def j_neg(p: JPoint) -> JPoint:
    x, y, z = p
    return (x, (-y) % _Q, z)


def j_scalar_mul(p: JPoint, k: int) -> JPoint:
    k %= BN254_G1.order
    acc = J_INFINITY
    add = p
    while k:
        if k & 1:
            acc = j_add(acc, add)
        k >>= 1
        if k:
            add = j_double(add)
    return acc


def msm_jacobian(
    points: Sequence[Point],
    scalars: Sequence[int],
    window: Optional[int] = None,
) -> Point:
    """Pippenger MSM with Jacobian buckets and affine input points.

    Identical algorithm to :func:`repro.ec.msm.msm`, but bucket
    accumulation uses inversion-free mixed additions — the production
    layout (and ~50x faster in CPython).
    """
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    if not points:
        return BN254_G1.infinity()  # the empty sum is the group identity
    order = BN254_G1.order
    reduced = [s % order for s in scalars]
    affine = [None if p.inf else (p.x.value, p.y.value) for p in points]
    n = len(points)
    c = window or pick_window(n)
    max_bits = max((s.bit_length() for s in reduced), default=1) or 1
    num_windows = (max_bits + c - 1) // c

    total = J_INFINITY
    mask = (1 << c) - 1
    for w in range(num_windows - 1, -1, -1):
        if w != num_windows - 1:
            for _ in range(c):
                total = j_double(total)
        shift = w * c
        buckets: List[JPoint] = [J_INFINITY] * mask
        for pt, scalar in zip(affine, reduced):
            if pt is None:
                continue
            idx = (scalar >> shift) & mask
            if idx:
                buckets[idx - 1] = j_add_mixed(buckets[idx - 1], pt)
        running = J_INFINITY
        window_sum = J_INFINITY
        for bucket in reversed(buckets):
            running = j_add(running, bucket)
            window_sum = j_add(window_sum, running)
        total = j_add(total, window_sum)
    return to_affine(total)
