"""Elliptic-curve substrate for the Groth16 security-computation phase.

The paper's artifact proves over BN254 ("BN254 for the rest of us" [53] in
the paper's bibliography).  This package implements, from scratch:

* the Fp2/Fp6-free generic extension tower (:mod:`repro.ec.tower`) — BN254
  Fq2 and Fq12 as polynomial extension fields;
* generic Jacobian short-Weierstrass point arithmetic
  (:mod:`repro.ec.curve`) instantiated for G1 (over Fq), G2 (over Fq2) and
  the Fq12 embedding used by the pairing;
* the optimal-ate pairing (:mod:`repro.ec.pairing`) — Miller loop plus final
  exponentiation;
* Pippenger bucketed multi-scalar multiplication (:mod:`repro.ec.msm`), the
  dominant cost of security computation;
* an exponent-tracking *simulated* bilinear group
  (:mod:`repro.ec.simulated`) with the identical API, used by the benchmark
  sweeps (see DESIGN.md "Substitutions");
* the :class:`~repro.ec.backend.GroupBackend` interface the SNARK layer
  programs against.
"""

from repro.ec.tower import FQ2, FQ12, fq2, fq12
from repro.ec.curve import CurveGroup, Point
from repro.ec.bn254 import BN254_G1, BN254_G2, bn254_pairing
from repro.ec.msm import msm
from repro.ec.backend import GroupBackend, RealBN254Backend, SimulatedBackend

__all__ = [
    "FQ2",
    "FQ12",
    "fq2",
    "fq12",
    "CurveGroup",
    "Point",
    "BN254_G1",
    "BN254_G2",
    "bn254_pairing",
    "msm",
    "GroupBackend",
    "RealBN254Backend",
    "SimulatedBackend",
]
