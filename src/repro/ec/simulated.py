"""Exponent-tracking simulated bilinear group.

Pure-Python pairings cost seconds each, which would drown the benchmark
sweeps the paper's figures require.  This module provides a drop-in group
whose elements record their discrete logarithm with respect to the group
generator (an ``int`` mod ``r``):

* ``a + b``       -> logs add
* ``k * a``       -> log scales
* ``e(P, Q)``     -> logs multiply (into GT)

Every Groth16 algebraic identity over the real pairing group holds over
this group *iff* it holds as a polynomial identity in the exponents — which
is exactly the identity Groth16's soundness argument reasons about.  The
simulated group therefore preserves proof-system behaviour (a bad witness
still fails verification) while making each group operation a single bigint
multiplication.

What it does **not** preserve is hardness: discrete logs are stored in the
clear, so this backend offers no cryptographic security.  It is a
performance model, not a cryptosystem; the real BN254 backend
(:class:`repro.ec.backend.RealBN254Backend`) exists for end-to-end
soundness demonstrations.

Operation counters are bumped with the *relative* costs of the real
operations (a G2 op costs ~2x a G1 op; a pairing costs ~50 scalar muls), so
cost-model latency derived from counters matches real-backend proportions.
"""

from __future__ import annotations

from typing import Sequence

from repro.field.counters import global_counter
from repro.field.fp import BN254_FR_MODULUS

_R = BN254_FR_MODULUS

G1_TAG = "G1"
G2_TAG = "G2"
GT_TAG = "GT"

# Relative per-operation weights (in "G1 additions") used by the counters.
_ADD_WEIGHT = {G1_TAG: 1, G2_TAG: 2, GT_TAG: 6}
_SCALAR_WEIGHT = {G1_TAG: 1, G2_TAG: 2, GT_TAG: 6}


class SimPoint:
    """A simulated group element: a tagged discrete log modulo ``r``."""

    __slots__ = ("tag", "log")

    def __init__(self, tag: str, log: int) -> None:
        self.tag = tag
        self.log = log % _R

    def is_infinity(self) -> bool:
        return self.log == 0

    def __add__(self, other: "SimPoint") -> "SimPoint":
        if not isinstance(other, SimPoint):
            return NotImplemented
        if other.tag != self.tag:
            raise ValueError(f"cannot add {self.tag} and {other.tag} elements")
        global_counter().group_add += _ADD_WEIGHT[self.tag]
        return SimPoint(self.tag, self.log + other.log)

    def __sub__(self, other: "SimPoint") -> "SimPoint":
        return self + (-other)

    def __neg__(self) -> "SimPoint":
        return SimPoint(self.tag, -self.log)

    def __mul__(self, scalar: int) -> "SimPoint":
        if not isinstance(scalar, int):
            return NotImplemented
        global_counter().group_scalar_mul += _SCALAR_WEIGHT[self.tag]
        return SimPoint(self.tag, self.log * (scalar % _R))

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimPoint):
            return NotImplemented
        return self.tag == other.tag and self.log == other.log

    def __hash__(self) -> int:
        return hash((self.tag, self.log))

    def __repr__(self) -> str:
        return f"Sim{self.tag}({self.log})"


def sim_generator(tag: str) -> SimPoint:
    return SimPoint(tag, 1)


def sim_pairing(p: SimPoint, q: SimPoint) -> SimPoint:
    """Bilinear map: ``e(g1^a, g2^b) = gt^(a*b)``."""
    if p.tag != G1_TAG or q.tag != G2_TAG:
        raise ValueError(f"pairing expects (G1, G2), got ({p.tag}, {q.tag})")
    global_counter().pairing += 1
    return SimPoint(GT_TAG, p.log * q.log)


def sim_msm(
    points: Sequence[SimPoint],
    scalars: Sequence[int],
    tag: str = None,
) -> SimPoint:
    """MSM over the simulated group (cost counted like Pippenger).

    The arithmetic shortcut is a dot product of logs; the counters are
    charged what a bucketed MSM of this size would cost on the real curve so
    that the latency model sees realistic security-computation cost.

    The empty MSM is the group identity; since there is no point to read a
    tag from, callers must supply ``tag`` to get it.
    """
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    if not points:
        if tag is None:
            raise ValueError("empty sim_msm needs tag= to return identity")
        return SimPoint(tag, 0)
    from repro.ec.msm import pick_window

    tag = points[0].tag
    n = len(points)
    window = pick_window(n)
    pippenger_adds = (256 // window) * (n + 2**window)
    global_counter().group_add += _ADD_WEIGHT[tag] * pippenger_adds
    acc = 0
    for point, scalar in zip(points, scalars):
        if point.tag != tag:
            raise ValueError("mixed group tags in msm")
        acc += point.log * (scalar % _R)
    return SimPoint(tag, acc)


class SimFixedBaseTable:
    """Simulated analogue of :class:`repro.ec.fixed_base.FixedBaseTableG1`.

    Stores the base logs once and tracks ``uses`` so the serving layer can
    assert CRS tables are reused across jobs.  The counters are charged
    the *fixed-base* cost — bucket additions only, no doubling chain and a
    single fold — which is what the latency model should see once the
    shifted-window tables exist.
    """

    def __init__(self, points: Sequence[SimPoint], tag: str = None) -> None:
        if points:
            tag = points[0].tag
        elif tag is None:
            raise ValueError("empty table needs tag= for its identity")
        self.tag = tag
        self.logs = [p.log for p in points]
        self.n = len(self.logs)
        self.uses = 0

    def msm(self, scalars: Sequence[int]) -> SimPoint:
        if len(scalars) > self.n:
            raise ValueError(
                f"{len(scalars)} scalars for a table of {self.n} points"
            )
        self.uses += 1
        from repro.ec.msm import pick_window

        window = pick_window(max(self.n, 1), signed=True)
        fixed_base_adds = (256 // window) * max(self.n, 1) + 2 ** (window - 1)
        global_counter().group_add += _ADD_WEIGHT[self.tag] * fixed_base_adds
        acc = 0
        for log, scalar in zip(self.logs, scalars):
            acc += log * (scalar % _R)
        return SimPoint(self.tag, acc)
