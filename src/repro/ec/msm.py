"""Pippenger multi-scalar multiplication.

Security computation in Groth16 is dominated by MSMs: the prover computes
``sum_i w_i * G_i`` over the witness (size ``n``) and over the QAP quotient
coefficients (size ``m``).  The paper's observation that proof latency is
proportional to ``n`` and ``m`` (§2.1) is precisely the MSM size.

This is the textbook bucketed (Pippenger) algorithm: split scalars into
``c``-bit windows, accumulate points into ``2^c - 1`` buckets per window,
then fold buckets with a running-sum sweep.  Complexity is roughly
``(bits / c) * (n + 2^c)`` group additions versus ``1.5 * bits * n`` for
naive double-and-add.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ec.curve import CurveGroup, Point


def _pick_window(n: int) -> int:
    """Heuristic window size: ~log2(n) - 2, clamped to [2, 16]."""
    if n < 4:
        return 2
    return max(2, min(16, n.bit_length() - 2))


def msm(
    points: Sequence[Point],
    scalars: Sequence[int],
    window: Optional[int] = None,
) -> Point:
    """Compute ``sum_i scalars[i] * points[i]`` with bucketed windows."""
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    if not points:
        raise ValueError("msm requires at least one point")
    group: CurveGroup = points[0].group
    order = group.order
    reduced = [s % order if order else s for s in scalars]
    c = window or _pick_window(len(points))
    max_bits = max((s.bit_length() for s in reduced), default=1) or 1
    num_windows = (max_bits + c - 1) // c

    total = group.infinity()
    for w in range(num_windows - 1, -1, -1):
        if w != num_windows - 1:
            for _ in range(c):
                total = group.double(total)
        shift = w * c
        mask = (1 << c) - 1
        buckets = [group.infinity() for _ in range(mask)]
        for point, scalar in zip(points, reduced):
            idx = (scalar >> shift) & mask
            if idx:
                buckets[idx - 1] = group.add(buckets[idx - 1], point)
        running = group.infinity()
        window_sum = group.infinity()
        for bucket in reversed(buckets):
            running = group.add(running, bucket)
            window_sum = group.add(window_sum, running)
        total = group.add(total, window_sum)
    return total


def msm_naive(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Reference double-and-add MSM used to cross-check Pippenger in tests."""
    if not points:
        raise ValueError("msm_naive requires at least one point")
    group = points[0].group
    acc = group.infinity()
    for point, scalar in zip(points, scalars):
        acc = group.add(acc, group.scalar_mul(point, scalar))
    return acc
