"""Pippenger multi-scalar multiplication.

Security computation in Groth16 is dominated by MSMs: the prover computes
``sum_i w_i * G_i`` over the witness (size ``n``) and over the QAP quotient
coefficients (size ``m``).  The paper's observation that proof latency is
proportional to ``n`` and ``m`` (§2.1) is precisely the MSM size.

This module holds the generic (any :class:`~repro.ec.curve.CurveGroup`,
affine-coordinate) Pippenger implementation plus the shared helpers every
MSM variant uses:

* :func:`pick_window` — window size chosen by the ``(bits/c)·(n + B_c)``
  cost model, where ``B_c`` is the bucket count of the variant;
* :func:`signed_digits` — wNAF-style signed ``c``-bit digit decomposition,
  which halves the bucket count (digits in ``[-2^(c-1), 2^(c-1)]``).

The fast G1-only engines live next door: :mod:`repro.ec.jacobian`
(inversion-free buckets), :mod:`repro.ec.batch_affine` (batched affine
buckets + the chunked parallel mode), and :mod:`repro.ec.fixed_base`
(precomputed tables for CRS-style fixed bases).

An MSM over the empty vector is the group identity; the implementations
return it when they know the group (``msm_jacobian`` always does; the
generic entry points take an optional ``group=``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ec.curve import CurveGroup, Point

# Hard cap on the window size.  The old heuristic clamped at 16, which
# allocates 65,535 bucket slots per window for large MSMs; past ~13 the
# cost model's marginal gain is tiny while the per-window bucket sweep and
# allocation dominate, so we bound the search here (8,191 slots max).
MAX_WINDOW = 13


def pick_window(n: int, bits: int = 254, signed: bool = False) -> int:
    """Window size minimizing the ``(bits/c) * (n + buckets)`` cost model.

    ``buckets`` is ``2^c - 1`` for the unsigned bucketing and ``2^(c-1)``
    when signed digits halve the bucket count.  The argmin stays near 13
    for any practical ``n`` (the old ``min(16, log2 n - 2)`` clamp kept
    growing and allocated 65,535 slots per window for n >= 2^18).
    """
    if n < 4:
        return 2
    best_c = 2
    best_cost = None
    for c in range(2, MAX_WINDOW + 1):
        buckets = (1 << (c - 1)) if signed else (1 << c) - 1
        cost = -(-bits // c) * (n + buckets)
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


# Backwards-compatible alias (the old private name is referenced in tests).
_pick_window = pick_window


def signed_digits(scalar: int, c: int, num_windows: int) -> List[int]:
    """Signed ``c``-bit digit decomposition of a non-negative scalar.

    Returns ``num_windows`` digits ``d_j`` in ``[-(2^(c-1) - 1), 2^(c-1)]``
    with ``scalar == sum_j d_j * 2^(c*j)``.  Callers must size
    ``num_windows`` to absorb the final carry (``ceil(bits/c) + 1``).
    """
    mask = (1 << c) - 1
    half = 1 << (c - 1)
    digits = [0] * num_windows
    carry = 0
    for j in range(num_windows):
        d = ((scalar >> (j * c)) & mask) + carry
        if d > half:
            d -= 1 << c
            carry = 1
        else:
            carry = 0
        digits[j] = d
    if carry:
        raise ValueError(f"scalar too large for {num_windows} {c}-bit digits")
    return digits


def _empty_result(group: Optional[CurveGroup], caller: str) -> Point:
    if group is None:
        raise ValueError(
            f"{caller} over an empty vector needs group= to return identity"
        )
    return group.infinity()


def msm(
    points: Sequence[Point],
    scalars: Sequence[int],
    window: Optional[int] = None,
    group: Optional[CurveGroup] = None,
) -> Point:
    """Compute ``sum_i scalars[i] * points[i]`` with bucketed windows.

    Works over any :class:`CurveGroup` (this is the G2 path; G1 has the
    faster engines).  Empty input returns ``group.infinity()`` when
    ``group`` is given, else raises — the sum over an empty set is the
    identity, but we cannot conjure the group from nothing.
    """
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    if not points:
        return _empty_result(group, "msm")
    group = points[0].group
    order = group.order
    reduced = [s % order if order else s for s in scalars]
    c = window or pick_window(len(points))
    max_bits = max((s.bit_length() for s in reduced), default=1) or 1
    num_windows = (max_bits + c - 1) // c

    total = group.infinity()
    for w in range(num_windows - 1, -1, -1):
        if w != num_windows - 1:
            for _ in range(c):
                total = group.double(total)
        shift = w * c
        mask = (1 << c) - 1
        buckets = [group.infinity() for _ in range(mask)]
        for point, scalar in zip(points, reduced):
            idx = (scalar >> shift) & mask
            if idx:
                buckets[idx - 1] = group.add(buckets[idx - 1], point)
        running = group.infinity()
        window_sum = group.infinity()
        for bucket in reversed(buckets):
            running = group.add(running, bucket)
            window_sum = group.add(window_sum, running)
        total = group.add(total, window_sum)
    return total


def msm_naive(
    points: Sequence[Point],
    scalars: Sequence[int],
    group: Optional[CurveGroup] = None,
) -> Point:
    """Reference double-and-add MSM used to cross-check the engines."""
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    if not points:
        return _empty_result(group, "msm_naive")
    group = points[0].group
    acc = group.infinity()
    for point, scalar in zip(points, scalars):
        acc = group.add(acc, group.scalar_mul(point, scalar))
    return acc
