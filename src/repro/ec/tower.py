"""Polynomial extension fields for the BN254 pairing.

The optimal-ate pairing on BN254 evaluates in Fq12, constructed here (as in
py_ecc and early arkworks) as direct polynomial extensions of Fq:

* ``Fq2  = Fq[u] / (u^2 + 1)``
* ``Fq12 = Fq[w] / (w^12 - 18 w^6 + 82)``

A single generic :class:`ExtensionField` implements arithmetic for any monic
modulus polynomial: schoolbook multiplication with reduction, and inversion
by the extended Euclidean algorithm over Fq[x].  This is not the fastest
tower (no Karatsuba, no Frobenius precomputation) but it is compact,
auditable, and exactly matches the reference pairing libraries' semantics.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.field.counters import global_counter
from repro.field.fp import BN254_FQ_MODULUS

_Q = BN254_FQ_MODULUS

IntoCoeffs = Union[int, "ExtensionField", Sequence[int]]


class ExtensionField:
    """Element of ``Fq[x] / modulus(x)`` for a fixed monic modulus.

    Subclasses fix ``degree`` and ``modulus_coeffs`` (the low coefficients of
    the monic modulus polynomial, i.e. ``x^degree + sum(c_i x^i)``).
    Coefficients are canonical ints mod the BN254 base prime.
    """

    degree: int = 0
    modulus_coeffs: Sequence[int] = ()

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int]) -> None:
        if len(coeffs) != self.degree:
            raise ValueError(
                f"expected {self.degree} coefficients, got {len(coeffs)}"
            )
        self.coeffs = [c % _Q for c in coeffs]

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls) -> "ExtensionField":
        return cls([0] * cls.degree)

    @classmethod
    def one(cls) -> "ExtensionField":
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def from_int(cls, value: int) -> "ExtensionField":
        return cls([value] + [0] * (cls.degree - 1))

    def _coerce(self, other: IntoCoeffs) -> "ExtensionField":
        if isinstance(other, ExtensionField):
            if type(other) is not type(self):
                raise TypeError(
                    f"cannot mix {type(self).__name__} and {type(other).__name__}"
                )
            return other
        if isinstance(other, int):
            return type(self).from_int(other)
        raise TypeError(f"cannot coerce {other!r} into {type(self).__name__}")

    # -- ring operations ----------------------------------------------------------

    def __add__(self, other: IntoCoeffs) -> "ExtensionField":
        o = self._coerce(other)
        global_counter().field_add += self.degree
        return type(self)(
            [(a + b) % _Q for a, b in zip(self.coeffs, o.coeffs)]
        )

    __radd__ = __add__

    def __sub__(self, other: IntoCoeffs) -> "ExtensionField":
        o = self._coerce(other)
        global_counter().field_add += self.degree
        return type(self)(
            [(a - b) % _Q for a, b in zip(self.coeffs, o.coeffs)]
        )

    def __rsub__(self, other: IntoCoeffs) -> "ExtensionField":
        return self._coerce(other).__sub__(self)

    def __neg__(self) -> "ExtensionField":
        return type(self)([-c % _Q for c in self.coeffs])

    def __mul__(self, other: IntoCoeffs) -> "ExtensionField":
        if isinstance(other, int):
            global_counter().field_mul += self.degree
            return type(self)([(c * other) % _Q for c in self.coeffs])
        o = self._coerce(other)
        deg = self.degree
        global_counter().field_mul += deg * deg
        # Schoolbook product ...
        product = [0] * (2 * deg - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(o.coeffs):
                product[i + j] += a * b
        # ... then reduce by the monic modulus: x^deg = -modulus_coeffs.
        for exp in range(2 * deg - 2, deg - 1, -1):
            top = product[exp] % _Q
            if top == 0:
                continue
            product[exp] = 0
            base = exp - deg
            for i, c in enumerate(self.modulus_coeffs):
                if c:
                    product[base + i] -= top * c
        return type(self)([c % _Q for c in product[:deg]])

    __rmul__ = __mul__

    def __truediv__(self, other: IntoCoeffs) -> "ExtensionField":
        o = self._coerce(other)
        return self * o.inverse()

    def __rtruediv__(self, other: IntoCoeffs) -> "ExtensionField":
        return self._coerce(other) * self.inverse()

    def __pow__(self, exponent: int) -> "ExtensionField":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = type(self).one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def inverse(self) -> "ExtensionField":
        """Extended Euclid over Fq[x] against the modulus polynomial."""
        if not self:
            raise ZeroDivisionError(f"inverse of zero in {type(self).__name__}")
        global_counter().field_inv += 1
        deg = self.degree
        lm, hm = [1] + [0] * deg, [0] * (deg + 1)
        low = list(self.coeffs) + [0]
        high = list(self.modulus_coeffs) + [0] * (deg - len(self.modulus_coeffs)) + [1]
        while _poly_degree(low):
            r = _poly_div(high, low)
            r += [0] * (deg + 1 - len(r))
            nm, new = list(hm), list(high)
            for i in range(deg + 1):
                for j in range(deg + 1 - i):
                    nm[i + j] -= lm[i] * r[j]
                    new[i + j] -= low[i] * r[j]
            nm = [c % _Q for c in nm]
            new = [c % _Q for c in new]
            lm, low, hm, high = nm, new, lm, low
        inv_lead = pow(low[0], -1, _Q)
        return type(self)([(c * inv_lead) % _Q for c in lm[:deg]])

    # -- comparisons / misc ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExtensionField):
            return type(self) is type(other) and self.coeffs == other.coeffs
        if isinstance(other, int):
            return self == type(self).from_int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(self.coeffs)))

    def __bool__(self) -> bool:
        return any(self.coeffs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.coeffs})"


def _poly_degree(poly: Sequence[int]) -> int:
    for i in range(len(poly) - 1, 0, -1):
        if poly[i] % _Q:
            return i
    return 0


def _poly_div(numerator: Sequence[int], denominator: Sequence[int]) -> List[int]:
    """Floor division of polynomials over Fq (py_ecc-style helper)."""
    num = [n % _Q for n in numerator]
    deg_num = _poly_degree(num)
    deg_den = _poly_degree(denominator)
    out = [0] * (deg_num - deg_den + 1)
    inv_lead = pow(denominator[deg_den] % _Q, -1, _Q)
    for shift in range(deg_num - deg_den, -1, -1):
        factor = (num[deg_den + shift] * inv_lead) % _Q
        out[shift] = factor
        if factor == 0:
            continue
        for i in range(deg_den + 1):
            num[shift + i] = (num[shift + i] - factor * denominator[i]) % _Q
    return out


class FQ2(ExtensionField):
    """BN254 Fq2 = Fq[u] / (u^2 + 1)."""

    degree = 2
    modulus_coeffs = (1, 0)
    __slots__ = ()


class FQ12(ExtensionField):
    """BN254 Fq12 = Fq[w] / (w^12 - 18 w^6 + 82)."""

    degree = 12
    modulus_coeffs = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)
    __slots__ = ()


def fq2(c0: int, c1: int) -> FQ2:
    """Convenience constructor ``c0 + c1*u``."""
    return FQ2([c0, c1])


def fq12(coeffs: Sequence[int]) -> FQ12:
    return FQ12(list(coeffs))
