"""Fixed-base MSM precomputation for CRS point tables.

Every Groth16 proof in a serving session multiplies *the same* CRS query
vectors (``a_query_g1``, ``b_query_g1/g2``, ``h_query_g1``, ``l_query_g1``)
by fresh witness scalars.  Precomputing the window-shifted bases
``2^(c·j) · P_i`` once turns each subsequent MSM into a single bucket
pass:

* no doubling chain between windows (the shifts are baked into the
  table), and
* **one** bucket fold for the whole MSM instead of one per window —
  every digit of every scalar lands in the same bucket array, because
  bucket ``d`` accumulates ``sum 2^(c·j) P_i`` over all ``(i, j)`` with
  digit ``d``.

Build cost is ``bits`` doublings per point (amortized across a serving
session); query cost drops from ``(bits/c)·(n + 2·2^(c-1))`` to
``(bits/c)·n + 2·2^(c-1)`` additions, all batch-affine.

``uses`` counts completed queries so the serving layer can assert tables
are actually reused across jobs (telemetry, not security).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ec.batch_affine import Affine, _batch_reduce
from repro.ec.bn254 import BN254_G1
from repro.ec.curve import Point
from repro.ec.jacobian import (
    J_INFINITY,
    JPoint,
    j_add,
    j_add_mixed,
    j_double,
    to_affine,
)
from repro.ec.msm import MAX_WINDOW, signed_digits
from repro.field.fp import BN254_FQ, BN254_FQ_MODULUS
from repro.field.vector import batch_inverse

_Q = BN254_FQ_MODULUS

SCALAR_BITS = 254


def batch_normalize(jacobians: Sequence[JPoint]) -> List[Optional[Affine]]:
    """Jacobian -> affine for many points with one field inversion.

    Identity points (``z == 0``) come back as ``None``: ``batch_inverse``'s
    ``zero_ok`` mode maps their lanes to zero, so no caller-side pre-filter
    / re-zip is needed (the fragile contract this replaces).
    """
    invs = batch_inverse(
        BN254_FQ, [z for _, _, z in jacobians], zero_ok=True
    )
    out: List[Optional[Affine]] = []
    for (x, y, z), zi in zip(jacobians, invs):
        if z == 0:
            out.append(None)
            continue
        zi2 = zi * zi % _Q
        out.append(((x * zi2) % _Q, (y * zi2 * zi) % _Q))
    return out


def _pick_fixed_base_window(n: int, bits: int = SCALAR_BITS) -> int:
    """Argmin of ``ceil(bits/c)·n + 2^(c-1)`` (single fold, no doublings)."""
    best_c, best_cost = 2, None
    for c in range(2, MAX_WINDOW + 1):
        cost = -(-bits // c) * max(n, 1) + (1 << (c - 1))
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


class FixedBaseTableG1:
    """Window-shifted multiples of a fixed BN254 G1 point vector."""

    def __init__(
        self,
        points: Sequence[Point],
        window: Optional[int] = None,
        bits: int = SCALAR_BITS,
    ) -> None:
        self.n = len(points)
        self.window = window or _pick_fixed_base_window(self.n, bits)
        self.num_windows = -(-bits // self.window) + 1  # +1 for digit carry
        self.uses = 0
        base: List[Optional[Affine]] = [
            None if p.inf else (p.x.value, p.y.value) for p in points
        ]
        # shifted[j][i] == 2^(window*j) * points[i], affine or None.
        self.shifted: List[List[Optional[Affine]]] = [base]
        current = base
        for _ in range(self.num_windows - 1):
            jacs: List[JPoint] = []
            for pt in current:
                j = J_INFINITY if pt is None else (pt[0], pt[1], 1)
                for _ in range(self.window):
                    j = j_double(j)
                jacs.append(j)
            current = batch_normalize(jacs)
            self.shifted.append(current)

    def msm(self, scalars: Sequence[int]) -> Point:
        """MSM against the fixed bases; ``len(scalars)`` may be < n.

        Missing trailing scalars are treated as zero (the prover's
        quotient vector is often shorter than ``h_query``).
        """
        self.uses += 1
        if len(scalars) > self.n:
            raise ValueError(
                f"{len(scalars)} scalars for a table of {self.n} points"
            )
        order = BN254_G1.order
        c = self.window
        half = 1 << (c - 1)
        buckets: List[List[Affine]] = [[] for _ in range(half)]
        for i, s in enumerate(scalars):
            s %= order
            if s == 0:
                continue
            for j, d in enumerate(signed_digits(s, c, self.num_windows)):
                if d == 0:
                    continue
                pt = self.shifted[j][i]
                if pt is None:
                    continue
                if d > 0:
                    buckets[d - 1].append(pt)
                else:
                    buckets[-d - 1].append((pt[0], _Q - pt[1]))
        folded = _batch_reduce(buckets)
        running = J_INFINITY
        total = J_INFINITY
        for b in reversed(folded):
            if b is not None:
                running = j_add_mixed(running, b)
            if running[2] != 0:  # j_add/j_add_mixed count their own ops
                total = j_add(total, running)
        return to_affine(total)
