"""Batch-affine G1 MSM engine: amortized inversions + chunked parallelism.

The Jacobian fast path (:mod:`repro.ec.jacobian`) avoids inversions by
carrying a Z coordinate, paying 7M + 4S per mixed addition.  An *affine*
addition is only 2M + 1S + 1I — ruinous when the inversion is paid per
addition, but bucket accumulation in Pippenger is embarrassingly
batchable: additions into distinct buckets are independent, so each round
performs one addition per bucket and amortizes all their inversions into a
single one via Montgomery's trick
(:func:`repro.field.vector.batch_inverse`).  With the 3 multiplications
the trick charges per element, an amortized affine addition costs ~5M+1S —
roughly half the Jacobian formula.

Two further pieces:

* **signed digits** (:func:`repro.ec.msm.signed_digits`) cut the bucket
  count per window from ``2^c - 1`` to ``2^(c-1)`` — point negation is
  free (``(x, -y)``) so digit ``-d`` adds the negated point to bucket
  ``d``;
* **chunked parallel mode** (:func:`msm_parallel`): the point/scalar
  vector is split across a process pool (MSM is linear in the points, so
  partial Jacobian sums combine with plain additions).  Workers return
  their operation tally so the parent's cost-model counters stay honest.

Everything operates on raw ``(x, y)`` int pairs mod the base prime, like
the Jacobian module; infinity inputs and zero scalars are filtered first.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ec.bn254 import BN254_G1
from repro.ec.curve import Point
from repro.ec.jacobian import (
    J_INFINITY,
    JPoint,
    j_add,
    j_add_mixed,
    j_double,
    to_affine,
)
from repro.ec.msm import pick_window, signed_digits
from repro.field.counters import count_ops, global_counter
from repro.field.fp import BN254_FQ, BN254_FQ_MODULUS
from repro.field.vector import batch_inverse

_Q = BN254_FQ_MODULUS

Affine = Tuple[int, int]

# Below this many points the bucket lists are too sparse for batching to
# amortize anything; callers should use the Jacobian path instead.
BATCH_AFFINE_MIN = 16

SCALAR_BITS = 254  # BN254 Fr scalars


def _batch_reduce(buckets: List[List[Affine]]) -> List[Optional[Affine]]:
    """Reduce every bucket's point list to one point (or ``None``).

    Rounds of pairwise affine additions: each round pairs up the points
    remaining in every bucket, computes all pair denominators, inverts
    them with **one** field inversion (Montgomery batching across the
    whole bucket array), and applies the chord/tangent formulas.  A pair
    ``P, -P`` cancels: its denominator is zero, so its lane comes back
    zero from ``batch_inverse(..., zero_ok=True)`` and the slot is
    dropped after the sweep — no per-pair branch-out of the batch, which
    is the contract the vectorized inversion backend needs (every
    scheduled lane stays in the array).  ``y == 0`` cannot occur
    otherwise: BN254 G1 has prime order, hence no 2-torsion, so a zero
    inverse *only* marks a cancelled pair.
    """
    total_adds = 0
    while any(len(lst) > 1 for lst in buckets):
        dens: List[int] = []
        # (out_list, slot, x1, y1, x2, numerator) per scheduled addition
        ops: List[Tuple[List, int, int, int, int, int]] = []
        for bi in range(len(buckets)):
            lst = buckets[bi]
            m = len(lst)
            if m < 2:
                continue
            out: List[Optional[Affine]] = []
            i = 0
            while i + 1 < m:
                x1, y1 = lst[i]
                x2, y2 = lst[i + 1]
                if x1 != x2:
                    num = y2 - y1
                    den = x2 - x1
                else:
                    # Same x: either P + (-P) (den = 2y1 = y1 + y2 = 0 mod
                    # q -> zero lane, pair vanishes) or a doubling with
                    # tangent slope 3x^2 / 2y.
                    num = 3 * x1 * x1
                    den = (y1 + y2) % _Q
                ops.append((out, len(out), x1, y1, x2, num % _Q))
                out.append(None)  # placeholder, filled after inversion
                dens.append(den % _Q)
                i += 2
            if i < m:
                out.append(lst[i])  # odd leftover rides to the next round
            buckets[bi] = out
        if dens:
            invs = batch_inverse(BN254_FQ, dens, zero_ok=True)
            applied = 0
            touched = set()
            for (out, slot, x1, y1, x2, num), inv in zip(ops, invs):
                if inv == 0:
                    touched.add(id(out))
                    continue  # cancelled pair: leave the slot empty
                s = num * inv % _Q
                x3 = (s * s - x1 - x2) % _Q
                out[slot] = (x3, (s * (x1 - x3) - y1) % _Q)
                applied += 1
            total_adds += applied
            if touched:
                for bi in range(len(buckets)):
                    if id(buckets[bi]) in touched:
                        buckets[bi] = [
                            pt for pt in buckets[bi] if pt is not None
                        ]
    if total_adds:
        global_counter().group_add += total_adds
    return [lst[0] if lst else None for lst in buckets]


def _msm_raw(
    affine: Sequence[Affine],
    reduced: Sequence[int],
    c: int,
    bits: int = SCALAR_BITS,
) -> JPoint:
    """Signed-window batch-affine MSM over raw affine pairs -> Jacobian."""
    n = len(affine)
    half = 1 << (c - 1)
    num_windows = -(-bits // c) + 1  # +1 absorbs the signed-digit carry
    digits = [signed_digits(s, c, num_windows) for s in reduced]

    total = J_INFINITY
    for w in range(num_windows - 1, -1, -1):
        if total[2] != 0:  # skip the doubling chain while still at identity
            for _ in range(c):
                total = j_double(total)
        buckets: List[List[Affine]] = [[] for _ in range(half)]
        for i in range(n):
            d = digits[i][w]
            if d > 0:
                buckets[d - 1].append(affine[i])
            elif d < 0:
                x, y = affine[i]
                buckets[-d - 1].append((x, _Q - y))
        folded = _batch_reduce(buckets)
        running = J_INFINITY
        window_sum = J_INFINITY
        for b in reversed(folded):
            if b is not None:
                running = j_add_mixed(running, b)
            if running[2] != 0:
                window_sum = j_add(window_sum, running)
        total = j_add(total, window_sum)
    return total


def _to_raw(
    points: Sequence[Point], scalars: Sequence[int]
) -> Tuple[List[Affine], List[int]]:
    """Reduce scalars mod r and drop identity points / zero scalars."""
    order = BN254_G1.order
    affine: List[Affine] = []
    reduced: List[int] = []
    for p, s in zip(points, scalars):
        s %= order
        if s == 0 or p.inf:
            continue
        affine.append((p.x.value, p.y.value))
        reduced.append(s)
    return affine, reduced


def msm_batch_affine(
    points: Sequence[Point],
    scalars: Sequence[int],
    window: Optional[int] = None,
) -> Point:
    """Batch-affine signed-window MSM over BN254 G1."""
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    affine, reduced = _to_raw(points, scalars)
    if not affine:
        return BN254_G1.infinity()
    c = window or pick_window(len(affine), signed=True)
    return to_affine(_msm_raw(affine, reduced, c))


def msm_streamed(
    chunks,
    scalars: Sequence[int],
    window: Optional[int] = None,
) -> Point:
    """Batch-affine MSM over an ``(offset, points)`` chunk stream.

    The streamed-CRS path: each chunk is converted, reduced, and released
    before the next is decoded, so the peak working set is one chunk plus
    a Jacobian accumulator — bounded by ``ZENO_MSM_CHUNK_BYTES`` instead
    of the full query.  MSM is linear in the point vector, so per-chunk
    partial sums combine to the *exact* group element the one-shot engines
    compute (proof bytes are unchanged).
    """
    total = J_INFINITY
    for offset, chunk in chunks:
        affine, reduced = _to_raw(chunk, scalars[offset : offset + len(chunk)])
        if not affine:
            continue
        c = window or pick_window(len(affine), signed=True)
        total = j_add(total, _msm_raw(affine, reduced, c))
    if total[2] == 0:
        return BN254_G1.infinity()
    return to_affine(total)


# -- chunked parallel mode ---------------------------------------------------------

# One cached executor per worker count; proving services issue many MSMs
# per session, so re-forking the pool on every call would dominate.
_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}


def _mp_context():
    # fork keeps chunk dispatch cheap (no re-import of the repro package);
    # platforms without fork fall back to their default start method.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _get_executor(workers: int) -> ProcessPoolExecutor:
    pool = _EXECUTORS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context())
        _EXECUTORS[workers] = pool
    return pool


def shutdown_parallel_pools() -> None:
    """Tear down cached chunk executors (tests / interpreter exit)."""
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()


atexit.register(shutdown_parallel_pools)


def _parallel_chunk(payload: Tuple[List[Affine], List[int], Optional[int]]):
    """Worker entry: batch-affine MSM over one chunk, with its op tally."""
    affine, reduced, window = payload
    with count_ops() as ops:
        c = window or pick_window(len(affine), signed=True)
        j = _msm_raw(affine, reduced, c)
    return j, {
        "group_add": ops.group_add,
        "field_mul": ops.field_mul,
        "field_inv": ops.field_inv,
    }


def msm_parallel(
    points: Sequence[Point],
    scalars: Sequence[int],
    parallelism: Optional[int] = None,
    window: Optional[int] = None,
) -> Point:
    """Split the MSM across ``parallelism`` processes and combine partials.

    MSM is linear in the point vector, so each chunk's Jacobian partial
    sum combines with plain group additions.  Worker op tallies are merged
    into this process's counters (fork would otherwise lose them).
    """
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}"
        )
    workers = parallelism or min(4, os.cpu_count() or 1)
    affine, reduced = _to_raw(points, scalars)
    if not affine:
        return BN254_G1.infinity()
    workers = max(1, min(workers, len(affine)))
    if workers == 1:
        c = window or pick_window(len(affine), signed=True)
        return to_affine(_msm_raw(affine, reduced, c))

    step = -(-len(affine) // workers)
    payloads = [
        (affine[i : i + step], reduced[i : i + step], window)
        for i in range(0, len(affine), step)
    ]
    total = J_INFINITY
    counter = global_counter()
    for j, tally in _get_executor(workers).map(_parallel_chunk, payloads):
        total = j_add(total, j)
        counter.group_add += tally["group_add"]
        counter.field_mul += tally["field_mul"]
        counter.field_inv += tally["field_inv"]
    return to_affine(total)
