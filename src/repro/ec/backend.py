"""Group backends: one API over the real BN254 curve and the simulated group.

The SNARK layer (:mod:`repro.snark`) programs exclusively against
:class:`GroupBackend`; swapping ``RealBN254Backend`` for
``SimulatedBackend`` changes only the per-operation constant factor (and
cryptographic hardness — see :mod:`repro.ec.simulated`), never the algebra.

``msm`` routes through the engine hierarchy (see :mod:`repro.ec.msm` for
the map): batch-affine signed windows for real G1 vectors, the chunked
process-parallel mode when a ``parallelism`` knob is passed, the Jacobian
path for small inputs, and generic affine Pippenger for G2.  The empty MSM
returns the group identity (``zero=`` overrides which one).
``precompute_msm`` returns a fixed-base table for CRS-style reuse — the
serving layer builds tables once per proving key and queries them on every
proof.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Tuple

from repro.field.fp import BN254_FR, Field
from repro.ec import bn254
from repro.ec.msm import msm as pippenger_msm
from repro.ec.simulated import (
    G1_TAG,
    G2_TAG,
    GT_TAG,
    SimFixedBaseTable,
    SimPoint,
    sim_generator,
    sim_msm,
    sim_pairing,
)

GroupElement = Any  # Point | SimPoint

# Below this size the sparse bucket lists of the batch-affine engine cannot
# amortize their inversions; the Jacobian path wins.
_BATCH_AFFINE_MIN = 32
# Below this size chunking overhead (pickling + IPC) swamps the win.
_PARALLEL_MIN = 256


class _GenericMSMTable:
    """Fallback 'fixed-base table': no precomputation, but tracked reuse.

    Used where real shifted-window tables are not implemented (G2 vectors,
    empty vectors).  Presents the same ``msm(scalars)`` / ``uses``
    interface as :class:`repro.ec.fixed_base.FixedBaseTableG1`.
    """

    def __init__(self, points, msm_fn, zero) -> None:
        self.points = list(points)
        self.n = len(self.points)
        self._msm = msm_fn
        self._zero = zero
        self.uses = 0

    def msm(self, scalars: Sequence[int]) -> GroupElement:
        if len(scalars) > self.n:
            raise ValueError(
                f"{len(scalars)} scalars for a table of {self.n} points"
            )
        self.uses += 1
        if not scalars or not self.points:
            return self._zero
        return self._msm(self.points[: len(scalars)], list(scalars))


class GroupBackend(ABC):
    """Bilinear group operations required by Groth16."""

    name: str = "abstract"
    scalar_field: Field = BN254_FR

    @abstractmethod
    def g1_generator(self) -> GroupElement: ...

    @abstractmethod
    def g2_generator(self) -> GroupElement: ...

    @abstractmethod
    def g1_zero(self) -> GroupElement: ...

    @abstractmethod
    def g2_zero(self) -> GroupElement: ...

    @abstractmethod
    def add(self, a: GroupElement, b: GroupElement) -> GroupElement: ...

    @abstractmethod
    def neg(self, a: GroupElement) -> GroupElement: ...

    @abstractmethod
    def scalar_mul(self, a: GroupElement, k: int) -> GroupElement: ...

    @abstractmethod
    def msm(
        self,
        points: Sequence[GroupElement],
        scalars: Sequence[int],
        *,
        zero: Optional[GroupElement] = None,
        parallelism: Optional[int] = None,
        window: Optional[int] = None,
    ) -> GroupElement:
        """``sum scalars[i] * points[i]``; the identity on empty input.

        ``zero`` names the identity returned for an empty vector (default
        G1 — the only group Groth16 issues possibly-empty MSMs in).
        ``parallelism > 1`` opts into the chunked process-parallel engine
        where the backend supports it.
        """

    @abstractmethod
    def pairing_product_is_one(
        self, pairs: Sequence[Tuple[GroupElement, GroupElement]]
    ) -> bool:
        """Check ``prod e(P_i, Q_i) == 1`` — the Groth16 verify primitive."""

    def _msm_chunked(
        self,
        points,
        scalars: Sequence[int],
        *,
        zero: Optional[GroupElement] = None,
        parallelism: Optional[int] = None,
        window: Optional[int] = None,
    ) -> GroupElement:
        """MSM over a chunked query: one decoded chunk in memory at a time.

        Partial sums per chunk combine with plain group additions (MSM is
        linear in the points), so the result — and therefore proof bytes —
        match the one-shot path exactly.
        """
        if len(points) != len(scalars):
            raise ValueError(
                f"points/scalars length mismatch: "
                f"{len(points)} vs {len(scalars)}"
            )
        acc: Optional[GroupElement] = None
        for offset, chunk in points.iter_chunks():
            part = self.msm(
                chunk,
                scalars[offset : offset + len(chunk)],
                zero=zero,
                parallelism=parallelism,
                window=window,
            )
            acc = part if acc is None else self.add(acc, part)
        if acc is None:
            return zero if zero is not None else self.g1_zero()
        return acc

    def precompute_msm(
        self,
        points: Sequence[GroupElement],
        zero: Optional[GroupElement] = None,
    ):
        """Build a reusable fixed-base MSM table over ``points``.

        The returned object exposes ``msm(scalars)`` (accepting *up to*
        ``len(points)`` scalars; missing ones count as zero) and a ``uses``
        counter.  Default implementation is a dispatch-only wrapper;
        backends override with real precomputation.
        """
        return _GenericMSMTable(
            points, self.msm, zero if zero is not None else self.g1_zero()
        )

    def sub(self, a: GroupElement, b: GroupElement) -> GroupElement:
        return self.add(a, self.neg(b))


class RealBN254Backend(GroupBackend):
    """Operations on the genuine BN254 curve with the optimal-ate pairing."""

    name = "bn254"

    def g1_generator(self) -> GroupElement:
        return bn254.BN254_G1.generator

    def g2_generator(self) -> GroupElement:
        return bn254.BN254_G2.generator

    def g1_zero(self) -> GroupElement:
        return bn254.BN254_G1.infinity()

    def g2_zero(self) -> GroupElement:
        return bn254.BN254_G2.infinity()

    def add(self, a, b):
        return a.group.add(a, b)

    def neg(self, a):
        return a.group.neg(a)

    def scalar_mul(self, a, k: int):
        return a.group.scalar_mul(a, k)

    def msm(self, points, scalars, *, zero=None, parallelism=None, window=None):
        if hasattr(points, "iter_chunks"):
            if len(points) != len(scalars):
                raise ValueError(
                    f"points/scalars length mismatch: "
                    f"{len(points)} vs {len(scalars)}"
                )
            if getattr(points, "kind", None) == "g1":
                from repro.ec.batch_affine import msm_streamed

                return msm_streamed(points.iter_chunks(), scalars, window=window)
            return self._msm_chunked(
                points, scalars, zero=zero, parallelism=parallelism,
                window=window,
            )
        if len(points) != len(scalars):
            raise ValueError(
                f"points/scalars length mismatch: "
                f"{len(points)} vs {len(scalars)}"
            )
        if not points:
            return zero if zero is not None else self.g1_zero()
        # G1 MSMs take the inversion-free engines; G2 (whose coordinates
        # live in Fq2) uses the generic affine Pippenger.
        if points[0].group is bn254.BN254_G1:
            from repro.ec.batch_affine import msm_batch_affine, msm_parallel
            from repro.ec.jacobian import msm_jacobian

            n = len(points)
            if parallelism and parallelism > 1 and n >= _PARALLEL_MIN:
                return msm_parallel(
                    points, scalars, parallelism=parallelism, window=window
                )
            if n >= _BATCH_AFFINE_MIN:
                return msm_batch_affine(points, scalars, window=window)
            return msm_jacobian(points, scalars, window=window)
        return pippenger_msm(points, scalars, window=window)

    def precompute_msm(self, points, zero=None):
        if points and points[0].group is bn254.BN254_G1:
            from repro.ec.fixed_base import FixedBaseTableG1

            return FixedBaseTableG1(points)
        return super().precompute_msm(points, zero)

    def pairing_product_is_one(self, pairs) -> bool:
        return bn254.pairing_product_is_one(tuple(pairs))


class SimulatedBackend(GroupBackend):
    """Exponent-tracking group; identical algebra, cheap operations."""

    name = "simulated"

    def g1_generator(self) -> GroupElement:
        return sim_generator(G1_TAG)

    def g2_generator(self) -> GroupElement:
        return sim_generator(G2_TAG)

    def g1_zero(self) -> GroupElement:
        return SimPoint(G1_TAG, 0)

    def g2_zero(self) -> GroupElement:
        return SimPoint(G2_TAG, 0)

    def add(self, a: SimPoint, b: SimPoint) -> SimPoint:
        return a + b

    def neg(self, a: SimPoint) -> SimPoint:
        return -a

    def scalar_mul(self, a: SimPoint, k: int) -> SimPoint:
        return a * k

    def msm(self, points, scalars, *, zero=None, parallelism=None, window=None):
        # parallelism/window shape the modeled real-curve cost, not the
        # log-space dot product, so they are accepted and ignored here.
        if hasattr(points, "iter_chunks"):
            return self._msm_chunked(points, scalars, zero=zero)
        if not points:
            return zero if zero is not None else self.g1_zero()
        return sim_msm(points, scalars)

    def precompute_msm(self, points, zero=None):
        tag = zero.tag if zero is not None else G1_TAG
        return SimFixedBaseTable(points, tag=tag)

    def pairing_product_is_one(self, pairs) -> bool:
        acc = 0
        for p, q in pairs:
            acc += sim_pairing(p, q).log
        return acc % BN254_FR.modulus == 0
