"""Group backends: one API over the real BN254 curve and the simulated group.

The SNARK layer (:mod:`repro.snark`) programs exclusively against
:class:`GroupBackend`; swapping ``RealBN254Backend`` for
``SimulatedBackend`` changes only the per-operation constant factor (and
cryptographic hardness — see :mod:`repro.ec.simulated`), never the algebra.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence, Tuple

from repro.field.fp import BN254_FR, Field
from repro.ec import bn254
from repro.ec.msm import msm as pippenger_msm
from repro.ec.simulated import (
    G1_TAG,
    G2_TAG,
    GT_TAG,
    SimPoint,
    sim_generator,
    sim_msm,
    sim_pairing,
)

GroupElement = Any  # Point | SimPoint


class GroupBackend(ABC):
    """Bilinear group operations required by Groth16."""

    name: str = "abstract"
    scalar_field: Field = BN254_FR

    @abstractmethod
    def g1_generator(self) -> GroupElement: ...

    @abstractmethod
    def g2_generator(self) -> GroupElement: ...

    @abstractmethod
    def g1_zero(self) -> GroupElement: ...

    @abstractmethod
    def g2_zero(self) -> GroupElement: ...

    @abstractmethod
    def add(self, a: GroupElement, b: GroupElement) -> GroupElement: ...

    @abstractmethod
    def neg(self, a: GroupElement) -> GroupElement: ...

    @abstractmethod
    def scalar_mul(self, a: GroupElement, k: int) -> GroupElement: ...

    @abstractmethod
    def msm(
        self, points: Sequence[GroupElement], scalars: Sequence[int]
    ) -> GroupElement: ...

    @abstractmethod
    def pairing_product_is_one(
        self, pairs: Sequence[Tuple[GroupElement, GroupElement]]
    ) -> bool:
        """Check ``prod e(P_i, Q_i) == 1`` — the Groth16 verify primitive."""

    def sub(self, a: GroupElement, b: GroupElement) -> GroupElement:
        return self.add(a, self.neg(b))


class RealBN254Backend(GroupBackend):
    """Operations on the genuine BN254 curve with the optimal-ate pairing."""

    name = "bn254"

    def g1_generator(self) -> GroupElement:
        return bn254.BN254_G1.generator

    def g2_generator(self) -> GroupElement:
        return bn254.BN254_G2.generator

    def g1_zero(self) -> GroupElement:
        return bn254.BN254_G1.infinity()

    def g2_zero(self) -> GroupElement:
        return bn254.BN254_G2.infinity()

    def add(self, a, b):
        return a.group.add(a, b)

    def neg(self, a):
        return a.group.neg(a)

    def scalar_mul(self, a, k: int):
        return a.group.scalar_mul(a, k)

    def msm(self, points, scalars):
        # G1 MSMs take the inversion-free Jacobian fast path; G2 (whose
        # coordinates live in Fq2) uses the generic affine Pippenger.
        if points and points[0].group is bn254.BN254_G1:
            from repro.ec.jacobian import msm_jacobian

            return msm_jacobian(points, scalars)
        return pippenger_msm(points, scalars)

    def pairing_product_is_one(self, pairs) -> bool:
        return bn254.pairing_product_is_one(tuple(pairs))


class SimulatedBackend(GroupBackend):
    """Exponent-tracking group; identical algebra, cheap operations."""

    name = "simulated"

    def g1_generator(self) -> GroupElement:
        return sim_generator(G1_TAG)

    def g2_generator(self) -> GroupElement:
        return sim_generator(G2_TAG)

    def g1_zero(self) -> GroupElement:
        return SimPoint(G1_TAG, 0)

    def g2_zero(self) -> GroupElement:
        return SimPoint(G2_TAG, 0)

    def add(self, a: SimPoint, b: SimPoint) -> SimPoint:
        return a + b

    def neg(self, a: SimPoint) -> SimPoint:
        return -a

    def scalar_mul(self, a: SimPoint, k: int) -> SimPoint:
        return a * k

    def msm(self, points, scalars):
        return sim_msm(points, scalars)

    def pairing_product_is_one(self, pairs) -> bool:
        acc = 0
        for p, q in pairs:
            acc += sim_pairing(p, q).log
        return acc % BN254_FR.modulus == 0
