"""BN254 (alt_bn128) instantiation and the optimal-ate pairing.

Parameters follow the Ethereum alt_bn128 precompiles and the arkworks
``ark-bn254`` crate used by the paper's artifact:

* base field prime ``q``, scalar field prime ``r`` (see :mod:`repro.field.fp`)
* G1: ``y^2 = x^3 + 3`` over Fq, generator (1, 2)
* G2: ``y^2 = x^3 + 3/(9+u)`` over Fq2
* ate loop count ``6u + 2`` with BN parameter ``u = 4965661367192848881``

The pairing is computed py_ecc-style: twist G2 into the Fq12 curve, run the
Miller loop with affine line functions, then apply the final exponentiation
``(q^12 - 1) / r``.  Products of pairings (as needed by Groth16
verification) share a single final exponentiation via
:func:`miller_loop` + :func:`final_exponentiate`.
"""

from __future__ import annotations

from typing import Tuple

from repro.field.counters import global_counter
from repro.field.fp import BN254_FQ, BN254_FQ_MODULUS, BN254_FR_MODULUS
from repro.ec.curve import CurveGroup, Point
from repro.ec.tower import FQ2, FQ12

_Q = BN254_FQ_MODULUS
_R = BN254_FR_MODULUS

# BN parameter u and the ate loop count 6u + 2.
BN_U = 4965661367192848881
ATE_LOOP_COUNT = 6 * BN_U + 2
_LOG_ATE_LOOP_COUNT = ATE_LOOP_COUNT.bit_length() - 2  # = 63, as in py_ecc

FINAL_EXP_POWER = (_Q**12 - 1) // _R

# -- group instantiations ----------------------------------------------------------

BN254_G1 = CurveGroup(
    "G1",
    a=BN254_FQ(0),
    b=BN254_FQ(3),
    generator_xy=(BN254_FQ(1), BN254_FQ(2)),
    order=_R,
)

_B2 = FQ2([3, 0]) / FQ2([9, 1])

_G2_GEN_X = FQ2(
    [
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ]
)
_G2_GEN_Y = FQ2(
    [
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ]
)

BN254_G2 = CurveGroup(
    "G2", a=FQ2.zero(), b=_B2, generator_xy=(_G2_GEN_X, _G2_GEN_Y), order=_R
)

# The Fq12 curve both groups are mapped into for the Miller loop.
BN254_G12 = CurveGroup("G12", a=FQ12.zero(), b=FQ12.from_int(3), order=_R)

_W = FQ12([0, 1] + [0] * 10)
_W2 = _W * _W
_W3 = _W2 * _W


def twist(p: Point) -> Point:
    """Map a G2 point (over Fq2) onto the Fq12 curve via the sextic twist."""
    if p.inf:
        return BN254_G12.infinity()
    x, y = p.x, p.y
    # Unwind the 9+u shift used by the alt_bn128 Fq2 representation.
    xc = [(x.coeffs[0] - 9 * x.coeffs[1]) % _Q, x.coeffs[1]]
    yc = [(y.coeffs[0] - 9 * y.coeffs[1]) % _Q, y.coeffs[1]]
    nx = FQ12([xc[0], 0, 0, 0, 0, 0, xc[1], 0, 0, 0, 0, 0])
    ny = FQ12([yc[0], 0, 0, 0, 0, 0, yc[1], 0, 0, 0, 0, 0])
    return Point(BN254_G12, nx * _W2, ny * _W3)


def embed_g1(p: Point) -> Point:
    """Lift a G1 point (over Fq) onto the Fq12 curve."""
    if p.inf:
        return BN254_G12.infinity()
    return Point(BN254_G12, FQ12.from_int(p.x.value), FQ12.from_int(p.y.value))


def _linefunc(p1: Point, p2: Point, t: Point) -> FQ12:
    """Evaluate the line through ``p1`` and ``p2`` at ``t`` (all on G12)."""
    x1, y1 = p1.x, p1.y
    x2, y2 = p2.x, p2.y
    xt, yt = t.x, t.y
    if x1 != x2:
        slope = (y2 - y1) / (x2 - x1)
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (3 * x1 * x1) / (2 * y1)
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def miller_loop(q_point: Point, p_point: Point) -> FQ12:
    """The BN254 optimal-ate Miller loop (without final exponentiation).

    ``q_point`` is a G2 point, ``p_point`` a G1 point; both are mapped onto
    the Fq12 curve internally.
    """
    if q_point.inf or p_point.inf:
        return FQ12.one()
    q12 = twist(q_point)
    p12 = embed_g1(p_point)
    r12 = q12
    f = FQ12.one()
    for i in range(_LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _linefunc(r12, r12, p12)
        r12 = BN254_G12.double(r12)
        if ATE_LOOP_COUNT & (2**i):
            f = f * _linefunc(r12, q12, p12)
            r12 = BN254_G12.add(r12, q12)
    q1 = Point(BN254_G12, q12.x**_Q, q12.y**_Q)
    nq2 = Point(BN254_G12, q1.x**_Q, -(q1.y**_Q))
    f = f * _linefunc(r12, q1, p12)
    r12 = BN254_G12.add(r12, q1)
    f = f * _linefunc(r12, nq2, p12)
    return f


def final_exponentiate(f: FQ12) -> FQ12:
    """Raise a Miller-loop output to ``(q^12 - 1) / r``."""
    return f**FINAL_EXP_POWER


def bn254_pairing(p_point: Point, q_point: Point) -> FQ12:
    """The full pairing ``e(P, Q)`` for ``P`` in G1 and ``Q`` in G2."""
    if p_point.group is not BN254_G1 or q_point.group is not BN254_G2:
        raise ValueError("bn254_pairing expects (G1 point, G2 point)")
    global_counter().pairing += 1
    return final_exponentiate(miller_loop(q_point, p_point))


def pairing_product_is_one(pairs: Tuple[Tuple[Point, Point], ...]) -> bool:
    """Check ``prod e(P_i, Q_i) == 1`` with a single final exponentiation.

    This is how Groth16 verification is implemented in practice: the four
    pairings of the verification equation are merged into one product of
    Miller loops followed by one final exponentiation.
    """
    f = FQ12.one()
    for p_point, q_point in pairs:
        global_counter().pairing += 1
        f = f * miller_loop(q_point, p_point)
    return final_exponentiate(f) == FQ12.one()
