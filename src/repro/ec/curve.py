"""Generic short-Weierstrass curve arithmetic.

One implementation serves all three groups the pairing touches: G1 (over
Fq), G2 (over Fq2), and the Fq12-embedded image of both used inside the
Miller loop.  Coordinates are any objects supporting field operator
overloading (``FieldElement`` or ``ExtensionField``), so the code reads like
the textbook affine formulas.

Affine arithmetic pays one coordinate-field inversion per addition; that is
acceptable here because all performance-critical sweeps run on the
exponent-tracking simulated backend (see :mod:`repro.ec.simulated`), while
the real curve is used for correctness tests and the quickstart proof.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.field.counters import global_counter

Coeff = Any  # FieldElement | ExtensionField


class Point:
    """An affine point on a :class:`CurveGroup`, or the point at infinity."""

    __slots__ = ("group", "x", "y", "inf")

    def __init__(
        self,
        group: "CurveGroup",
        x: Optional[Coeff],
        y: Optional[Coeff],
        inf: bool = False,
    ) -> None:
        self.group = group
        self.x = x
        self.y = y
        self.inf = inf

    def is_infinity(self) -> bool:
        return self.inf

    def __add__(self, other: "Point") -> "Point":
        return self.group.add(self, other)

    def __sub__(self, other: "Point") -> "Point":
        return self.group.add(self, self.group.neg(other))

    def __neg__(self) -> "Point":
        return self.group.neg(self)

    def __mul__(self, scalar: int) -> "Point":
        return self.group.scalar_mul(self, scalar)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.inf or other.inf:
            return self.inf and other.inf
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.inf:
            return hash((self.group.name, "inf"))
        return hash((self.group.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.inf:
            return f"{self.group.name}(inf)"
        return f"{self.group.name}({self.x!r}, {self.y!r})"


class CurveGroup:
    """The group of points on ``y^2 = x^3 + a x + b`` over a coefficient field.

    ``order`` is the (prime) group order; scalars are reduced modulo it in
    :meth:`scalar_mul` so SNARK code can pass raw field-element ints.
    """

    def __init__(
        self,
        name: str,
        a: Coeff,
        b: Coeff,
        generator_xy: Optional[tuple] = None,
        order: Optional[int] = None,
    ) -> None:
        self.name = name
        self.a = a
        self.b = b
        self.order = order
        if generator_xy is not None:
            self.generator = Point(self, generator_xy[0], generator_xy[1])
        else:
            self.generator = None

    # -- constructors -----------------------------------------------------------

    def point(self, x: Coeff, y: Coeff) -> Point:
        p = Point(self, x, y)
        if not self.is_on_curve(p):
            raise ValueError(f"({x!r}, {y!r}) is not on {self.name}")
        return p

    def infinity(self) -> Point:
        return Point(self, None, None, inf=True)

    # -- predicates ------------------------------------------------------------

    def is_on_curve(self, p: Point) -> bool:
        if p.inf:
            return True
        lhs = p.y * p.y
        rhs = p.x * p.x * p.x + self.a * p.x + self.b
        return lhs == rhs

    # -- group law -----------------------------------------------------------

    def neg(self, p: Point) -> Point:
        if p.inf:
            return p
        return Point(self, p.x, -p.y)

    def double(self, p: Point) -> Point:
        if p.inf:
            return p
        if not p.y:
            return self.infinity()
        global_counter().group_add += 1
        slope = (3 * (p.x * p.x) + self.a) / (2 * p.y)
        x3 = slope * slope - 2 * p.x
        y3 = slope * (p.x - x3) - p.y
        return Point(self, x3, y3)

    def add(self, p: Point, q: Point) -> Point:
        if p.inf:
            return q
        if q.inf:
            return p
        if p.x == q.x:
            if p.y == q.y:
                return self.double(p)
            return self.infinity()
        global_counter().group_add += 1
        slope = (q.y - p.y) / (q.x - p.x)
        x3 = slope * slope - p.x - q.x
        y3 = slope * (p.x - x3) - p.y
        return Point(self, x3, y3)

    def scalar_mul(self, p: Point, scalar: int) -> Point:
        if self.order is not None:
            scalar %= self.order
        if scalar == 0 or p.inf:
            return self.infinity()
        global_counter().group_scalar_mul += 1
        result = self.infinity()
        addend = p
        k = scalar
        while k:
            if k & 1:
                result = self.add(result, addend)
            k >>= 1
            if k:
                addend = self.double(addend)
        return result
