"""Rank-1 Constraint System (R1CS) substrate.

This is the "constraints" format of the paper's Eq. 1:

    (sum_i a_{j,i} X_i) * (sum_i b_{j,i} X_i) = Wire_j,   j in 1..m

generalized to the standard R1CS triple ``<A_j, z> * <B_j, z> = <C_j, z>``
over the assignment vector ``z = (1, public..., private...)``.

Key properties the paper's optimizations rely on live here:

* additions are "free" — any number of terms folds into one
  :class:`LinearCombination` without adding a constraint;
* multiplying a *public* coefficient into an LC is free, while multiplying
  two *private* values costs one constraint (§4.1).
"""

from repro.r1cs.lc import ONE, LinearCombination
from repro.r1cs.constraint import Constraint
from repro.r1cs.csr import CSRMatrix, CSRSystem, evaluate_rows
from repro.r1cs.system import ConstraintSystem, Violation
from repro.r1cs.export import export_system, import_system
from repro.r1cs.optimize import canonical_constraint_key, optimize

__all__ = [
    "ONE",
    "CSRMatrix",
    "CSRSystem",
    "LinearCombination",
    "Constraint",
    "ConstraintSystem",
    "Violation",
    "canonical_constraint_key",
    "evaluate_rows",
    "export_system",
    "import_system",
    "optimize",
]
