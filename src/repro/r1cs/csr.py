"""Compressed-sparse-row snapshot of the R1CS matrices.

The prover's hot loop evaluates ``<A_j, z>``, ``<B_j, z>``, ``<C_j, z>``
for every constraint row ``j``.  Walking the per-constraint
:class:`~repro.r1cs.lc.LinearCombination` dicts pays a Python method call
per term (``Assignment.__getitem__``) plus a counter bump per LC; a CSR
snapshot replaces all of that with three flat arrays per matrix —

* ``indptr``  — row offsets, ``len == num_rows + 1``;
* ``indices`` — *dense* column positions into the Groth16-ordered
  assignment vector ``z = [1, publics..., privates...]``;
* ``coeffs``  — canonical field coefficients, aligned with ``indices``

— and one dense assignment vector, so a row evaluates as a contiguous
slice accumulation with no dict lookups.  The structure depends only on
the constraints (not the witness), so batch-specialized sharing (§6.1)
builds it once and only refreshes ``z`` per image; the parallel executor
(:mod:`repro.core.schedule.executor`) ships row spans of the same arrays
to worker processes.

Signed variable indices (see :mod:`repro.r1cs.lc`) map to dense positions
as ``ONE -> 0``, public ``-k -> k``, private ``+k -> num_public + k`` —
exactly :func:`repro.snark.qap.variable_order`.
"""

from __future__ import annotations

import itertools
import operator
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

# Minimum span nnz before evaluate_rows considers the limb-vectorized row
# path (0 disables it).  Default off: on hosts without SIMD int64 the
# Montgomery kernel's ~250ns/lane does not beat the C-level
# ``map(operator.mul)`` sweep (~0.45us/term measured, and real circuits
# have small quantized coefficients that make Python multiplies cheaper
# still).  Boxes with AVX-512 int64 multiply can opt in via
# ``ZENO_VECTOR_CSR_MIN=<nnz>``.
_VECTOR_CSR_MIN = int(os.environ.get("ZENO_VECTOR_CSR_MIN", "0") or 0)

# Rows longer than this fall back to the scalar path: the vector
# accumulator sums canonical-limb products (< 2p each) with one reduceat
# per limb row, and 32 terms keeps the row total < 64p — the widest value
# the canonicalize ladder reduces.
_VECTOR_MAX_ROW_NNZ = 32

# Monotone stamp identifying one (structure, assignment) snapshot state.
# The parallel executor keys its fork-shared worker pool on it: same stamp
# means the workers' inherited copy is still current; a new stamp (fresh
# structure or a re-assigned witness) forces a re-fork.
_STAMPS = itertools.count(1)


@dataclass
class CSRMatrix:
    """One constraint matrix (A, B, or C) in compressed-sparse-row form."""

    indptr: List[int]
    indices: List[int]
    coeffs: List[int]

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    def row_span(self, start: int, stop: int) -> "CSRMatrix":
        """A rebased copy of rows ``[start, stop)`` — the pickle fallback
        payload for platforms where fork sharing is unavailable."""
        lo, hi = self.indptr[start], self.indptr[stop]
        base = self.indptr[start]
        return CSRMatrix(
            indptr=[p - base for p in self.indptr[start : stop + 1]],
            indices=self.indices[lo:hi],
            coeffs=self.coeffs[lo:hi],
        )


class CSRSystem:
    """CSR snapshot of a constraint system plus its dense assignment."""

    __slots__ = ("a", "b", "c", "num_rows", "num_public", "num_private",
                 "modulus", "z", "stamp", "_vec_cache")

    def __init__(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        c: CSRMatrix,
        num_public: int,
        num_private: int,
        modulus: int,
        z: Optional[List[int]] = None,
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.num_rows = a.num_rows
        self.num_public = num_public
        self.num_private = num_private
        self.modulus = modulus
        self.z = z  # [1, publics..., privates...] — Groth16 variable order
        self.stamp = next(_STAMPS)
        # Limb-resident tables for the vectorized row path: structure
        # tables keyed by matrix side (immutable once built), the
        # assignment limbs keyed by stamp so a re-assigned z invalidates.
        self._vec_cache: dict = {}

    def restamp(self) -> None:
        """Mark the snapshot state as changed (new structure or new z)."""
        self.stamp = next(_STAMPS)

    def __getstate__(self):
        # The limb cache is per-process scratch (numpy arrays, megabytes);
        # rebuild lazily on the other side instead of shipping it.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_vec_cache"
        }

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._vec_cache = {}

    @property
    def num_variables(self) -> int:
        return 1 + self.num_public + self.num_private

    def matrices(self) -> Tuple[CSRMatrix, CSRMatrix, CSRMatrix]:
        return self.a, self.b, self.c

    def total_terms(self) -> int:
        return self.a.nnz + self.b.nnz + self.c.nnz

    def row_span(self, start: int, stop: int) -> "CSRSystem":
        """Rows ``[start, stop)`` with the full assignment vector attached."""
        return CSRSystem(
            self.a.row_span(start, stop),
            self.b.row_span(start, stop),
            self.c.row_span(start, stop),
            self.num_public,
            self.num_private,
            self.modulus,
            z=self.z,
        )


def dense_position(index: int, num_public: int) -> int:
    """Map a signed variable index to its dense ``z`` position."""
    if index < 0:
        return -index
    if index > 0:
        return num_public + index
    return 0


def build_csr_structure(constraints, num_public: int, num_private: int,
                        modulus: int) -> CSRSystem:
    """Build the (assignment-free) CSR structure from constraint LCs.

    Terms are copied exactly as stored in each LC — no filtering or
    re-canonicalization — so CSR evaluation performs precisely the same
    coefficient products the legacy per-LC path does, keeping the op-count
    parity the regression tests pin down.
    """
    mats = []
    for side in ("a", "b", "c"):
        indptr = [0]
        indices: List[int] = []
        coeffs: List[int] = []
        for constraint in constraints:
            for index, coeff in getattr(constraint, side).terms.items():
                indices.append(dense_position(index, num_public))
                coeffs.append(coeff)
            indptr.append(len(indices))
        mats.append(CSRMatrix(indptr, indices, coeffs))
    return CSRSystem(mats[0], mats[1], mats[2], num_public, num_private,
                     modulus)


# Rough upper bound on the transient footprint of one scheduled product:
# the ~508-bit product int (~92 bytes) plus its list slot.  Used to turn
# the ZENO_MSM_CHUNK_BYTES working-set budget into a block nnz.
_STREAM_BYTES_PER_TERM = 96


def _stream_block_nnz() -> Optional[int]:
    """nnz budget per evaluation block, from ``ZENO_MSM_CHUNK_BYTES``.

    Read per call (the CLI's ``--max-rss`` sets it mid-process); unset
    means unbounded — the historical single-sweep behavior.
    """
    raw = os.environ.get("ZENO_MSM_CHUNK_BYTES")
    if not raw:
        return None
    return max(1024, int(raw) // _STREAM_BYTES_PER_TERM)


def _eval_span(
    matrix: CSRMatrix,
    z: List[int],
    modulus: int,
    out: List[int],
    start_row: int,
    stop_row: int,
    base_row: int,
) -> None:
    indptr = matrix.indptr
    lo, hi = indptr[start_row], indptr[stop_row]
    full = lo == 0 and hi == matrix.nnz
    coeffs = matrix.coeffs if full else matrix.coeffs[lo:hi]
    indices = matrix.indices if full else matrix.indices[lo:hi]
    prods = list(map(operator.mul, coeffs, map(z.__getitem__, indices)))
    begin = 0
    for row in range(start_row, stop_row):
        end = indptr[row + 1] - lo
        out[row - base_row] = sum(prods[begin:end]) % modulus
        begin = end


def matrix_row_evals(
    matrix: CSRMatrix,
    z: List[int],
    modulus: int,
    out: Optional[List[int]] = None,
    start_row: int = 0,
    stop_row: Optional[int] = None,
) -> List[int]:
    """Evaluate ``<M_j, z>`` for rows ``[start_row, stop_row)``.

    Single pass: all coefficient products are formed in one C-level
    ``map(mul, ...)`` sweep, then each row reduces to a slice sum and one
    modular reduction — no per-term Python bytecode.  When
    ``ZENO_MSM_CHUNK_BYTES`` is set, the span is processed in row-aligned
    blocks whose transient product list stays within that budget, so the
    witness pass streams instead of materializing O(nnz) products.
    """
    indptr = matrix.indptr
    stop_row = matrix.num_rows if stop_row is None else stop_row
    if out is None:
        out = [0] * (stop_row - start_row)
    limit = _stream_block_nnz()
    if limit is not None and indptr[stop_row] - indptr[start_row] > limit:
        row = start_row
        while row < stop_row:
            end = row + 1  # always make progress, even on a giant row
            while end < stop_row and indptr[end + 1] - indptr[row] <= limit:
                end += 1
            _eval_span(matrix, z, modulus, out, row, end, start_row)
            row = end
        return out
    _eval_span(matrix, z, modulus, out, start_row, stop_row, start_row)
    return out


def _vector_tables(csr: CSRSystem, side: str):
    """Structure tables for one matrix: gather indices, row starts,
    mont-form coefficient limbs, and the widest row (for the < 64p
    accumulator guard).  Built once per snapshot and reused across every
    witness evaluated against it."""
    import numpy as np

    from repro.field import backend as fb

    cached = csr._vec_cache.get(side)
    if cached is not None:
        return cached
    matrix: CSRMatrix = getattr(csr, side)
    plan = fb.plan_for(csr.modulus)
    p = csr.modulus
    rm = plan.R_mod_p
    tables = (
        np.array(matrix.indices, dtype=np.int64),
        np.array(matrix.indptr, dtype=np.int64),
        fb.to_limbs(plan, [c * rm % p for c in matrix.coeffs]),
        max(
            (
                matrix.indptr[r + 1] - matrix.indptr[r]
                for r in range(matrix.num_rows)
            ),
            default=0,
        ),
    )
    csr._vec_cache[side] = tables
    return tables


def _vector_z_limbs(csr: CSRSystem):
    """Assignment vector as canonical limbs, keyed by snapshot stamp."""
    from repro.field import backend as fb

    key = ("z", csr.stamp)
    cached = csr._vec_cache.get(key)
    if cached is None:
        for old in [k for k in csr._vec_cache if isinstance(k, tuple)]:
            del csr._vec_cache[old]  # stale stamps
        plan = fb.plan_for(csr.modulus)
        cached = fb.to_limbs(plan, csr.z, validate=True)
        csr._vec_cache[key] = cached
    return cached


def _vector_row_evals(
    csr: CSRSystem, side: str, start_row: int, stop_row: int
) -> Optional[List[int]]:
    """Limb-vectorized ``<M_j, z>`` sweep, or ``None`` to fall back.

    Each term is one lane of a Montgomery multiply (mont-form coefficient
    x plain assignment -> plain product < 2p), rows reduce with one
    ``np.add.reduceat`` per limb row, and 32-term rows keep the
    accumulated value < 64p — inside the canonicalize ladder's range.
    Counter totals are charged by the caller exactly as for the scalar
    sweep.
    """
    import numpy as np

    from repro.field import backend as fb

    idx, starts, coeff_mont, max_row = _vector_tables(csr, side)
    if max_row > _VECTOR_MAX_ROW_NNZ:
        return None
    plan = fb.plan_for(csr.modulus)
    lo, hi = int(starts[start_row]), int(starts[stop_row])
    if hi == lo:
        return [0] * (stop_row - start_row)
    z_limbs = _vector_z_limbs(csr)
    gathered = np.ascontiguousarray(z_limbs[:, idx[lo:hi]])
    prods = fb.mont_mul(plan, gathered, coeff_mont[:, lo:hi])
    row_starts = starts[start_row:stop_row] - lo
    # reduceat quirks: an empty row would yield the element at its start
    # (or an out-of-bounds error at the tail), so reduce only the
    # non-empty rows — their starts are strictly increasing and in range —
    # and scatter into a zeroed output.
    empty = starts[start_row + 1 : stop_row + 1] == starts[start_row:stop_row]
    sums = np.zeros((prods.shape[0], stop_row - start_row), dtype=np.int64)
    if (~empty).any():
        sums[:, ~empty] = np.add.reduceat(
            prods, row_starts[~empty], axis=1
        )
    fb.canonicalize(plan, sums)
    return fb.from_limbs(plan, sums)


def evaluate_rows(
    csr: CSRSystem, start_row: int = 0, stop_row: Optional[int] = None
) -> Tuple[List[int], List[int], List[int]]:
    """``(A_w, B_w, C_w)`` row evaluations over ``[start_row, stop_row)``.

    Tallies one ``field_mul`` per materialized term, matching what the
    legacy ``LinearCombination.evaluate`` path records.  When the
    vectorized field backend is active and the span is past
    ``ZENO_VECTOR_CSR_MIN`` (opt-in; see the module constant) the three
    sweeps run as limb-array programs instead, with identical results and
    counter totals.
    """
    from repro.field.counters import global_counter

    if csr.z is None:
        raise ValueError("CSR snapshot has no assignment vector")
    stop_row = csr.num_rows if stop_row is None else stop_row
    z, p = csr.z, csr.modulus
    evals: List[Optional[List[int]]] = [None, None, None]
    span_nnz = sum(
        m.indptr[stop_row] - m.indptr[start_row] for m in csr.matrices()
    )
    if _VECTOR_CSR_MIN and span_nnz >= _VECTOR_CSR_MIN:
        from repro.field.backend import get_backend

        if get_backend().supports_vector:
            evals = [
                _vector_row_evals(csr, side, start_row, stop_row)
                for side in ("a", "b", "c")
            ]
    a, b, c = (
        ev
        if ev is not None
        else matrix_row_evals(
            getattr(csr, side), z, p, start_row=start_row, stop_row=stop_row
        )
        for side, ev in zip(("a", "b", "c"), evals)
    )
    counter = global_counter()
    for matrix in csr.matrices():
        counter.field_mul += (
            matrix.indptr[stop_row] - matrix.indptr[start_row]
        )
    return a, b, c
