"""Sparse linear combinations over constraint-system variables.

Variables are identified by signed integer indices:

* ``0``          — the constant-ONE variable,
* negative       — public (instance) variables, allocated as -1, -2, ...
* positive       — private (witness) variables, allocated as 1, 2, ...

This two-namespace scheme lets the compiler allocate public reference
outputs and private wires in any interleaving while the QAP layer still
produces the contiguous ``[1 | public | private]`` ordering Groth16 needs.

An LC is a sparse ``{variable index: coefficient}`` map.  Building LCs is
the paper's "free addition": combining ``k`` terms costs ``O(k)`` coefficient
arithmetic but zero constraints (§2.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.field.counters import global_counter
from repro.field.fp import Field

ONE = 0  # index of the constant-one variable


class LinearCombination:
    """A sparse linear combination ``sum coeff_i * var_i`` over a field."""

    __slots__ = ("field", "terms")

    def __init__(
        self,
        field: Field,
        terms: Dict[int, int] = None,
    ) -> None:
        self.field = field
        self.terms: Dict[int, int] = terms if terms is not None else {}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, field: Field, value: int) -> "LinearCombination":
        value %= field.modulus
        return cls(field, {ONE: value} if value else {})

    @classmethod
    def variable(
        cls, field: Field, index: int, coeff: int = 1
    ) -> "LinearCombination":
        coeff %= field.modulus
        return cls(field, {index: coeff} if coeff else {})

    def copy(self) -> "LinearCombination":
        return LinearCombination(self.field, dict(self.terms))

    # -- mutation (used by hot circuit-computation loops) -------------------------

    def add_term(self, index: int, coeff: int) -> None:
        """Fold ``coeff * var`` into this LC in place ("free addition")."""
        counter = global_counter()
        counter.lc_term += 1
        current = self.terms.get(index)
        if current is None:
            self.terms[index] = coeff % self.field.modulus
        else:
            counter.field_add += 1
            new = (current + coeff) % self.field.modulus
            if new:
                self.terms[index] = new
            else:
                del self.terms[index]

    def add_lc(self, other: "LinearCombination", scale: int = 1) -> None:
        """Fold ``scale * other`` into this LC in place.

        This is exactly the operation whose repetition makes the baseline
        arithmetic circuit's recursive expansion O(n^2) (§5.1): each call
        touches every term of ``other``.
        """
        terms = self.terms
        p = self.field.modulus
        n = len(other.terms)
        counter = global_counter()
        counter.lc_term += n
        counter.field_add += n
        if scale == 1:
            for index, coeff in other.terms.items():
                merged = (terms.get(index, 0) + coeff) % p
                if merged:
                    terms[index] = merged
                else:
                    terms.pop(index, None)
        else:
            counter.field_mul += n
            for index, coeff in other.terms.items():
                merged = (terms.get(index, 0) + coeff * scale) % p
                if merged:
                    terms[index] = merged
                else:
                    terms.pop(index, None)

    # -- functional operators (for readable non-hot code) --------------------------

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        out = self.copy()
        out.add_lc(other)
        return out

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        out = self.copy()
        out.add_lc(other, scale=self.field.modulus - 1)
        return out

    def __mul__(self, scalar: int) -> "LinearCombination":
        scalar %= self.field.modulus
        if scalar == 0:
            return LinearCombination(self.field)
        global_counter().field_mul += len(self.terms)
        return LinearCombination(
            self.field,
            {i: (c * scalar) % self.field.modulus for i, c in self.terms.items()},
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinearCombination":
        return self * (self.field.modulus - 1)

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, assignment: "Assignment") -> int:
        """Value of this LC under a variable assignment (raw int mod p)."""
        acc = 0
        for index, coeff in self.terms.items():
            acc += coeff * assignment[index]
        global_counter().field_mul += len(self.terms)
        return acc % self.field.modulus

    # -- introspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.terms.items())

    def is_zero(self) -> bool:
        return not self.terms

    def indices(self) -> Iterable[int]:
        return self.terms.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearCombination):
            return NotImplemented
        return self.field == other.field and self.terms == other.terms

    def __repr__(self) -> str:
        if not self.terms:
            return "LC(0)"
        parts = []
        for index, coeff in sorted(self.terms.items()):
            name = "1" if index == ONE else (
                f"pub{-index}" if index < 0 else f"w{index}"
            )
            parts.append(f"{coeff}*{name}")
        return "LC(" + " + ".join(parts) + ")"


class Assignment:
    """Values for all variables, indexed by the signed-index scheme."""

    __slots__ = ("public", "private")

    def __init__(self, public: list, private: list) -> None:
        self.public = public  # public[i] is the value of variable -(i+1)
        self.private = private  # private[i] is the value of variable i+1

    def __getitem__(self, index: int) -> int:
        if index == ONE:
            return 1
        if index < 0:
            return self.public[-index - 1]
        return self.private[index - 1]
