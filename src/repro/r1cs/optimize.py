"""Constraint-system optimizer passes.

Security-computation latency is proportional to the witness size ``n`` and
constraint count ``m`` (§2.1), so post-compilation cleanup translates
directly into proving time:

* :func:`eliminate_unconstrained` — drops private variables that appear in
  **no** constraint.  The compiler legitimately produces some (committed
  weight entries whose value is zero never get referenced by Eq. 2
  products; ReLU sign bits at exactly-zero inputs are referenced but
  slack — only the former are *unreferenced* and removable).  Each dropped
  variable removes one witness MSM term and one CRS element.
* :func:`deduplicate_constraints` — removes duplicate constraints modulo
  term order and scalar multiples (``(λA)·(μB) = λμC`` proves exactly what
  ``A·B = C`` proves, as does ``B·A = C``).  Duplicates prove nothing
  extra; each removal shrinks the QAP domain contribution.
* :func:`optimize` — both passes, returning a report.

Everything a pass removes is surfaced as lint-compatible
:class:`~repro.analysis.report.Finding` entries on the
:class:`OptimizeReport`, so optimizer decisions land in the same audit
stream as :mod:`repro.analysis.lint`.

Passes rebuild a fresh :class:`ConstraintSystem` with remapped indices and
witness values; the original is never mutated.  Satisfiability and public
values are preserved (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE, LinearCombination
from repro.r1cs.system import ConstraintSystem


@dataclass(frozen=True)
class OptimizeReport:
    """What the passes removed."""

    variables_before: int
    variables_after: int
    constraints_before: int
    constraints_after: int
    # Lint-compatible findings (repro.analysis.report.Finding) describing
    # each removal, mergeable into an AuditReport.
    findings: tuple = ()

    @property
    def variables_removed(self) -> int:
        return self.variables_before - self.variables_after

    @property
    def constraints_removed(self) -> int:
        return self.constraints_before - self.constraints_after


def referenced_private_variables(cs: ConstraintSystem) -> Set[int]:
    """Private variable indices appearing in at least one constraint."""
    used: Set[int] = set()
    for constraint in cs.constraints:
        for lc in (constraint.a, constraint.b, constraint.c):
            for index in lc.indices():
                if index > 0:
                    used.add(index)
    return used


def _remap_lc(
    lc: LinearCombination, mapping: Dict[int, int], field
) -> LinearCombination:
    terms = {}
    for index, coeff in lc:
        new_index = mapping[index] if index > 0 else index
        terms[new_index] = coeff
    return LinearCombination(field, terms)


def eliminate_unconstrained(
    cs: ConstraintSystem,
) -> Tuple[ConstraintSystem, int]:
    """Drop unreferenced private variables; returns (new system, #dropped).

    Public variables are never dropped — they are the instance the
    verifier binds to, referenced or not.
    """
    used = referenced_private_variables(cs)
    mapping: Dict[int, int] = {}
    out = ConstraintSystem(field=cs.field, name=cs.name)
    for i in range(cs.num_public):
        out.new_public(cs._public_values[i])
    for old in range(1, cs.num_private + 1):
        if old in used:
            mapping[old] = out.new_private(cs._private_values[old - 1])
    for constraint in cs.constraints:
        out.constraints.append(
            Constraint(
                _remap_lc(constraint.a, mapping, cs.field),
                _remap_lc(constraint.b, mapping, cs.field),
                _remap_lc(constraint.c, mapping, cs.field),
                tag=constraint.tag,
            )
        )
    out.layer_ranges = dict(cs.layer_ranges)
    return out, cs.num_private - out.num_private


def _scaled_terms(lc: LinearCombination, scale: int, p: int) -> tuple:
    """Sorted term tuple of ``scale * lc`` — canonical modulo term order."""
    return tuple(sorted((i, c * scale % p) for i, c in lc.terms.items()))


def _leading_inverse(lc: LinearCombination, field) -> int:
    """Inverse of the first nonzero coefficient (smallest variable index).

    Stored zero coefficients are legal (an LC is a sparse map, not a
    normalized polynomial), so skip them rather than inverting zero.
    """
    p = field.modulus
    lead = min(v for v, c in lc.terms.items() if c % p)
    return field.inv(lc.terms[lead])


def canonical_constraint_key(constraint: Constraint) -> tuple:
    """A key equal for constraints that prove the same statement.

    Two rank-1 constraints are equivalent when one is a scalar multiple of
    the other — ``(λA)·(μB) = (λμ)C`` for nonzero ``λ, μ`` — or when the
    product sides are swapped.  Each LC is normalized so its leading
    (smallest-index) coefficient is 1, the C side absorbs the combined
    scale, and the (A, B) pair is ordered canonically.  Constraints with an
    empty product side reduce to the pure linear statement ``<C, z> = 0``,
    which is itself scale-invariant.
    """
    field = constraint.a.field
    p = field.modulus
    if constraint.a.is_zero() or constraint.b.is_zero():
        # 0 * B = C (or A * 0 = C): only <C, z> = 0 is being enforced.
        if constraint.c.is_zero():
            return ("trivial",)
        scale = _leading_inverse(constraint.c, field)
        return ("linear", _scaled_terms(constraint.c, scale, p))
    lam = _leading_inverse(constraint.a, field)
    mu = _leading_inverse(constraint.b, field)
    a_key = _scaled_terms(constraint.a, lam, p)
    b_key = _scaled_terms(constraint.b, mu, p)
    c_key = _scaled_terms(constraint.c, lam * mu % p, p)
    lo, hi = sorted((a_key, b_key))
    return ("mul", lo, hi, c_key)


def deduplicate_constraints(
    cs: ConstraintSystem,
) -> Tuple[ConstraintSystem, int]:
    """Remove duplicates modulo term order, scalar multiples, and A/B swap.

    Layer provenance ranges are invalidated by the removal and dropped.
    """
    out, _ = _deduplicate_with_findings(cs)
    return out, cs.num_constraints - out.num_constraints


def _deduplicate_with_findings(cs: ConstraintSystem):
    from repro.analysis.report import Finding, Severity

    out = ConstraintSystem(field=cs.field, name=cs.name)
    for i in range(cs.num_public):
        out.new_public(cs._public_values[i])
    for i in range(cs.num_private):
        out.new_private(cs._private_values[i])
    findings: List[Finding] = []
    seen: Dict[tuple, int] = {}
    for index, constraint in enumerate(cs.constraints):
        key = canonical_constraint_key(constraint)
        kept = seen.get(key)
        if kept is not None:
            findings.append(
                Finding(
                    rule="duplicate-constraint",
                    severity=Severity.INFO,
                    message=(
                        f"removed constraint #{index}: scalar multiple / "
                        f"reordering of kept constraint #{kept}"
                    ),
                    constraint=index,
                    layer=cs.layer_of(index),
                    details={"kept": kept, "removed_tag": constraint.tag},
                )
            )
            continue
        seen[key] = index
        out.constraints.append(constraint)
    return out, findings


def optimize(cs: ConstraintSystem) -> Tuple[ConstraintSystem, OptimizeReport]:
    """Run both passes; returns (optimized system, report)."""
    from repro.analysis.report import Finding, Severity

    deduped, findings = _deduplicate_with_findings(cs)
    slim, dropped = eliminate_unconstrained(deduped)
    if dropped:
        used = referenced_private_variables(deduped)
        findings.extend(
            Finding(
                rule="unreferenced-private",
                severity=Severity.INFO,
                message=f"removed private variable w{var}: "
                        "referenced by no constraint",
                variable=var,
            )
            for var in range(1, deduped.num_private + 1)
            if var not in used
        )
    return slim, OptimizeReport(
        variables_before=cs.num_variables,
        variables_after=slim.num_variables,
        constraints_before=cs.num_constraints,
        constraints_after=slim.num_constraints,
        findings=tuple(findings),
    )
