"""Constraint-system optimizer passes.

Security-computation latency is proportional to the witness size ``n`` and
constraint count ``m`` (§2.1), so post-compilation cleanup translates
directly into proving time:

* :func:`eliminate_unconstrained` — drops private variables that appear in
  **no** constraint.  The compiler legitimately produces some (committed
  weight entries whose value is zero never get referenced by Eq. 2
  products; ReLU sign bits at exactly-zero inputs are referenced but
  slack — only the former are *unreferenced* and removable).  Each dropped
  variable removes one witness MSM term and one CRS element.
* :func:`deduplicate_constraints` — removes exact duplicate constraints
  (identical A/B/C term maps).  Duplicates prove nothing extra; each
  removal shrinks the QAP domain contribution.
* :func:`optimize` — both passes, returning a report.

Passes rebuild a fresh :class:`ConstraintSystem` with remapped indices and
witness values; the original is never mutated.  Satisfiability and public
values are preserved (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE, LinearCombination
from repro.r1cs.system import ConstraintSystem


@dataclass(frozen=True)
class OptimizeReport:
    """What the passes removed."""

    variables_before: int
    variables_after: int
    constraints_before: int
    constraints_after: int

    @property
    def variables_removed(self) -> int:
        return self.variables_before - self.variables_after

    @property
    def constraints_removed(self) -> int:
        return self.constraints_before - self.constraints_after


def referenced_private_variables(cs: ConstraintSystem) -> Set[int]:
    """Private variable indices appearing in at least one constraint."""
    used: Set[int] = set()
    for constraint in cs.constraints:
        for lc in (constraint.a, constraint.b, constraint.c):
            for index in lc.indices():
                if index > 0:
                    used.add(index)
    return used


def _remap_lc(
    lc: LinearCombination, mapping: Dict[int, int], field
) -> LinearCombination:
    terms = {}
    for index, coeff in lc:
        new_index = mapping[index] if index > 0 else index
        terms[new_index] = coeff
    return LinearCombination(field, terms)


def eliminate_unconstrained(
    cs: ConstraintSystem,
) -> Tuple[ConstraintSystem, int]:
    """Drop unreferenced private variables; returns (new system, #dropped).

    Public variables are never dropped — they are the instance the
    verifier binds to, referenced or not.
    """
    used = referenced_private_variables(cs)
    mapping: Dict[int, int] = {}
    out = ConstraintSystem(field=cs.field, name=cs.name)
    for i in range(cs.num_public):
        out.new_public(cs._public_values[i])
    for old in range(1, cs.num_private + 1):
        if old in used:
            mapping[old] = out.new_private(cs._private_values[old - 1])
    for constraint in cs.constraints:
        out.constraints.append(
            Constraint(
                _remap_lc(constraint.a, mapping, cs.field),
                _remap_lc(constraint.b, mapping, cs.field),
                _remap_lc(constraint.c, mapping, cs.field),
                tag=constraint.tag,
            )
        )
    out.layer_ranges = dict(cs.layer_ranges)
    return out, cs.num_private - out.num_private


def _constraint_key(constraint: Constraint) -> tuple:
    return (
        tuple(sorted(constraint.a.terms.items())),
        tuple(sorted(constraint.b.terms.items())),
        tuple(sorted(constraint.c.terms.items())),
    )


def deduplicate_constraints(
    cs: ConstraintSystem,
) -> Tuple[ConstraintSystem, int]:
    """Remove constraints with identical (A, B, C) term maps.

    Layer provenance ranges are invalidated by the removal and dropped.
    """
    out = ConstraintSystem(field=cs.field, name=cs.name)
    for i in range(cs.num_public):
        out.new_public(cs._public_values[i])
    for i in range(cs.num_private):
        out.new_private(cs._private_values[i])
    seen = set()
    for constraint in cs.constraints:
        key = _constraint_key(constraint)
        if key in seen:
            continue
        seen.add(key)
        out.constraints.append(constraint)
    return out, cs.num_constraints - out.num_constraints


def optimize(cs: ConstraintSystem) -> Tuple[ConstraintSystem, OptimizeReport]:
    """Run both passes; returns (optimized system, report)."""
    deduped, _ = deduplicate_constraints(cs)
    slim, _ = eliminate_unconstrained(deduped)
    return slim, OptimizeReport(
        variables_before=cs.num_variables,
        variables_after=slim.num_variables,
        constraints_before=cs.num_constraints,
        constraints_after=slim.num_constraints,
    )
