"""The constraint system: variables, constraints, and witness assignment."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.field.fp import BN254_FR, Field
from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE, Assignment, LinearCombination


@dataclass(frozen=True)
class Violation:
    """One unsatisfied constraint, with its provenance."""

    index: int
    constraint: Constraint
    layer: Optional[str]  # enclosing mark_layer tag, if any

    def __repr__(self) -> str:
        where = f" in layer {self.layer!r}" if self.layer else ""
        return f"Violation(#{self.index}{where}: {self.constraint!r})"


class ConstraintSystem:
    """Accumulates variables and constraints during circuit computation.

    Two variable namespaces (see :mod:`repro.r1cs.lc`):

    * *public* (instance) variables — the reference outputs ``ref`` the
      verifier learns (e.g. the NN prediction);
    * *private* (witness) variables — the paper's ``X_i`` and ``Wire_j``.

    Values may be assigned eagerly at allocation (the common path — the
    prover knows everything) or later via :meth:`assign`; the latter is what
    batch-specialized constraint-system sharing (§6.1) uses to re-prove the
    same system on a new image without regenerating constraints.
    """

    def __init__(self, field: Field = BN254_FR, name: str = "cs") -> None:
        self.field = field
        self.name = name
        self.constraints: List[Constraint] = []
        self._public_values: List[Optional[int]] = []
        self._private_values: List[Optional[int]] = []
        # Layer provenance: constraint index ranges per compiler-layer tag.
        self.layer_ranges: Dict[str, range] = {}
        # Prover fast-path caches: the dense [1, publics..., privates...]
        # vector (invalidated on allocate/assign) and the CSR structure
        # (invalidated on enforce).  See repro.r1cs.csr.
        self._dense_cache: Optional[List[int]] = None
        self._csr_cache = None
        # layer_of() fast path: sorted disjoint (start, stop, tag) intervals,
        # invalidated on mark_layer and on constraint append.
        self._layer_index: Optional[List[Tuple[int, int, str]]] = None
        # repro.lookup: one LookupBlock per table argument emitted into this
        # system — consumed by the determinism auditor and batch replay.
        self.lookup_blocks: List = []

    # -- allocation ----------------------------------------------------------

    def new_public(self, value: Optional[int] = None) -> int:
        """Allocate a public (instance) variable; returns its signed index."""
        if value is not None:
            value %= self.field.modulus
        self._public_values.append(value)
        self._dense_cache = None
        self._csr_cache = None  # public count shifts every private position
        return -len(self._public_values)

    def new_private(self, value: Optional[int] = None) -> int:
        """Allocate a private (witness) variable; returns its signed index."""
        if value is not None:
            value %= self.field.modulus
        self._private_values.append(value)
        self._dense_cache = None
        return len(self._private_values)

    def assign(self, index: int, value: int) -> None:
        """(Re)assign a variable — used when sharing a system across images."""
        value %= self.field.modulus
        if index == ONE:
            raise ValueError("cannot assign the constant-one variable")
        if index < 0:
            self._public_values[-index - 1] = value
        else:
            self._private_values[index - 1] = value
        self._dense_cache = None

    # -- LC helpers -----------------------------------------------------------

    def lc(self) -> LinearCombination:
        return LinearCombination(self.field)

    def lc_constant(self, value: int) -> LinearCombination:
        return LinearCombination.constant(self.field, value)

    def lc_variable(self, index: int, coeff: int = 1) -> LinearCombination:
        return LinearCombination.variable(self.field, index, coeff)

    # -- constraints -------------------------------------------------------------

    def enforce(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
        tag: str = "",
    ) -> None:
        """Add the constraint ``a * b = c``."""
        self.constraints.append(Constraint(a, b, c, tag=tag))
        self._csr_cache = None
        self._layer_index = None

    def enforce_equal(
        self, lc: LinearCombination, ref: LinearCombination, tag: str = ""
    ) -> None:
        """Add the equality check ``(lc - ref) * 1 = 0`` (Eq. 2/3 pattern)."""
        diff = lc - ref
        one = self.lc_constant(1)
        zero = self.lc()
        self.enforce(diff, one, zero, tag=tag)

    def mul_private(
        self, x_index: int, w_index: int, tag: str = ""
    ) -> int:
        """Multiply two private variables; costs exactly one constraint.

        Returns the wire holding the product (the paper's
        ``(1*w_i) * (1*x_i) = Wire_i`` from Eq. 2).  Values propagate if both
        operands are assigned.
        """
        x_val = self.value_of(x_index)
        w_val = self.value_of(w_index)
        product = (
            self.field.mul(x_val, w_val)
            if x_val is not None and w_val is not None
            else None
        )
        wire = self.new_private(product)
        self.enforce(
            self.lc_variable(w_index),
            self.lc_variable(x_index),
            self.lc_variable(wire),
            tag=tag,
        )
        return wire

    # -- layer provenance ----------------------------------------------------------

    def mark_layer(self, tag: str, start: int) -> None:
        """Record that constraints ``[start, len)`` belong to layer ``tag``."""
        self.layer_ranges[tag] = range(start, len(self.constraints))
        self._layer_index = None

    # -- inspection ------------------------------------------------------------------

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_public(self) -> int:
        return len(self._public_values)

    @property
    def num_private(self) -> int:
        return len(self._private_values)

    @property
    def num_variables(self) -> int:
        """Total variables including the constant one."""
        return 1 + self.num_public + self.num_private

    def value_of(self, index: int) -> Optional[int]:
        if index == ONE:
            return 1
        if index < 0:
            return self._public_values[-index - 1]
        return self._private_values[index - 1]

    def assignment(self) -> Assignment:
        """Full assignment; raises if any variable is unassigned.

        Returns fresh lists (callers — e.g. the witness fuzzer — mutate
        them in place); the prover hot path uses :meth:`dense_assignment`
        instead, which is cached.
        """
        dense = self.dense_assignment()
        split = 1 + self.num_public
        return Assignment(dense[1:split], dense[split:])

    def dense_assignment(self) -> List[int]:
        """The dense ``[1, publics..., privates...]`` vector, cached.

        This is the Groth16 assignment order (see
        :func:`repro.snark.qap.variable_order`); the cache is invalidated
        by every allocation and :meth:`assign`, so batch re-assignment
        (§6.1) pays one rebuild per image instead of one per evaluation.
        Callers must not mutate the returned list.
        """
        dense = self._dense_cache
        if dense is not None:
            return dense
        for i, v in enumerate(self._public_values):
            if v is None:
                raise ValueError(f"public variable -{i + 1} unassigned")
        for i, v in enumerate(self._private_values):
            if v is None:
                raise ValueError(f"private variable {i + 1} unassigned")
        dense = [1]
        dense.extend(self._public_values)
        dense.extend(self._private_values)
        self._dense_cache = dense
        return dense

    def to_csr(self, assignment: bool = True):
        """CSR snapshot of the three constraint matrices (see
        :mod:`repro.r1cs.csr`).

        The structure (``indptr``/``indices``/``coeffs``) is cached until
        the next :meth:`enforce` or public allocation; with ``assignment``
        (the default) the snapshot's dense ``z`` vector is refreshed from
        :meth:`dense_assignment` on every call, so §6.1 batch sharing
        reuses one structure across images.
        """
        from repro.r1cs.csr import build_csr_structure

        csr = self._csr_cache
        if csr is None or csr.num_rows != self.num_constraints:
            csr = build_csr_structure(
                self.constraints, self.num_public, self.num_private,
                self.field.modulus,
            )
            self._csr_cache = csr
        csr.num_private = self.num_private  # privates may grow post-snapshot
        z = self.dense_assignment() if assignment else None
        if z is not csr.z:
            csr.z = z
            csr.restamp()  # tell pooled executor workers their fork is stale
        return csr

    def public_values(self) -> List[int]:
        return [v if v is not None else 0 for v in self._public_values]

    def is_satisfied(self) -> bool:
        return not self.violations(limit=1)

    def first_unsatisfied(self) -> Optional[Constraint]:
        """The first violated constraint, for debugging compiler passes."""
        found = self.violations(limit=1)
        return found[0].constraint if found else None

    def _build_layer_index(self) -> List[Tuple[int, int, str]]:
        """Sorted disjoint ``(start, stop, tag)`` intervals for layer_of.

        Tags are processed in ``layer_ranges`` insertion order, each
        claiming only the index space no earlier tag already covers — the
        same first-match-wins answer the old per-call linear scan gave,
        now answerable with one bisect.  Rebuilt lazily after any
        :meth:`mark_layer` or constraint append.
        """
        claimed: List[Tuple[int, int, str]] = []  # sorted, disjoint
        for tag, rng in self.layer_ranges.items():
            if rng.stop <= rng.start:
                continue
            # Carve [rng.start, rng.stop) around already-claimed intervals.
            gaps = [(rng.start, rng.stop)]
            for start, stop, _ in claimed:
                next_gaps = []
                for lo, hi in gaps:
                    if stop <= lo or start >= hi:
                        next_gaps.append((lo, hi))
                        continue
                    if lo < start:
                        next_gaps.append((lo, start))
                    if stop < hi:
                        next_gaps.append((stop, hi))
                gaps = next_gaps
            for lo, hi in gaps:
                bisect.insort(claimed, (lo, hi, tag))
        self._layer_index = claimed
        return claimed

    def layer_of(self, index: int) -> Optional[str]:
        """The mark_layer tag whose range covers constraint ``index``.

        Audit lints and :meth:`violations` call this once per finding;
        the cached interval index makes each call ``O(log L)`` instead of
        a linear scan over every tagged range.
        """
        intervals = self._layer_index
        if intervals is None:
            intervals = self._build_layer_index()
        pos = bisect.bisect_right(intervals, (index, float("inf"))) - 1
        if pos >= 0:
            start, stop, tag = intervals[pos]
            if start <= index < stop:
                return tag
        return None

    def violations(
        self, limit: Optional[int] = None, assignment: Optional[Assignment] = None
    ) -> List[Violation]:
        """All unsatisfied constraints (up to ``limit``) with layer tags.

        Audit and fuzz reporting want the *full* violation picture — a
        mutated witness that breaks one constraint but silently satisfies a
        rewritten neighbour is exactly the signal the soundness tooling
        looks for.  Pass ``assignment`` to evaluate a candidate witness
        without touching the stored values.

        With the stored witness (no explicit ``assignment``) the scan runs
        over the cached CSR snapshot + dense vector instead of per-LC dict
        walks — the same single-pass evaluation the prover uses.
        """
        if assignment is None:
            from repro.r1cs.csr import evaluate_rows

            csr = self.to_csr()
            a_w, b_w, c_w = evaluate_rows(csr)
            p = self.field.modulus
            found: List[Violation] = []
            for index in range(csr.num_rows):
                if (a_w[index] * b_w[index] - c_w[index]) % p == 0:
                    continue
                found.append(
                    Violation(
                        index, self.constraints[index], self.layer_of(index)
                    )
                )
                if limit is not None and len(found) >= limit:
                    break
            return found
        found = []
        for index, constraint in enumerate(self.constraints):
            if constraint.is_satisfied(assignment):
                continue
            found.append(Violation(index, constraint, self.layer_of(index)))
            if limit is not None and len(found) >= limit:
                break
        return found

    def total_lc_terms(self) -> int:
        """Total materialized LC terms — proxy for circuit-computation cost."""
        return sum(c.num_terms() for c in self.constraints)

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem({self.name}: m={self.num_constraints}, "
            f"pub={self.num_public}, priv={self.num_private})"
        )
