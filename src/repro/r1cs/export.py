"""R1CS interchange: export/import constraint systems for other provers.

The paper's Fig. 15 methodology is "we manually port compiled constraints
from ZENO into Bellman and Ginger" — which requires a constraint-system
interchange format.  This module provides one: a versioned JSON document
(human-auditable, diff-able) with the three sparse matrices, the witness,
and enough metadata to rebuild the system bit-for-bit.

Format (version 1)::

    {
      "format": "zeno-r1cs", "version": 1,
      "field_modulus": "<decimal>",
      "name": "...",
      "num_public": P, "num_private": N,
      "public_values": ["<decimal>", ...],
      "private_values": ["<decimal>", ...],        # omitted if unassigned
      "constraints": [
        {"a": [[idx, "<coeff>"], ...], "b": [...], "c": [...], "tag": "..."},
        ...
      ],
      "layers": {"conv1": [start, stop], ...}
    }

Variable indices use this repo's signed scheme (0 = ONE, negative =
public, positive = private); coefficients are decimal strings (254-bit
values exceed JSON number precision).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.field.fp import BN254_FR, Field
from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem

FORMAT_NAME = "zeno-r1cs"
FORMAT_VERSION = 1


class ImportError_(ValueError):
    """Raised on malformed interchange documents."""


def _lc_to_json(lc: LinearCombination) -> list:
    return [[int(i), str(c)] for i, c in sorted(lc.terms.items())]


def _lc_from_json(field: Field, data: list) -> LinearCombination:
    terms = {}
    for entry in data:
        if len(entry) != 2:
            raise ImportError_(f"malformed LC term {entry!r}")
        index, coeff = int(entry[0]), int(entry[1])
        terms[index] = coeff % field.modulus
    return LinearCombination(field, terms)


def export_system(cs: ConstraintSystem, include_witness: bool = True) -> str:
    """Serialize a constraint system to the interchange JSON."""
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "field_modulus": str(cs.field.modulus),
        "name": cs.name,
        "num_public": cs.num_public,
        "num_private": cs.num_private,
        "constraints": [
            {
                "a": _lc_to_json(c.a),
                "b": _lc_to_json(c.b),
                "c": _lc_to_json(c.c),
                "tag": c.tag,
            }
            for c in cs.constraints
        ],
        "layers": {
            tag: [r.start, r.stop] for tag, r in cs.layer_ranges.items()
        },
    }
    if include_witness:
        doc["public_values"] = [
            str(v) if v is not None else None for v in cs._public_values
        ]
        doc["private_values"] = [
            str(v) if v is not None else None for v in cs._private_values
        ]
    return json.dumps(doc)


def import_system(text: str, field: Optional[Field] = None) -> ConstraintSystem:
    """Rebuild a constraint system from interchange JSON."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ImportError_(f"not valid JSON: {exc}") from exc
    if doc.get("format") != FORMAT_NAME:
        raise ImportError_(f"unknown format {doc.get('format')!r}")
    if doc.get("version") != FORMAT_VERSION:
        raise ImportError_(f"unsupported version {doc.get('version')!r}")
    field = field or BN254_FR
    if int(doc["field_modulus"]) != field.modulus:
        raise ImportError_(
            "field mismatch: document uses a different prime"
        )

    cs = ConstraintSystem(field=field, name=doc.get("name", "imported"))
    publics = doc.get("public_values")
    privates = doc.get("private_values")
    for i in range(int(doc["num_public"])):
        value = publics[i] if publics is not None else None
        cs.new_public(int(value) if value is not None else None)
    for i in range(int(doc["num_private"])):
        value = privates[i] if privates is not None else None
        cs.new_private(int(value) if value is not None else None)

    for entry in doc["constraints"]:
        cs.constraints.append(
            Constraint(
                _lc_from_json(field, entry["a"]),
                _lc_from_json(field, entry["b"]),
                _lc_from_json(field, entry["c"]),
                tag=entry.get("tag", ""),
            )
        )
    for tag, (start, stop) in doc.get("layers", {}).items():
        cs.layer_ranges[tag] = range(int(start), int(stop))

    # Reject dangling variable references early.
    for constraint in cs.constraints:
        for lc in (constraint.a, constraint.b, constraint.c):
            for index in lc.indices():
                if index > cs.num_private or -index > cs.num_public:
                    raise ImportError_(
                        f"constraint references unknown variable {index}"
                    )
    return cs


def export_to_file(cs: ConstraintSystem, path, include_witness: bool = True):
    with open(path, "w") as handle:
        handle.write(export_system(cs, include_witness=include_witness))


def import_from_file(path, field: Optional[Field] = None) -> ConstraintSystem:
    with open(path) as handle:
        return import_system(handle.read(), field=field)
