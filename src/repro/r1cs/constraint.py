"""A single R1CS constraint ``<A, z> * <B, z> = <C, z>``."""

from __future__ import annotations

from repro.r1cs.lc import Assignment, LinearCombination


class Constraint:
    """One rank-1 constraint over three linear combinations.

    The paper's Eq. 1 writes the right-hand side as a single ``Wire_j``;
    allowing a full LC on the C side is the standard generalization (a
    single wire is the LC ``1 * Wire_j``) and changes nothing downstream.
    """

    __slots__ = ("a", "b", "c", "tag")

    def __init__(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
        tag: str = "",
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.tag = tag  # provenance label, e.g. "conv1/dot" — aids debugging

    def is_satisfied(self, assignment: Assignment) -> bool:
        field = self.a.field
        lhs = field.mul(self.a.evaluate(assignment), self.b.evaluate(assignment))
        return lhs == self.c.evaluate(assignment)

    def num_terms(self) -> int:
        """Total LC terms — the unit of circuit-computation work."""
        return len(self.a) + len(self.b) + len(self.c)

    def __repr__(self) -> str:
        label = f" [{self.tag}]" if self.tag else ""
        return f"Constraint({self.a!r} * {self.b!r} = {self.c!r}){label}"
