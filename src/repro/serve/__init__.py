"""`repro.serve` — a batched, multi-worker Groth16 proving service.

Turns the one-shot compiler/prover pipeline into a long-running service:
jobs enter a priority queue (:mod:`repro.serve.jobs`), an adaptive
micro-batcher groups jobs for the same (model, profile) so the §6.1
batch-specialized constraint-system sharing is exercised on the serving
path (:mod:`repro.serve.batcher`), and a process worker pool with warm
per-worker proving-key caches executes them (:mod:`repro.serve.workers`).
Artifacts land in a content-addressed store (:mod:`repro.serve.store`) and
live counters are exported as a JSON snapshot
(:mod:`repro.serve.telemetry`).

Entry point: :class:`repro.serve.service.ProvingService`.
"""

from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.jobs import JobQueue, JobResult, JobState, ProofJob
from repro.serve.service import ProvingService, ServiceConfig
from repro.serve.store import ArtifactStore
from repro.serve.telemetry import ServiceTelemetry

__all__ = [
    "ArtifactStore",
    "Batch",
    "JobQueue",
    "JobResult",
    "JobState",
    "MicroBatcher",
    "ProofJob",
    "ProvingService",
    "ServiceConfig",
    "ServiceTelemetry",
]
