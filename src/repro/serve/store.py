"""On-disk artifact store: proofs and keys, content-addressed, LRU-bounded.

Serving generates a stream of artifacts — serialized proofs per job, one
verifying key per (model, profile), optionally proving keys, and chunked
CRS blobs for streamed proving.  The store names each blob by its content
hash (``<kind>-<sha256[:16]>.bin``) so identical artifacts dedupe for free
(e.g. the verifying key every batch of the same key reports), and evicts
least-recently-used entries beyond configurable bounds so a long-running
service cannot fill the disk.

Eviction charges the *actual on-disk size* of each blob, not just the
entry count: a megabyte-scale CRS chunk and a 100-byte proof used to cost
the same toward the bound, which let key chunks blow well past any
intended disk budget.  ``max_bytes`` bounds the total; ``max_entries``
still caps the count.

Typed helpers round-trip through :mod:`repro.snark.serialize`, so
anything read back is a validated on-curve object, not raw bytes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional


class ArtifactStore:
    """Content-addressed blob store with entry- and byte-bounded LRU."""

    def __init__(
        self,
        root,
        max_entries: int = 256,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # key -> path, ordered oldest-use first.  Rebuilt from disk mtimes
        # so a restarted service keeps its hot artifacts.
        self._entries: "OrderedDict[str, Path]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self.total_bytes = 0
        for path in sorted(
            self.root.glob("*.bin"), key=lambda p: p.stat().st_mtime
        ):
            size = path.stat().st_size
            self._entries[path.stem] = path
            self._sizes[path.stem] = size
            self.total_bytes += size
        self.evictions = 0

    @staticmethod
    def key_for(kind: str, data: bytes) -> str:
        return f"{kind}-{hashlib.sha256(data).hexdigest()[:16]}"

    def _over_budget(self) -> bool:
        if len(self._entries) > self.max_entries:
            return True
        return self.max_bytes is not None and self.total_bytes > self.max_bytes

    def _evict_locked(self) -> None:
        # Always keep the most recent entry, even if it alone exceeds
        # max_bytes — evicting the blob just written would break callers.
        while len(self._entries) > 1 and self._over_budget():
            key, victim = self._entries.popitem(last=False)
            self.total_bytes -= self._sizes.pop(key, 0)
            victim.unlink(missing_ok=True)
            self.evictions += 1

    def put(self, kind: str, data: bytes) -> str:
        """Store ``data``; returns its content-addressed key (idempotent)."""
        key = self.key_for(kind, data)
        with self._lock:
            path = self._entries.get(key)
            if path is None:
                path = self.root / f"{key}.bin"
                path.write_bytes(data)
                self._sizes[key] = len(data)
                self.total_bytes += len(data)
            self._entries[key] = path
            self._entries.move_to_end(key)
            self._evict_locked()
        return key

    def get(self, key: str) -> bytes:
        """Fetch a blob, refreshing its LRU position; KeyError if absent."""
        with self._lock:
            path = self._entries.get(key)
            if path is None:
                raise KeyError(key)
            self._entries.move_to_end(key)
        return path.read_bytes()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "evictions": self.evictions,
            }

    # -- typed helpers (round-trip through repro.snark.serialize) ------------------

    def put_proof(self, proof) -> str:
        from repro.snark.serialize import serialize_proof

        return self.put("proof", serialize_proof(proof))

    def get_proof(self, key: str):
        from repro.snark.serialize import deserialize_proof

        return deserialize_proof(self.get(key))

    def put_verifying_key(self, vk) -> str:
        from repro.snark.serialize import serialize_verifying_key

        return self.put("vk", serialize_verifying_key(vk))

    def get_verifying_key(self, key: str):
        from repro.snark.serialize import deserialize_verifying_key

        return deserialize_verifying_key(self.get(key))

    def put_proving_key(self, pk) -> str:
        from repro.snark.serialize import serialize_proving_key

        return self.put("pk", serialize_proving_key(pk))

    def get_proving_key(self, key: str):
        from repro.snark.serialize import deserialize_proving_key

        return deserialize_proving_key(self.get(key))
