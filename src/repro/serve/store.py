"""On-disk artifact store: proofs and keys, content-addressed, LRU-bounded.

Serving generates a stream of artifacts — serialized proofs per job, one
verifying key per (model, profile), optionally proving keys.  The store
names each blob by its content hash (``<kind>-<sha256[:16]>.bin``) so
identical artifacts dedupe for free (e.g. the verifying key every batch
of the same key reports), and evicts least-recently-used entries beyond a
configurable bound so a long-running service cannot fill the disk.

Typed helpers round-trip through :mod:`repro.snark.serialize`, so
anything read back is a validated on-curve object, not raw bytes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional


class ArtifactStore:
    """Content-addressed blob store with an LRU entry bound."""

    def __init__(self, root, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # key -> path, ordered oldest-use first.  Rebuilt from disk mtimes
        # so a restarted service keeps its hot artifacts.
        self._entries: "OrderedDict[str, Path]" = OrderedDict()
        for path in sorted(
            self.root.glob("*.bin"), key=lambda p: p.stat().st_mtime
        ):
            self._entries[path.stem] = path
        self.evictions = 0

    @staticmethod
    def key_for(kind: str, data: bytes) -> str:
        return f"{kind}-{hashlib.sha256(data).hexdigest()[:16]}"

    def put(self, kind: str, data: bytes) -> str:
        """Store ``data``; returns its content-addressed key (idempotent)."""
        key = self.key_for(kind, data)
        with self._lock:
            path = self._entries.get(key)
            if path is None:
                path = self.root / f"{key}.bin"
                path.write_bytes(data)
            self._entries[key] = path
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                _, victim = self._entries.popitem(last=False)
                victim.unlink(missing_ok=True)
                self.evictions += 1
        return key

    def get(self, key: str) -> bytes:
        """Fetch a blob, refreshing its LRU position; KeyError if absent."""
        with self._lock:
            path = self._entries.get(key)
            if path is None:
                raise KeyError(key)
            self._entries.move_to_end(key)
        return path.read_bytes()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": sum(p.stat().st_size for p in self._entries.values()),
                "evictions": self.evictions,
            }

    # -- typed helpers (round-trip through repro.snark.serialize) ------------------

    def put_proof(self, proof) -> str:
        from repro.snark.serialize import serialize_proof

        return self.put("proof", serialize_proof(proof))

    def get_proof(self, key: str):
        from repro.snark.serialize import deserialize_proof

        return deserialize_proof(self.get(key))

    def put_verifying_key(self, vk) -> str:
        from repro.snark.serialize import serialize_verifying_key

        return self.put("vk", serialize_verifying_key(vk))

    def get_verifying_key(self, key: str):
        from repro.snark.serialize import deserialize_verifying_key

        return deserialize_verifying_key(self.get(key))

    def put_proving_key(self, pk) -> str:
        from repro.snark.serialize import serialize_proving_key

        return self.put("pk", serialize_proving_key(pk))

    def get_proving_key(self, key: str):
        from repro.snark.serialize import deserialize_proving_key

        return deserialize_proving_key(self.get(key))
