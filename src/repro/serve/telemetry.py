"""Live serving metrics, exported as a JSON-safe snapshot.

Tracks what an operator of the paper's imagined deployment ("a service
that the public can easily access" serving millions of users) would watch:

* queue depth (current / peak) and terminal-state counters;
* live gauges — queue depth, batcher backlog, in-flight jobs, and
  per-tenant in-flight/terminal counts — exported under ``gauges`` for
  the gateway's ``/metrics`` endpoint and the autoscaler's policy loop;
* the batch-size histogram — how well the micro-batcher is filling;
* per-phase latency matching Fig. 4's split: Generate, Circuit
  Computation, setup, per-image assign, and Security Computation (prove);
* warm-key-cache hit rate — how often a worker skipped compilation;
* throughput (completed jobs per second since start).

All mutation goes through one lock; :meth:`snapshot` returns plain dicts
and floats so callers can ``json.dumps`` it directly.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class Histogram:
    """Exact counting histogram over small integer values (batch sizes)."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def add(self, value: int) -> None:
        self._counts[value] = self._counts.get(value, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        total = sum(self._counts.values())
        weighted = sum(v * c for v, c in self._counts.items())
        return {
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
            "observations": total,
            "mean": weighted / total if total else 0.0,
            "max": max(self._counts) if self._counts else 0,
        }


class PhaseLatency:
    """Bounded reservoir of per-phase wall times (seconds)."""

    def __init__(self, keep: int = 512) -> None:
        self.keep = keep
        self._samples: Dict[str, List[float]] = {}

    def add(self, phase: str, seconds: float) -> None:
        bucket = self._samples.setdefault(phase, [])
        bucket.append(seconds)
        if len(bucket) > self.keep:
            del bucket[: len(bucket) - self.keep]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for phase, samples in sorted(self._samples.items()):
            ordered = sorted(samples)
            n = len(ordered)
            out[phase] = {
                "count": n,
                "mean": sum(ordered) / n,
                "p50": ordered[n // 2],
                "max": ordered[-1],
            }
        return out


class ServiceTelemetry:
    """All serving counters behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.retries = 0
        self.batch_runs = 0
        self.queue_depth = 0
        self.queue_peak = 0
        self.key_cache_hits = 0  # warm batches: worker reused its prover+CRS
        self.key_cache_misses = 0  # cold batches: paid compile + setup
        self.msm_table_builds = 0  # one-time fixed-base CRS table builds
        self.msm_table_uses = 0  # table-backed MSM queries served
        self.audit_rejected_batches = 0  # pre-prove audit gate rejections
        self.audit_rejected_jobs = 0
        self.aggregate_batches = 0  # per-layer (repro.aggregate) batches
        self.aggregate_proofs = 0  # layer proofs produced by those batches
        self.aggregate_layers: Dict[str, int] = {}  # layer index -> proofs
        self.batcher_pending = 0  # jobs parked in the micro-batcher
        self.inflight_jobs = 0  # jobs dispatched and not yet terminal
        self.batch_sizes = Histogram()
        self.phases = PhaseLatency()
        # tenant -> {"submitted", "completed", "failed", "timed_out"};
        # in-flight is derived (submitted - terminal) at snapshot time.
        self._tenants: Dict[str, Dict[str, int]] = {}

    def _tenant(self, tenant: str) -> Dict[str, int]:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = {"submitted": 0, "completed": 0, "failed": 0,
                      "timed_out": 0}
            self._tenants[tenant] = bucket
        return bucket

    def record_submit(self, n: int = 1, tenant: Optional[str] = None) -> None:
        with self._lock:
            self.submitted += n
            if tenant is not None:
                self._tenant(tenant)["submitted"] += n

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.queue_peak = max(self.queue_peak, depth)

    def record_gauges(
        self,
        batcher_pending: Optional[int] = None,
        inflight_jobs: Optional[int] = None,
    ) -> None:
        """Update the dispatcher-sampled live gauges."""
        with self._lock:
            if batcher_pending is not None:
                self.batcher_pending = batcher_pending
            if inflight_jobs is not None:
                self.inflight_jobs = inflight_jobs

    def record_batch(
        self,
        size: int,
        cold: bool,
        phases: Dict[str, float],
        msm_tables: Optional[Dict[str, int]] = None,
        aggregate_layer: Optional[int] = None,
    ) -> None:
        with self._lock:
            self.batch_runs += 1
            self.batch_sizes.add(size)
            if aggregate_layer is not None:
                self.aggregate_batches += 1
                self.aggregate_proofs += size
                key = str(aggregate_layer)
                self.aggregate_layers[key] = (
                    self.aggregate_layers.get(key, 0) + size
                )
            if cold:
                self.key_cache_misses += 1
            else:
                self.key_cache_hits += 1
            if msm_tables:
                self.msm_table_builds += 1 if msm_tables.get("built") else 0
                self.msm_table_uses += msm_tables.get("uses", 0)
            for phase, seconds in phases.items():
                self.phases.add(phase, seconds)

    def record_terminal(
        self, state_name: str, tenant: Optional[str] = None
    ) -> None:
        with self._lock:
            if state_name == "done":
                self.completed += 1
            elif state_name == "failed":
                self.failed += 1
            elif state_name == "timed_out":
                self.timed_out += 1
            if tenant is not None and state_name in (
                "done", "failed", "timed_out"
            ):
                bucket = self._tenant(tenant)
                key = "completed" if state_name == "done" else state_name
                bucket[key] += 1

    def record_retry(self, n: int = 1) -> None:
        with self._lock:
            self.retries += n

    def record_audit_rejection(self, jobs: int) -> None:
        with self._lock:
            self.audit_rejected_batches += 1
            self.audit_rejected_jobs += jobs

    def key_cache_hit_rate(self) -> float:
        total = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = max(time.monotonic() - self.started_at, 1e-9)
            tenants = {}
            for tenant, bucket in sorted(self._tenants.items()):
                terminal = (
                    bucket["completed"] + bucket["failed"]
                    + bucket["timed_out"]
                )
                tenants[tenant] = dict(
                    bucket, in_flight=bucket["submitted"] - terminal
                )
            from repro.core.metrics import peak_rss_bytes

            return {
                "uptime_seconds": elapsed,
                "gauges": {
                    "queue_depth": self.queue_depth,
                    "batcher_pending": self.batcher_pending,
                    "inflight_jobs": self.inflight_jobs,
                    "peak_rss_bytes": peak_rss_bytes(),
                    "tenants": tenants,
                },
                "jobs": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "timed_out": self.timed_out,
                    "retries": self.retries,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "peak": self.queue_peak,
                },
                "batches": {
                    "runs": self.batch_runs,
                    "sizes": self.batch_sizes.snapshot(),
                },
                "key_cache": {
                    "hits": self.key_cache_hits,
                    "misses": self.key_cache_misses,
                    "hit_rate": self.key_cache_hit_rate(),
                },
                "msm_tables": {
                    "builds": self.msm_table_builds,
                    "uses": self.msm_table_uses,
                },
                "audit": {
                    "rejected_batches": self.audit_rejected_batches,
                    "rejected_jobs": self.audit_rejected_jobs,
                },
                "aggregate": {
                    "batches": self.aggregate_batches,
                    "layer_proofs": self.aggregate_proofs,
                    "per_layer": dict(
                        sorted(self.aggregate_layers.items())
                    ),
                },
                "phase_latency_seconds": self.phases.snapshot(),
                "throughput_jobs_per_second": self.completed / elapsed,
            }
