"""The :class:`ProvingService` facade: submit / status / result / stats.

Lifecycle of a request::

    submit() ──> JobQueue ──dispatcher──> MicroBatcher ──flush──> WorkerPool
                                                                     │
    result() <── finalize (DONE/FAILED) <── batch callback <─────────┘

A single dispatcher thread owns all scheduling decisions: it expires
overdue jobs, drains the queue into the micro-batcher, flushes ready
batches to the process pool, and samples queue depth for telemetry.
Batch completions arrive on the executor's callback thread and either
finalize jobs (storing artifacts) or requeue them with backoff after a
worker failure.  ``shutdown(drain=True)`` stops accepting work and blocks
until every in-flight job reaches a terminal state.
"""

from __future__ import annotations

import itertools
import tempfile
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.jobs import JobQueue, JobResult, JobState, ProofJob
from repro.serve.store import ArtifactStore
from repro.serve.telemetry import ServiceTelemetry
from repro.serve.workers import WorkerPool


@dataclass
class ServiceConfig:
    """Tunables for one :class:`ProvingService` instance."""

    max_workers: int = 2
    max_batch: int = 4  # micro-batcher size trigger
    max_wait: float = 0.05  # micro-batcher latency trigger (seconds)
    poll_interval: float = 0.01  # dispatcher wake period
    default_timeout: Optional[float] = None  # per-job deadline, None = none
    max_retries: int = 2  # extra attempts after a worker failure
    backoff_base: float = 0.05  # retry backoff: base * 2^(attempt-1)
    backend: str = "simulated"  # "simulated" | "bn254"
    msm_parallelism: int = 1  # chunked-MSM processes per prover (bn254 G1)
    # Prover-engine workers per proof (CSR witness rows + QAP NTT chains);
    # None inherits msm_parallelism so one --parallelism knob drives both.
    prove_parallelism: Optional[int] = None
    store_dir: Optional[str] = None  # None = fresh temp directory
    store_entries: int = 256  # artifact-store LRU bound
    prewarm: bool = True  # spawn all workers at startup
    audit: bool = False  # pre-prove soundness audit of each cold circuit
    gadget_mode: Optional[str] = None  # None = worker default; "strict" w/ audit
    relu_mode: Optional[str] = None  # None = worker default; "lookup" | "bits"
    # Derive each proof's (r, s) blinding from the CRS seed + image digest
    # instead of fresh OS randomness.  Proofs become a pure function of the
    # job, so any two nodes proving the same job emit byte-identical bytes
    # — the cluster's cross-node equivalence checks depend on this.  Leave
    # False for deployments that want fresh per-proof blinding.
    deterministic: bool = False


class JobFailedError(RuntimeError):
    """Raised by :meth:`ProvingService.result` for FAILED/TIMED_OUT jobs."""

    def __init__(self, job: ProofJob) -> None:
        super().__init__(
            f"{job.job_id} ended {job.state.value}: {job.error or 'unknown'}"
        )
        self.job = job


class ProvingService:
    """Long-running batched proving service over the ZENO pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        self.config = replace(config or ServiceConfig(), **overrides)
        cfg = self.config
        self._queue = JobQueue()
        self._batcher = MicroBatcher(cfg.max_batch, cfg.max_wait)
        self._pool = WorkerPool(cfg.max_workers)
        self.telemetry = ServiceTelemetry()
        store_dir = cfg.store_dir or tempfile.mkdtemp(prefix="repro-serve-")
        self.store = ArtifactStore(store_dir, max_entries=cfg.store_entries)

        self._jobs: Dict[str, ProofJob] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)  # job finalized
        self._wake = threading.Event()  # dispatcher has new work
        self._inflight = 0
        self._stop = False
        self._drain = False
        self._input_shapes: Dict[Tuple[str, str, int], Tuple[int, ...]] = {}
        self._terminal_callbacks: List[Callable[[ProofJob], None]] = []

        if cfg.prewarm:
            self.worker_pids = self._pool.prewarm()
        else:
            self.worker_pids = []
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        *,
        image_seed: Optional[int] = None,
        scale: str = "mini",
        seed: int = 0,
        privacy: str = "one-private",
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        tenant: str = "default",
        extra: Optional[dict] = None,
    ) -> str:
        """Enqueue one proving job; returns its job id immediately."""
        with self._lock:
            if self._stop or self._drain:
                raise RuntimeError("service is shutting down")
        if image is None:
            if image_seed is None:
                raise ValueError("provide an image or an image_seed")
            image = self._synthesize(model, scale, seed, image_seed)
        cfg = self.config
        job = ProofJob(
            job_id=f"job-{next(self._job_ids):06d}",
            model=model,
            image=image,
            scale=scale,
            seed=seed,
            privacy=privacy,
            priority=priority,
            timeout=cfg.default_timeout if timeout is None else timeout,
            max_retries=cfg.max_retries if max_retries is None else max_retries,
            tenant=tenant,
            extra=extra or {},
        )
        job.submitted_at = time.monotonic()
        with self._lock:
            self._jobs[job.job_id] = job
        self._queue.push(job)
        self.telemetry.record_submit(tenant=tenant)
        # Sample depth at submit time too: a fast dispatcher can otherwise
        # drain the queue between its own (poll-interval) samples and
        # report a zero peak for a workload that really queued.
        self.telemetry.record_queue_depth(max(1, self._queue.depth()))
        self._wake.set()
        return job.job_id

    def _synthesize(
        self, model: str, scale: str, seed: int, image_seed: int
    ) -> np.ndarray:
        from repro.nn.data import synthetic_images
        from repro.nn.models import build_model

        key = (model, scale, seed)
        shape = self._input_shapes.get(key)
        if shape is None:
            shape = build_model(model, scale=scale, seed=seed).input_shape
            self._input_shapes[key] = shape
        return synthetic_images(shape, n=1, seed=image_seed)[0]

    # -- inspection ------------------------------------------------------------------

    def add_terminal_callback(
        self, callback: Callable[[ProofJob], None]
    ) -> None:
        """Invoke ``callback(job)`` after every job reaches a terminal
        state (called on the finalizing thread; must not block long)."""
        with self._lock:
            self._terminal_callbacks.append(callback)

    def job(self, job_id: str) -> ProofJob:
        with self._lock:
            return self._jobs[job_id]

    def status(self, job_id: str) -> JobState:
        return self.job(job_id).state

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until ``job_id`` is terminal; return its proof result.

        Raises :class:`JobFailedError` if the job failed or timed out, and
        ``TimeoutError`` if it is still live after ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            job = self._jobs[job_id]
            while not job.state.terminal:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"{job_id} still {job.state.value}")
                self._terminal.wait(timeout=remaining)
            if job.state is not JobState.DONE:
                raise JobFailedError(job)
            assert job.result is not None
            return job.result

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while any(not j.state.terminal for j in self._jobs.values()):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._terminal.wait(timeout=remaining)
            return True

    def stats(self) -> dict:
        """JSON-safe snapshot of telemetry, store, and pool state."""
        snap = self.telemetry.snapshot()
        snap["store"] = self.store.stats()
        snap["workers"] = {
            "max": self.config.max_workers,
            "pool_generation": self._pool.generation,
            "prewarmed_pids": self.worker_pids,
        }
        return snap

    # -- shutdown --------------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service; with ``drain`` wait for in-flight jobs first."""
        with self._lock:
            if drain:
                self._drain = True
            else:
                self._stop = True
        self._wake.set()
        self._dispatcher.join(timeout=timeout)
        with self._lock:
            self._stop = True
        self._wake.set()
        self._pool.shutdown(wait=drain)

    def __enter__(self) -> "ProvingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- dispatcher ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self._wake.clear()
            now = time.monotonic()
            for job in self._queue.expire(now):
                self._finalize(
                    job, JobState.TIMED_OUT,
                    error="deadline exceeded before dispatch",
                )
            while True:
                job = self._queue.pop(now)
                if job is None:
                    break
                if job.expired(now):
                    self._finalize(
                        job, JobState.TIMED_OUT,
                        error="deadline exceeded before dispatch",
                    )
                    continue
                self._batcher.add(job, now)
            with self._lock:
                force = self._drain or self._stop
            for batch in self._batcher.take_ready(now, force=force):
                self._launch(batch)
            self.telemetry.record_queue_depth(
                self._queue.depth() + self._batcher.pending()
            )
            with self._lock:
                inflight = self._inflight
            self.telemetry.record_gauges(
                batcher_pending=self._batcher.pending(),
                inflight_jobs=inflight,
            )
            with self._lock:
                if self._stop:
                    return
                idle = (
                    self._queue.depth() == 0
                    and self._batcher.pending() == 0
                    and self._inflight == 0
                )
                if self._drain and idle:
                    return
            self._wake.wait(timeout=self.config.poll_interval)

    def _launch(self, batch: Batch) -> None:
        now = time.monotonic()
        spec = {
            "model": batch.jobs[0].model,
            "scale": batch.jobs[0].scale,
            "seed": batch.jobs[0].seed,
            "privacy": batch.jobs[0].privacy,
            "backend": self.config.backend,
            "parallelism": (
                self.config.prove_parallelism
                if self.config.prove_parallelism is not None
                else self.config.msm_parallelism
            ),
            "audit": self.config.audit,
            "gadgets": self.config.gadget_mode,
            "relu_mode": self.config.relu_mode,
            "deterministic": self.config.deterministic,
        }
        # Per-layer aggregate fan-out: the whole batch shares one layer
        # (batch_key includes it), so the first job's dict speaks for all.
        aggregate = batch.jobs[0].extra.get("aggregate")
        if aggregate:
            spec["aggregate"] = aggregate
        payloads = []
        for job in batch.jobs:
            job.state = JobState.RUNNING
            job.started_at = now
            job.attempts += 1
            payload = {"job_id": job.job_id, "image": job.image}
            if "crash_token" in job.extra:
                payload["crash_token"] = job.extra["crash_token"]
            payloads.append(payload)
        with self._lock:
            self._inflight += 1
        future = self._pool.submit_batch(spec, payloads)
        future.add_done_callback(
            lambda fut, batch=batch: self._on_batch_done(batch, fut)
        )

    # -- completion (runs on the executor callback thread) ---------------------------

    def _on_batch_done(self, batch: Batch, future) -> None:
        try:
            try:
                out = future.result()
            except BrokenProcessPool as exc:
                self._pool.reset()
                self._requeue_or_fail(batch, f"worker died: {exc!r}")
            except Exception as exc:  # pickling errors, worker exceptions...
                self._requeue_or_fail(batch, f"batch failed: {exc!r}")
            else:
                if out.get("audit_rejected"):
                    self._audit_reject(batch, out)
                else:
                    self._complete(batch, out)
        finally:
            with self._lock:
                self._inflight -= 1
            self._wake.set()

    def _complete(self, batch: Batch, out: dict) -> None:
        self.telemetry.record_batch(
            len(batch), out["cold"], out["phases"], out.get("msm_tables"),
            aggregate_layer=out.get("aggregate_layer"),
        )
        vk_key = self.store.put("vk", out["vk"])
        by_id = {r["job_id"]: r for r in out["results"]}
        for job in batch.jobs:
            res = by_id[job.job_id]
            proof_key = self.store.put("proof", res["proof"])
            job.result = JobResult(
                proof=res["proof"],
                public_inputs=res["public_inputs"],
                logits=res["logits"],
                verified=res["verified"],
                worker_pid=out["pid"],
                batch_id=batch.batch_id,
                batch_size=len(batch),
                store_keys={"proof": proof_key, "vk": vk_key},
            )
            if res["verified"]:
                self._finalize(job, JobState.DONE)
            else:
                self._finalize(
                    job, JobState.FAILED, error="proof failed verification"
                )

    def _audit_reject(self, batch: Batch, out: dict) -> None:
        """Fail every job in an audit-rejected batch — no retries.

        The rejection is a property of the compiled circuit, not of the
        worker or the witness, so retrying would only re-pay compilation
        to hit the same verdict.
        """
        rejected = out["audit_rejected"]
        self.telemetry.record_audit_rejection(len(batch))
        for phase, seconds in out.get("phases", {}).items():
            self.telemetry.phases.add(phase, seconds)
        error = (
            f"circuit audit rejected batch: {rejected['errors']} error(s); "
            f"first: {rejected['first']}"
        )
        for job in batch.jobs:
            job.result = None
            self._finalize(job, JobState.FAILED, error=error)

    def _requeue_or_fail(self, batch: Batch, error: str) -> None:
        now = time.monotonic()
        for job in batch.jobs:
            if job.expired(now):
                self._finalize(
                    job, JobState.TIMED_OUT, error="deadline exceeded"
                )
            elif job.attempts > job.max_retries:
                self._finalize(job, JobState.FAILED, error=error)
            else:
                self.telemetry.record_retry()
                job.state = JobState.QUEUED
                self._queue.push(
                    job, delay=job.next_backoff(self.config.backoff_base)
                )

    def _finalize(
        self, job: ProofJob, state: JobState, error: Optional[str] = None
    ) -> None:
        with self._terminal:
            job.state = state
            job.error = error
            job.finished_at = time.monotonic()
            self._terminal.notify_all()
        self.telemetry.record_terminal(state.value, tenant=job.tenant)
        with self._lock:
            callbacks = list(self._terminal_callbacks)
        for callback in callbacks:
            try:
                callback(job)
            except Exception:  # observers must never break finalization
                pass
