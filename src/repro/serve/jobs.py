"""Proof jobs and the priority job queue.

A :class:`ProofJob` is one request: "prove this model's inference on this
image".  Jobs carry a priority (higher pops first), an optional deadline,
and a retry budget consumed when a worker dies mid-batch.  The queue is a
thread-safe priority heap with a *delayed* lane for retry-with-backoff:
a requeued job only becomes poppable once its backoff expires.

State machine::

    QUEUED ──dispatch──> RUNNING ──ok──────> DONE
      │  ▲                  │
      │  └──retry+backoff───┤ (worker died, attempts left)
      │                     └──no budget──> FAILED
      └──deadline passed──> TIMED_OUT

All transitions are driven by :class:`repro.serve.service.ProvingService`;
this module only provides the data structures.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed_out"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.TIMED_OUT)


@dataclass
class JobResult:
    """What a completed job hands back to the submitter."""

    proof: bytes  # canonical serialized Groth16 proof
    public_inputs: List[int]  # public field elements the proof binds
    logits: List[int]  # public inputs decoded back to signed NN space
    verified: bool
    worker_pid: int
    batch_id: int
    batch_size: int
    store_keys: Dict[str, str] = field(default_factory=dict)  # proof / vk


@dataclass
class ProofJob:
    """One proving request; batchable by :meth:`batch_key`."""

    job_id: str
    model: str  # Table-4 abbreviation, e.g. "SHAL"
    image: np.ndarray
    scale: str = "mini"
    seed: int = 0  # weight seed (fixes the network)
    privacy: str = "one-private"  # "one-private" | "both-private"
    priority: int = 0  # higher pops first
    timeout: Optional[float] = None  # seconds from submission to deadline
    max_retries: int = 2
    tenant: str = "default"  # fair-share / telemetry attribution
    extra: Dict[str, Any] = field(default_factory=dict)  # e.g. fault injection

    # -- mutable bookkeeping (owned by the service) --
    state: JobState = JobState.QUEUED
    attempts: int = 0
    submitted_at: float = 0.0  # monotonic
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[JobResult] = None
    error: Optional[str] = None

    def batch_key(self) -> Tuple:
        """Jobs with equal keys share one constraint system / proving key.

        Per-layer aggregate jobs (``extra["aggregate"]``) additionally key
        on the split parameters AND the layer index: two different layers
        are two different circuits, so the micro-batcher must never merge
        them into one batch even though they share a model.
        """
        key: Tuple = (self.model, self.scale, self.seed, self.privacy)
        agg = self.extra.get("aggregate")
        if agg:
            key += (
                "aggregate",
                agg.get("mode", "public"),
                agg.get("num_segments"),
                agg.get("crs_seed"),
                agg.get("layer"),
            )
        return key

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.submitted_at + self.timeout

    def expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) > deadline

    def next_backoff(self, base: float = 0.05, cap: float = 2.0) -> float:
        """Exponential backoff for the attempt about to be queued."""
        return min(cap, base * (2 ** max(self.attempts - 1, 0)))


class JobQueue:
    """Thread-safe priority queue with deadlines and a delayed retry lane.

    Higher ``priority`` pops first; ties pop in submission order.  Jobs
    pushed with ``delay > 0`` (retry backoff) stay in the delayed lane and
    only become poppable after the delay elapses.

    An optional ``observer`` (settable after construction) is invoked as
    ``observer(job, delay)`` after every push — first enqueue and retry
    requeues alike — outside the queue lock.  The gateway's crash journal
    hooks here to record every queue transition.
    """

    def __init__(
        self,
        observer: Optional[Callable[["ProofJob", float], None]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._ready: List[Tuple[int, int, ProofJob]] = []  # (-prio, seq, job)
        self._delayed: List[Tuple[float, int, ProofJob]] = []  # (not_before, ...)
        self.observer = observer

    def push(self, job: ProofJob, delay: float = 0.0) -> None:
        now = time.monotonic()
        with self._lock:
            seq = next(self._seq)
            if delay > 0:
                heapq.heappush(self._delayed, (now + delay, seq, job))
            else:
                heapq.heappush(self._ready, (-job.priority, seq, job))
        if self.observer is not None:
            self.observer(job, delay)

    def _promote(self, now: float) -> None:
        """Move delayed jobs whose backoff has elapsed into the ready heap."""
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, job = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (-job.priority, seq, job))

    def pop(self, now: Optional[float] = None) -> Optional[ProofJob]:
        """Highest-priority ready job; None if nothing is ready.

        An expired job may still be returned — callers must check
        :meth:`ProofJob.expired` (the dispatcher finalizes such jobs as
        TIMED_OUT; dropping them here would leave them unobservable).
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            self._promote(now)
            if not self._ready:
                return None
            return heapq.heappop(self._ready)[2]

    def expire(self, now: Optional[float] = None) -> List[ProofJob]:
        """Remove and return every queued job whose deadline has passed."""
        now = time.monotonic() if now is None else now
        overdue: List[ProofJob] = []
        with self._lock:
            self._promote(now)
            for heap in (self._ready, self._delayed):
                keep = [item for item in heap if not item[2].expired(now)]
                if len(keep) != len(heap):
                    overdue.extend(
                        item[2] for item in heap if item[2].expired(now)
                    )
                    heap[:] = keep
                    heapq.heapify(heap)
        return overdue

    def __len__(self) -> int:
        with self._lock:
            return len(self._ready) + len(self._delayed)

    def depth(self) -> int:
        return len(self)
