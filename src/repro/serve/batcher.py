"""Adaptive micro-batching: group jobs that share a constraint system.

ZENO §6.1 observes that "the same computation applies to each image such
that the constraint system can be shared" — but sharing only pays off if
the serving layer actually *forms* batches.  The micro-batcher holds
pending jobs per :meth:`ProofJob.batch_key` and flushes a group when it
reaches ``max_batch`` jobs (size trigger) or its oldest job has waited
``max_wait`` seconds (latency trigger).  Under load batches fill; when
idle a lone job is delayed by at most ``max_wait``.

One flushed :class:`Batch` becomes one warm ``BatchProver`` run in a
worker: Generate + Circuit Computation are paid once per batch (and, with
the per-worker key cache, once per worker lifetime), not once per job.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.jobs import ProofJob


@dataclass
class Batch:
    """A flushed group of jobs sharing one (model, profile) key."""

    batch_id: int
    key: Tuple
    jobs: List[ProofJob]
    created_at: float  # monotonic time the group was opened

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass
class _PendingGroup:
    jobs: List[ProofJob] = field(default_factory=list)
    opened_at: float = 0.0


class MicroBatcher:
    """Groups pending jobs by batch key; flushes on size or age.

    An optional ``observer`` (settable after construction) is invoked as
    ``observer(batch)`` for every batch :meth:`take_ready` flushes —
    the moment its jobs leave the batcher for a worker.  The gateway's
    crash journal hooks here to record dispatch transitions.
    """

    def __init__(
        self,
        max_batch: int = 4,
        max_wait: float = 0.05,
        observer: Optional[Callable[[Batch], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.observer = observer
        self._groups: Dict[Tuple, _PendingGroup] = {}
        self._ids = itertools.count(1)

    def add(self, job: ProofJob, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        group = self._groups.get(job.batch_key())
        if group is None:
            group = _PendingGroup(opened_at=now)
            self._groups[job.batch_key()] = group
        group.jobs.append(job)

    def pending(self) -> int:
        return sum(len(g.jobs) for g in self._groups.values())

    def take_ready(
        self, now: Optional[float] = None, force: bool = False
    ) -> List[Batch]:
        """Flush every group that is full, stale, or (``force``) non-empty.

        A group larger than ``max_batch`` (possible after a multi-job
        retry) is split into ``max_batch``-sized batches.
        """
        now = time.monotonic() if now is None else now
        flushed: List[Batch] = []
        for key in list(self._groups):
            group = self._groups[key]
            full = len(group.jobs) >= self.max_batch
            stale = now - group.opened_at >= self.max_wait
            if not (full or stale or force):
                continue
            del self._groups[key]
            jobs = group.jobs
            for i in range(0, len(jobs), self.max_batch):
                flushed.append(
                    Batch(
                        batch_id=next(self._ids),
                        key=key,
                        jobs=jobs[i : i + self.max_batch],
                        created_at=group.opened_at,
                    )
                )
        if self.observer is not None:
            for batch in flushed:
                self.observer(batch)
        return flushed

    def next_flush_at(self) -> Optional[float]:
        """Monotonic time the oldest pending group becomes stale, if any."""
        if not self._groups:
            return None
        return min(g.opened_at for g in self._groups.values()) + self.max_wait
