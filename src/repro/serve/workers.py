"""Process worker pool with warm per-worker proving-key caches.

Each worker process keeps a module-level cache mapping a batch key
(model, scale, seed, privacy) to a warm :class:`BatchProver` plus its
Groth16 :class:`SetupResult`.  The first batch for a key in a given worker
pays Generate + Circuit Computation + trusted setup (the cold path);
every later batch only re-assigns witnesses and proves — the paper's §6.1
sharing, amortized across the worker's lifetime instead of a single
benchmark loop.

Fault tolerance: a worker dying mid-batch breaks the whole
``ProcessPoolExecutor`` (pending futures raise ``BrokenProcessPool``).
:class:`WorkerPool.reset` rebuilds the executor; the service requeues the
affected jobs with backoff.  Fault-injection hooks (``crash_token`` in a
job's payload) let tests kill a worker deterministically on the first
attempt only.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
import sys
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metrics import PhaseTimer
from repro.core.reuse.batch import BatchProver
from repro.core.lang.types import Privacy

# -- per-process warm state (lives in the worker, not the service) -----------------

_WARM: Dict[Tuple, "_WarmEntry"] = {}


class _WarmEntry:
    def __init__(
        self, prover: BatchProver, setup, vk_bytes: bytes, tables=None
    ) -> None:
        self.prover = prover
        self.setup = setup
        self.vk_bytes = vk_bytes
        # Fixed-base CRS tables built once per key; every proof in every
        # later batch for this key queries them instead of raw MSMs.
        self.tables = tables
        # Audit-gate latch: a warm entry only skips the pre-prove audit
        # after it has actually passed it once under some audited spec.
        self.audited = False


_PRIVACY = {
    "one-private": (Privacy.PRIVATE, Privacy.PUBLIC),
    "both-private": (Privacy.PRIVATE, Privacy.PRIVATE),
}

# Per-layer aggregate proving: one warm split (compile + split_model)
# shared by every layer job of the same model spec in this worker, with
# per-layer trusted setups cached lazily — layer 3 jobs don't pay for
# layer 7's setup.
_WARM_AGG: Dict[Tuple, "_WarmAggEntry"] = {}


class _WarmAggEntry:
    def __init__(self, prover: BatchProver, split) -> None:
        self.prover = prover
        self.split = split
        self.setups: Dict[int, Any] = {}  # layer index -> SetupResult
        self.vk_bytes: Dict[int, bytes] = {}

    def layer_setup(self, layer: int, backend, crs_seed: int):
        from repro.aggregate.prove import crs_rng
        from repro.snark import groth16
        from repro.snark.serialize import serialize_verifying_key

        setup = self.setups.get(layer)
        if setup is None:
            setup = groth16.setup(
                self.split.instances[layer].cs,
                backend,
                crs_rng(crs_seed, layer),
            )
            self.setups[layer] = setup
            self.vk_bytes[layer] = serialize_verifying_key(
                setup.verifying_key
            )
        return setup


def _backend(name: str):
    from repro.ec.backend import RealBN254Backend, SimulatedBackend

    return RealBN254Backend() if name == "bn254" else SimulatedBackend()


def _warm_up(key: Tuple, spec: Dict[str, Any], base_image) -> _WarmEntry:
    from repro.core.circuit.compute import ComputeOptions
    from repro.nn.models import build_model
    from repro.snark.serialize import serialize_verifying_key

    image_privacy, weights_privacy = _PRIVACY[spec["privacy"]]
    model = build_model(spec["model"], scale=spec["scale"], seed=spec["seed"])
    options = None
    if spec.get("gadgets") or spec.get("relu_mode"):
        options = ComputeOptions(
            gadget_mode=spec.get("gadgets") or "lean",
            relu_mode=spec.get("relu_mode") or "bits",
        )
    prover = BatchProver(
        model, base_image, image_privacy=image_privacy,
        weights_privacy=weights_privacy, options=options,
    )
    setup = prover.warm_setup(
        _backend(spec.get("backend", "simulated")),
        random.Random(spec.get("crs_seed", 0x5E70)),
    )
    entry = _WarmEntry(
        prover,
        setup,
        serialize_verifying_key(setup.verifying_key),
        tables=prover.tables,
    )
    _WARM[key] = entry
    return entry


def _proof_rng(spec: Dict[str, Any], image) -> Optional[random.Random]:
    """Per-proof randomness source; None = fresh OS-seeded blinding.

    With ``spec["deterministic"]`` the (r, s) blinding factors are derived
    from the CRS seed and the image digest, making the proof bytes a pure
    function of the job — the property the cluster's cross-node
    byte-identity checks (and its rerouted retries) rely on.
    """
    if not spec.get("deterministic"):
        return None
    digest = hashlib.sha256(image.tobytes()).digest()
    return random.Random(
        int.from_bytes(digest, "big") ^ spec.get("crs_seed", 0x5E70)
    )


def prove_batch(
    spec: Dict[str, Any], payloads: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Prove every job in one batch inside a worker process.

    ``spec`` identifies the shared constraint system; ``payloads`` carry
    ``{"job_id", "image"}`` (plus optional ``crash_token`` for fault
    injection: if that file exists, the worker deletes it and dies — so a
    retry of the same job finds the token gone and completes).
    """
    from repro.snark import groth16
    from repro.snark.serialize import serialize_proof

    if spec.get("aggregate"):
        return _prove_layer_batch(spec, payloads)

    backend = _backend(spec.get("backend", "simulated"))
    key = (
        spec["model"], spec["scale"], spec["seed"], spec["privacy"],
        spec.get("gadgets"), spec.get("relu_mode"),
    )
    phases: Dict[str, float] = {}
    cold = key not in _WARM
    if cold:
        with PhaseTimer("warmup", sink=phases):
            entry = _warm_up(key, spec, payloads[0]["image"])
        phases["generate"] = entry.prover.stats.generate_time
        phases["circuit"] = entry.prover.stats.circuit_time
        phases["setup"] = entry.prover.stats.setup_time
    else:
        entry = _WARM[key]
    if spec.get("audit") and not entry.audited:
        # Pre-prove soundness gate: lint + determinism over the shared
        # constraint system, once per key.  Keyed on the entry, not the
        # cold path: a forked worker can inherit a warm entry that was
        # built under a spec without the gate, and an audited spec must
        # not trust it unaudited.  On rejection the warm entry is evicted
        # so a resubmitted key re-audits (and fails again) instead of
        # silently proving on the tainted circuit.
        from repro.analysis import assume_from_recipe, audit_system

        with PhaseTimer("audit", sink=phases):
            audit = audit_system(
                entry.prover.cs,
                assume=assume_from_recipe(entry.prover.result.recipe),
            )
        if not audit.ok:
            del _WARM[key]
            return {
                "pid": os.getpid(),
                "cold": cold,
                "phases": phases,
                "audit_rejected": {
                    "errors": len(audit.errors),
                    "first": audit.errors[0].message,
                    "report": audit.to_json(),
                },
            }
        entry.audited = True

    tables_uses_before = entry.tables.uses() if entry.tables else 0
    results = []
    for payload in payloads:
        token = payload.get("crash_token")
        if token and os.path.exists(token):
            os.remove(token)
            os._exit(1)  # simulate a worker crash mid-batch
        with PhaseTimer("assign", sink=phases):
            entry.prover.assign_image(payload["image"])
        with PhaseTimer("security", sink=phases):
            # phase_sink splits "security" into witness / quotient / msm in
            # the same phases dict the telemetry aggregates.
            proof = groth16.prove(
                entry.setup.proving_key,
                entry.prover.cs,
                backend,
                rng=_proof_rng(spec, payload["image"]),
                tables=entry.tables,
                parallelism=spec.get("parallelism"),
                phase_sink=phases,
            )
        publics = entry.prover.cs.public_values()
        verified = groth16.verify(
            entry.setup.verifying_key, publics, proof, backend
        )
        p = entry.prover.cs.field.modulus
        half = p // 2
        results.append(
            {
                "job_id": payload["job_id"],
                "proof": serialize_proof(proof),
                "public_inputs": [int(v) for v in publics],
                "logits": [v - p if v > half else v for v in map(int, publics)],
                "verified": bool(verified),
            }
        )
    from repro.field.backend import backend_name

    return {
        "pid": os.getpid(),
        "cold": cold,
        "phases": phases,
        "vk": entry.vk_bytes,
        # Which field-arithmetic backend this worker proved with
        # (scalar / numpy / gmpy2) — proofs are byte-identical across
        # backends, so this is telemetry for capacity planning, not
        # correctness.
        "field_backend": backend_name(),
        # Fixed-base table telemetry: `built` marks the one-time table
        # construction, `uses` counts table queries served by THIS batch —
        # nonzero on a warm batch proves the CRS tables were reused.
        "msm_tables": {
            "built": bool(cold and entry.tables is not None),
            "uses": (
                (entry.tables.uses() - tables_uses_before)
                if entry.tables
                else 0
            ),
        },
        "results": results,
    }


def _prove_layer_batch(
    spec: Dict[str, Any], payloads: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Prove one *layer instance* of a split model for every job in a batch.

    ``spec["aggregate"]`` carries ``{mode, num_segments, crs_seed, layer}``;
    the batch key guarantees every payload targets the same layer.  The
    compile + :func:`repro.aggregate.split_model` cost is shared across
    ALL layers of the spec via ``_WARM_AGG`` (the split's structure does
    not depend on the image), and each layer's trusted setup is cached
    the first time that layer lands on this worker.

    The per-layer CRS comes from :func:`repro.aggregate.prove.crs_rng` and
    — when ``spec["deterministic"]`` — the blinding from
    :func:`repro.aggregate.prove.blinding_rng`, both pure functions of the
    job, so local pools and remote cluster nodes emit byte-identical
    layer proofs for the same inference.
    """
    from repro.aggregate import split_model
    from repro.aggregate.prove import DEFAULT_CRS_SEED, blinding_rng
    from repro.snark import groth16
    from repro.snark.serialize import serialize_proof

    agg = spec["aggregate"]
    layer = int(agg["layer"])
    mode = agg.get("mode", "public")
    num_segments = agg.get("num_segments")
    crs_seed = int(agg.get("crs_seed", DEFAULT_CRS_SEED))
    backend = _backend(spec.get("backend", "simulated"))
    key = (
        spec["model"], spec["scale"], spec["seed"], spec["privacy"],
        spec.get("gadgets"), spec.get("relu_mode"), mode, num_segments, crs_seed,
    )
    phases: Dict[str, float] = {}
    cold = key not in _WARM_AGG
    if cold:
        from repro.core.circuit.compute import ComputeOptions
        from repro.nn.models import build_model

        with PhaseTimer("warmup", sink=phases):
            image_privacy, weights_privacy = _PRIVACY[spec["privacy"]]
            model = build_model(
                spec["model"], scale=spec["scale"], seed=spec["seed"]
            )
            options = None
            if spec.get("gadgets") or spec.get("relu_mode"):
                options = ComputeOptions(
                    gadget_mode=spec.get("gadgets") or "lean",
                    relu_mode=spec.get("relu_mode") or "bits",
                )
            prover = BatchProver(
                model, payloads[0]["image"], image_privacy=image_privacy,
                weights_privacy=weights_privacy, options=options,
            )
            split = split_model(
                prover.cs, mode=mode, num_segments=num_segments
            )
            entry = _WarmAggEntry(prover, split)
            _WARM_AGG[key] = entry
        phases["generate"] = prover.stats.generate_time
        phases["circuit"] = prover.stats.circuit_time
    else:
        entry = _WARM_AGG[key]
    if layer < 0 or layer >= entry.split.num_instances:
        raise ValueError(
            f"layer {layer} out of range: split has "
            f"{entry.split.num_instances} instances"
        )
    with PhaseTimer("setup", sink=phases):
        setup = entry.layer_setup(layer, backend, crs_seed)
    inst = entry.split.instances[layer]

    results = []
    for payload in payloads:
        token = payload.get("crash_token")
        if token and os.path.exists(token):
            os.remove(token)
            os._exit(1)  # same fault-injection contract as prove_batch
        with PhaseTimer("assign", sink=phases):
            entry.prover.assign_image(payload["image"])
            inst.refresh_from(entry.prover.cs)
        publics = inst.cs.public_values()
        rng = (
            blinding_rng(crs_seed, layer, publics)
            if spec.get("deterministic")
            else None
        )
        with PhaseTimer("security", sink=phases):
            proof = groth16.prove(
                setup.proving_key,
                inst.cs,
                backend,
                rng=rng,
                parallelism=spec.get("parallelism"),
                phase_sink=phases,
            )
        verified = groth16.verify(
            setup.verifying_key, publics, proof, backend
        )
        p = inst.cs.field.modulus
        half = p // 2
        results.append(
            {
                "job_id": payload["job_id"],
                "proof": serialize_proof(proof),
                "public_inputs": [int(v) for v in publics],
                "logits": [v - p if v > half else v for v in map(int, publics)],
                "verified": bool(verified),
            }
        )
    from repro.field.backend import backend_name

    return {
        "pid": os.getpid(),
        "cold": cold,
        "phases": phases,
        "vk": entry.vk_bytes[layer],
        "field_backend": backend_name(),
        "msm_tables": {"built": False, "uses": 0},
        "aggregate_layer": layer,
        "results": results,
    }


# -- the pool ----------------------------------------------------------------------


class WorkerPool:
    """A ``ProcessPoolExecutor`` that can be rebuilt after a worker death."""

    def __init__(self, max_workers: int = 2) -> None:
        self.max_workers = max_workers
        # fork keeps the warm-up cheap (no re-import); fall back to the
        # platform default where fork is unavailable (e.g. Windows/macOS).
        if sys.platform.startswith("linux"):
            self._ctx = multiprocessing.get_context("fork")
        else:
            self._ctx = multiprocessing.get_context()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._generation = 0

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._ctx
            )
        return self._executor

    @property
    def generation(self) -> int:
        """Incremented every time the pool is rebuilt after a failure."""
        return self._generation

    def prewarm(self) -> List[int]:
        """Spawn every worker process now; returns the responding pids.

        ``ProcessPoolExecutor`` spawns at most one process per submit, so
        without this a light workload can be served entirely by worker #1
        while the rest never start.
        """
        executor = self._ensure()
        futures = [executor.submit(os.getpid) for _ in range(self.max_workers)]
        return sorted({f.result() for f in futures})

    def submit_batch(
        self, spec: Dict[str, Any], payloads: List[Dict[str, Any]]
    ) -> Future:
        try:
            return self._ensure().submit(prove_batch, spec, payloads)
        except BrokenProcessPool:
            self.reset()
            return self._ensure().submit(prove_batch, spec, payloads)

    def reset(self) -> None:
        """Tear down a (possibly broken) executor and start fresh."""
        executor, self._executor = self._executor, None
        self._generation += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None
