"""Deterministic synthetic stand-ins for MNIST and CIFAR-10.

The paper evaluates on MNIST (28x28x1 uint8) and CIFAR-10 (32x32x3 uint8).
No dataset downloads are possible here, and zkSNARK proving cost depends
only on tensor shapes and value distributions — never on what the pixels
depict — so we synthesize images with matched shape, dtype, and a natural
low-frequency structure (smoothed noise) whose value histogram resembles
photographs more than white noise does.  Labels are deterministic functions
of the image so accuracy-style experiments (ZEN's n=100 batch proof,
Fig. 14) remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SyntheticDataset:
    """A batch of synthetic images with deterministic labels."""

    name: str
    images: np.ndarray  # (n, c, h, w) int64 in [0, 255]
    labels: np.ndarray  # (n,) int64 in [0, num_classes)
    num_classes: int


def _smooth_images(
    rng: np.random.Generator, n: int, shape: Tuple[int, int, int]
) -> np.ndarray:
    """Low-frequency uint8 images: white noise blurred by a box filter."""
    c, h, w = shape
    raw = rng.normal(loc=128.0, scale=64.0, size=(n, c, h + 2, w + 2))
    # 3x3 box blur gives photograph-like local correlation.
    blurred = sum(
        raw[:, :, di : di + h, dj : dj + w] for di in range(3) for dj in range(3)
    ) / 9.0
    return np.clip(np.round(blurred), 0, 255).astype(np.int64)


def _labels_for(images: np.ndarray, num_classes: int) -> np.ndarray:
    """Deterministic pseudo-labels: bucket the mean intensity."""
    means = images.reshape(images.shape[0], -1).mean(axis=1)
    return (np.floor(means) % num_classes).astype(np.int64)


def synthetic_mnist(n: int = 16, seed: int = 0) -> SyntheticDataset:
    """``n`` MNIST-shaped images: (1, 28, 28) uint8 grayscale."""
    rng = np.random.default_rng(seed)
    images = _smooth_images(rng, n, (1, 28, 28))
    return SyntheticDataset("mnist-synthetic", images, _labels_for(images, 10), 10)


def synthetic_cifar10(n: int = 16, seed: int = 0) -> SyntheticDataset:
    """``n`` CIFAR-10-shaped images: (3, 32, 32) uint8 RGB."""
    rng = np.random.default_rng(seed)
    images = _smooth_images(rng, n, (3, 32, 32))
    return SyntheticDataset("cifar10-synthetic", images, _labels_for(images, 10), 10)


def synthetic_images(
    shape: Tuple[int, int, int], n: int = 4, seed: int = 0
) -> np.ndarray:
    """Arbitrary-shape synthetic images (used by the ``mini`` model variants)."""
    rng = np.random.default_rng(seed)
    return _smooth_images(rng, n, shape)
