"""DAG model container with traced integer execution.

The trace — per-layer inputs, raw accumulators, and outputs — doubles as the
zero-knowledge witness source: the compiler walks it to assign every wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer, LayerOutput, Shape

INPUT = "__input__"


@dataclass
class Node:
    """One named layer and the node names feeding it."""

    name: str
    layer: Layer
    inputs: Tuple[str, ...]


@dataclass
class LayerTrace:
    """Recorded execution of one node."""

    name: str
    layer: Layer
    input_values: List[np.ndarray]
    acc: np.ndarray
    out: np.ndarray


class Model:
    """A topologically ordered DAG of layers (sequential + residual skips)."""

    def __init__(self, name: str, input_shape: Shape) -> None:
        self.name = name
        self.input_shape = input_shape
        self.nodes: List[Node] = []
        self._names: Dict[str, int] = {}
        self._shapes: Dict[str, Shape] = {INPUT: input_shape}

    # -- construction ------------------------------------------------------------

    def add(
        self,
        name: str,
        layer: Layer,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Append a node; default input is the previous node (or the image)."""
        if name in self._names:
            raise ValueError(f"duplicate node name {name!r}")
        if inputs is None:
            inputs = (self.nodes[-1].name,) if self.nodes else (INPUT,)
        inputs = tuple(inputs)
        for src in inputs:
            if src != INPUT and src not in self._names:
                raise ValueError(f"node {name!r} reads unknown input {src!r}")
        in_shape = self._shapes[inputs[0]]
        self._shapes[name] = layer.out_shape(in_shape)
        self._names[name] = len(self.nodes)
        self.nodes.append(Node(name, layer, inputs))
        return name

    # -- introspection -----------------------------------------------------------

    def shape_of(self, name: str) -> Shape:
        return self._shapes[name]

    @property
    def output_name(self) -> str:
        return self.nodes[-1].name

    @property
    def output_shape(self) -> Shape:
        return self._shapes[self.output_name]

    def node(self, name: str) -> Node:
        return self.nodes[self._names[name]]

    def total_macs(self) -> int:
        return sum(
            node.layer.macs(self._shapes[node.inputs[0]]) for node in self.nodes
        )

    def total_adds(self) -> int:
        return sum(
            node.layer.adds(self._shapes[node.inputs[0]]) for node in self.nodes
        )

    def total_flops(self) -> int:
        """MACs + standalone additions — the Table 4 '#FLOPs' convention."""
        return self.total_macs() + sum(
            node.layer.adds(self._shapes[node.inputs[0]])
            for node in self.nodes
            if node.layer.kind == "ewise"
        )

    def num_params(self) -> int:
        return sum(node.layer.num_params() for node in self.nodes)

    def num_layers(self) -> int:
        return len(self.nodes)

    # -- execution --------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.trace(x)[-1].out

    def trace(self, x: np.ndarray) -> List[LayerTrace]:
        """Run the model and record every node's inputs/accumulator/output."""
        if tuple(x.shape) != tuple(self.input_shape):
            raise ValueError(
                f"{self.name} expects input {self.input_shape}, got {x.shape}"
            )
        values: Dict[str, np.ndarray] = {INPUT: x.astype(np.int64)}
        traces: List[LayerTrace] = []
        for node in self.nodes:
            ins = [values[src] for src in node.inputs]
            result: LayerOutput = node.layer.forward(*ins)
            values[node.name] = result.out
            traces.append(
                LayerTrace(
                    name=node.name,
                    layer=node.layer,
                    input_values=ins,
                    acc=result.acc,
                    out=result.out,
                )
            )
        return traces

    def predict(self, x: np.ndarray) -> int:
        """Argmax class of the final logits."""
        return int(np.argmax(self.forward(x)))

    def __repr__(self) -> str:
        return (
            f"Model({self.name}: {len(self.nodes)} layers, "
            f"in={self.input_shape}, out={self.output_shape})"
        )
