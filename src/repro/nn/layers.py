"""Integer NN layers with traced accumulators.

Every layer's ``forward`` returns both the raw integer accumulator (what the
zk dot-product circuit proves) and the post-requantization activation (what
the next layer consumes).  Shapes follow the NCHW-without-N convention:
``(channels, height, width)`` for conv stacks and ``(features,)`` after
flattening.

Cost accounting (``macs`` / ``adds``) feeds three consumers: Table 4's FLOP
inventory, the workload-specialized parallel scheduler's gate counting
(§5.2 — "the number of gates for a NN layer is proportional to the number
of computation in this layer"), and the analytic circuit-size model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.quantize import apply_requant, assert_uint8

Shape = Tuple[int, ...]


@dataclass
class LayerOutput:
    """Raw accumulator plus requantized activation for one layer."""

    acc: np.ndarray  # int64 accumulator, pre-requant / pre-ReLU
    out: np.ndarray  # int64 activation handed to the next layer


class Layer:
    """Base layer: integer forward pass plus cost/shape accounting."""

    #: "dot" layers compile to dot-product circuits; "ewise" to per-element
    #: gadgets; "shape" layers generate no constraints.
    kind: str = "shape"

    def out_shape(self, in_shape: Shape) -> Shape:
        raise NotImplementedError

    def forward(self, *xs: np.ndarray) -> LayerOutput:
        raise NotImplementedError

    def macs(self, in_shape: Shape) -> int:
        """Multiply-accumulate count — one multiplication gate each."""
        return 0

    def adds(self, in_shape: Shape) -> int:
        """Addition count — one addition gate each in the baseline circuit."""
        return 0

    def dot_geometry(self, in_shape: Shape) -> Optional[Tuple[int, int]]:
        """``(num_dots, dot_length)`` for dot-product layers, else None.

        This is the (m*k, n) factorization of Table 3: a conv/FC layer is a
        bag of independent dot products, each of the returned length.
        """
        return None

    def num_params(self) -> int:
        return 0


class Conv2d(Layer):
    """2-D convolution via im2col, int8 weights, int32 bias."""

    kind = "dot"

    def __init__(
        self,
        weight: np.ndarray,  # (c_out, c_in, kh, kw) int
        bias: Optional[np.ndarray] = None,  # (c_out,) int
        stride: int = 1,
        padding: int = 0,
        requant: int = 0,
    ) -> None:
        if weight.ndim != 4:
            raise ValueError(f"conv weight must be 4-D, got {weight.shape}")
        self.weight = weight.astype(np.int64)
        c_out = weight.shape[0]
        self.bias = (
            bias.astype(np.int64) if bias is not None else np.zeros(c_out, np.int64)
        )
        self.stride = stride
        self.padding = padding
        self.requant = requant

    # -- geometry ---------------------------------------------------------------

    def out_shape(self, in_shape: Shape) -> Shape:
        c_in, h, w = in_shape
        c_out, c_in_w, kh, kw = self.weight.shape
        if c_in != c_in_w:
            raise ValueError(
                f"conv expects {c_in_w} input channels, got {c_in}"
            )
        oh = (h + 2 * self.padding - kh) // self.stride + 1
        ow = (w + 2 * self.padding - kw) // self.stride + 1
        return (c_out, oh, ow)

    def im2col(self, x: np.ndarray) -> np.ndarray:
        """Unfold input into a ``(c_in*kh*kw, oh*ow)`` patch matrix."""
        c_in, h, w = x.shape
        _, _, kh, kw = self.weight.shape
        if self.padding:
            x = np.pad(
                x,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
            )
        _, oh, ow = self.out_shape((c_in, h, w))
        cols = np.empty((c_in * kh * kw, oh * ow), dtype=np.int64)
        idx = 0
        for c in range(c_in):
            for i in range(kh):
                for j in range(kw):
                    patch = x[
                        c,
                        i : i + oh * self.stride : self.stride,
                        j : j + ow * self.stride : self.stride,
                    ]
                    cols[idx] = patch.reshape(-1)
                    idx += 1
        return cols

    # -- execution ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> LayerOutput:
        in_shape = x.shape
        cols = self.im2col(x)
        w_mat = self.weight.reshape(self.weight.shape[0], -1)
        acc = w_mat @ cols + self.bias[:, None]
        acc = acc.reshape(self.out_shape(in_shape))
        out = apply_requant(acc, self.requant)
        return LayerOutput(acc=acc, out=out)

    # -- accounting ---------------------------------------------------------------------

    def dot_geometry(self, in_shape: Shape) -> Tuple[int, int]:
        c_out, oh, ow = self.out_shape(in_shape)
        n = int(np.prod(self.weight.shape[1:]))
        return (c_out * oh * ow, n)

    def macs(self, in_shape: Shape) -> int:
        num_dots, n = self.dot_geometry(in_shape)
        return num_dots * n

    def adds(self, in_shape: Shape) -> int:
        num_dots, n = self.dot_geometry(in_shape)
        return num_dots * (n - 1)

    def num_params(self) -> int:
        return self.weight.size + self.bias.size


class Linear(Layer):
    """Fully connected layer ``acc = W x + b``."""

    kind = "dot"

    def __init__(
        self,
        weight: np.ndarray,  # (c_out, c_in) int
        bias: Optional[np.ndarray] = None,
        requant: int = 0,
    ) -> None:
        if weight.ndim != 2:
            raise ValueError(f"linear weight must be 2-D, got {weight.shape}")
        self.weight = weight.astype(np.int64)
        self.bias = (
            bias.astype(np.int64)
            if bias is not None
            else np.zeros(weight.shape[0], np.int64)
        )
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        # 1-D: classic FC head.  2-D (seq, features): the same weights
        # applied to every row — transformer projections.
        c_in = in_shape[-1]
        if c_in != self.weight.shape[1]:
            raise ValueError(
                f"linear expects {self.weight.shape[1]} features, got {c_in}"
            )
        if len(in_shape) == 1:
            return (self.weight.shape[0],)
        if len(in_shape) == 2:
            return (in_shape[0], self.weight.shape[0])
        raise ValueError(f"linear input must be 1-D or 2-D, got {in_shape}")

    def forward(self, x: np.ndarray) -> LayerOutput:
        if x.ndim == 2:
            acc = x @ self.weight.T + self.bias
        else:
            acc = self.weight @ x + self.bias
        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def dot_geometry(self, in_shape: Shape) -> Tuple[int, int]:
        rows = in_shape[0] if len(in_shape) == 2 else 1
        return (rows * self.weight.shape[0], self.weight.shape[1])

    def macs(self, in_shape: Shape) -> int:
        num_dots, n = self.dot_geometry(in_shape)
        return num_dots * n

    def adds(self, in_shape: Shape) -> int:
        num_dots, n = self.dot_geometry(in_shape)
        return num_dots * (n - 1)

    def num_params(self) -> int:
        return self.weight.size + self.bias.size


class AvgPool2d(Layer):
    """Average pooling as a ones-vector dot product plus a shift (§5.1).

    The window size must be a power of two squared so the division is an
    exact power-of-two shift (the paper follows ZEN's average-pool scheme).
    """

    kind = "dot"

    def __init__(self, size: int = 2) -> None:
        if size & (size - 1):
            raise ValueError("pool size must be a power of two")
        self.size = size
        self.requant = 2 * (size.bit_length() - 1)  # log2(size^2)

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if h % self.size or w % self.size:
            raise ValueError(
                f"pool size {self.size} does not divide {h}x{w}"
            )
        return (c, h // self.size, w // self.size)

    def forward(self, x: np.ndarray) -> LayerOutput:
        c, h, w = x.shape
        s = self.size
        acc = (
            x.reshape(c, h // s, s, w // s, s)
            .sum(axis=(2, 4))
            .astype(np.int64)
        )
        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def dot_geometry(self, in_shape: Shape) -> Tuple[int, int]:
        c, oh, ow = self.out_shape(in_shape)
        return (c * oh * ow, self.size * self.size)

    def macs(self, in_shape: Shape) -> int:
        return 0  # multiplications by the public ones-vector are free

    def adds(self, in_shape: Shape) -> int:
        num_dots, n = self.dot_geometry(in_shape)
        return num_dots * (n - 1)


class MaxPool2d(Layer):
    """Max pooling — the paper's "higher cost" pooling variant (§2.2).

    Unlike average pooling (a free dot product with a public ones-vector),
    every window maximum needs comparison gadgets in the circuit:
    ``max(a, b) = a + relu(b - a)``, chained across the window.
    """

    kind = "maxpool"

    def __init__(self, size: int = 2) -> None:
        if size < 2:
            raise ValueError("pool size must be >= 2")
        self.size = size

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if h % self.size or w % self.size:
            raise ValueError(f"pool size {self.size} does not divide {h}x{w}")
        return (c, h // self.size, w // self.size)

    def forward(self, x: np.ndarray) -> LayerOutput:
        c, h, w = x.shape
        s = self.size
        out = x.reshape(c, h // s, s, w // s, s).max(axis=(2, 4))
        return LayerOutput(acc=out, out=out)

    def adds(self, in_shape: Shape) -> int:
        # One comparison per non-first window element.
        c, oh, ow = self.out_shape(in_shape)
        return c * oh * ow * (self.size * self.size - 1)


class ReLU(Layer):
    """Elementwise ``max(0, x)`` — the expensive comparison layer (§2.2)."""

    kind = "ewise"

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def forward(self, x: np.ndarray) -> LayerOutput:
        out = np.maximum(x, 0)
        return LayerOutput(acc=x, out=assert_uint8(out, "relu"))

    def adds(self, in_shape: Shape) -> int:
        # One comparison per element; counted as an "add" for gate totals.
        return int(np.prod(in_shape))


class BatchNorm(Layer):
    """Inference-mode batch norm on the accumulator: ``g*x + b`` (§6.2).

    Integer gamma/beta act on the *pre-requant* accumulator so fusing into
    the preceding conv/FC (``W' = g W``, ``b' = g b_conv + b``) is exact.
    """

    kind = "ewise"

    def __init__(self, gamma: np.ndarray, beta: np.ndarray, requant: int = 0):
        self.gamma = gamma.astype(np.int64)  # per-channel
        self.beta = beta.astype(np.int64)
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def _broadcast(self, x: np.ndarray):
        if x.ndim == 3:
            return self.gamma[:, None, None], self.beta[:, None, None]
        return self.gamma, self.beta

    def forward(self, x: np.ndarray) -> LayerOutput:
        g, b = self._broadcast(x)
        acc = g * x + b
        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def macs(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))

    def adds(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))

    def num_params(self) -> int:
        return self.gamma.size + self.beta.size


class Add(Layer):
    """Residual addition with a shift-1 requant to stay in uint8."""

    kind = "ewise"

    def __init__(self, requant: int = 1) -> None:
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def forward(self, a: np.ndarray, b: np.ndarray) -> LayerOutput:
        if a.shape != b.shape:
            raise ValueError(f"residual shapes differ: {a.shape} vs {b.shape}")
        acc = a + b
        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def adds(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))


class Flatten(Layer):
    """Reshape to 1-D; generates no constraints."""

    kind = "shape"

    def out_shape(self, in_shape: Shape) -> Shape:
        return (int(np.prod(in_shape)),)

    def forward(self, x: np.ndarray) -> LayerOutput:
        flat = x.reshape(-1)
        return LayerOutput(acc=flat, out=flat)
