"""Transformer layers over the integer substrate (the `repro.lookup` workload).

Every nonlinearity a transformer needs — softmax, GELU, LayerNorm's
reciprocal square root — is lowered through a precomputed
:class:`~repro.lookup.table.LookupTable`, so the plaintext forward pass
here and the circuit lowering in :mod:`repro.core.circuit.compute` read
the *same* integer tables and agree bit-for-bit by construction.

Integer semantics (all shifts are public powers of two, as everywhere in
this repo):

* attention scores  ``S = (Q K^T) >> s_qk``      (calibrated shift)
* softmax           ``E = exp8[S]``, ``r_i = recip8[(sum_j E_ij) >> s]``,
                    ``P_ij = (E_ij * r_i) >> s_p``
* GELU              ``gelu8[x]`` at 1/32 fixed-point scale
* LayerNorm         ``m = rowsum(x) >> log2(d)``, ``c = x - m``,
                    ``v = rowsum(c^2) >> (log2(d)+10)``,
                    ``out = (c * rsqrt8[v]) >> 13``  (≈ 8·c/σ)

The LayerNorm shifts are *static*: for any power-of-two row width ``d``
and inputs in the committed-output range ``[-256, 255]``, the variance
lands in ``rsqrt8``'s ``[0, 255]`` domain and the output in int8 — no
calibration needed (see docs/ARCHITECTURE.md §13).

Shape plumbing (head split/merge, ViT patchify) is free: those layers
only describe index gathers and generate no constraints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.lookup.table import LookupTable, get_table
from repro.nn.layers import Layer, LayerOutput, Shape


def _log2_exact(n: int, what: str) -> int:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"{what} must be a power of two, got {n}")
    return n.bit_length() - 1


class Embedding(Layer):
    """Token-id -> row lookup into a ``(vocab, d)`` int8 table.

    Accepts any input shape (ids are flattened), so the standard
    ``(1, 1, seq)`` synthetic-image plumbing feeds it unchanged; ids are
    uint8, matching ``vocab = 256``.  Out-of-vocabulary ids raise — same
    reject-don't-wrap rule as the lookup tables, because in the circuit
    the id *is* a lookup input.
    """

    kind = "embed"

    def __init__(self, table: np.ndarray) -> None:
        if table.ndim != 2:
            raise ValueError(f"embedding table must be 2-D, got {table.shape}")
        self.table = table.astype(np.int64)

    @property
    def vocab(self) -> int:
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    def out_shape(self, in_shape: Shape) -> Shape:
        return (int(np.prod(in_shape)), self.dim)

    def forward(self, x: np.ndarray) -> LayerOutput:
        ids = x.reshape(-1)
        if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self.vocab):
            raise ValueError(
                f"embedding id outside [0, {self.vocab}) — rejected, not wrapped"
            )
        out = self.table[ids]
        return LayerOutput(acc=out, out=out)

    def num_params(self) -> int:
        return int(self.table.size)


class PositionalEmbedding(Layer):
    """Adds a public per-position table: ``out = x + pos`` (no requant)."""

    kind = "ewise"

    def __init__(self, pos: np.ndarray) -> None:
        self.pos = pos.astype(np.int64)

    def out_shape(self, in_shape: Shape) -> Shape:
        if tuple(in_shape) != self.pos.shape:
            raise ValueError(
                f"positional table {self.pos.shape} does not match input "
                f"{tuple(in_shape)}"
            )
        return in_shape

    def forward(self, x: np.ndarray) -> LayerOutput:
        acc = x + self.pos
        return LayerOutput(acc=acc, out=acc)

    def adds(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))

    def num_params(self) -> int:
        return int(self.pos.size)


class MatMul(Layer):
    """Private-by-private matrix product with a calibrated requant shift.

    ``out = (A @ B) >> requant`` (or ``A @ B^T`` with ``transpose_b``) —
    both operands are activations, so every scalar product costs one
    multiplication constraint (Eq. 2); there is no public side to fold
    into coefficients.
    """

    kind = "matmul"

    def __init__(self, n_out: int, transpose_b: bool = False, requant: int = 0):
        self.n_out = n_out
        self.transpose_b = transpose_b
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        m, _ = in_shape
        return (m, self.n_out)

    def forward(self, a: np.ndarray, b: np.ndarray) -> LayerOutput:
        acc = a @ (b.T if self.transpose_b else b)
        from repro.nn.quantize import apply_requant

        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def macs(self, in_shape: Shape) -> int:
        m, k = in_shape
        return m * k * self.n_out

    def adds(self, in_shape: Shape) -> int:
        m, k = in_shape
        return m * max(0, k - 1) * self.n_out


class RowSum(Layer):
    """Per-row sum — a ones-vector dot product (softmax's denominator)."""

    kind = "dot"

    def __init__(self, requant: int = 0) -> None:
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        m, _ = in_shape
        return (m, 1)

    def forward(self, x: np.ndarray) -> LayerOutput:
        acc = x.sum(axis=1, keepdims=True).astype(np.int64)
        from repro.nn.quantize import apply_requant

        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def dot_geometry(self, in_shape: Shape) -> Tuple[int, int]:
        m, n = in_shape
        return (m, n)

    def adds(self, in_shape: Shape) -> int:
        m, n = in_shape
        return m * (n - 1)


class RowScale(Layer):
    """``out_ij = (e_ij * r_i) >> requant`` — softmax's normalization."""

    kind = "rowscale"

    def __init__(self, requant: int = 0) -> None:
        self.requant = requant

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def forward(self, e: np.ndarray, r: np.ndarray) -> LayerOutput:
        acc = e * r.reshape(-1, 1)
        from repro.nn.quantize import apply_requant

        return LayerOutput(acc=acc, out=apply_requant(acc, self.requant))

    def macs(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))


class ActivationLUT(Layer):
    """Elementwise nonlinearity through a builtin lookup table."""

    kind = "lut"

    def __init__(self, table_name: str) -> None:
        self.table_name = table_name
        self.table: LookupTable = get_table(table_name)

    @property
    def in_params(self):
        """Quantization metadata of the tensor this LUT consumes."""
        return self.table.in_params

    @property
    def out_params(self):
        """Quantization metadata of the tensor this LUT produces."""
        return self.table.out_params

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def forward(self, x: np.ndarray) -> LayerOutput:
        out = self.table.apply(x)
        return LayerOutput(acc=x, out=out)

    def adds(self, in_shape: Shape) -> int:
        return int(np.prod(in_shape))


class LayerNorm(Layer):
    """Row normalization via the ``rsqrt8`` table (static shifts).

    Output is ``round-ish`` of ``8 * (x - mean) / sigma`` in int8; the
    learned affine of framework LayerNorms is folded into the following
    linear layer (weights are synthetic here anyway).
    """

    kind = "ln"
    OUT_SHIFT = 13
    VAR_EXTRA = 10  # var = rowsum(c^2) >> (log2 d + VAR_EXTRA), fits uint8

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.mean_shift = _log2_exact(dim, "LayerNorm dim")
        self.var_shift = self.mean_shift + self.VAR_EXTRA
        self.out_shift = self.OUT_SHIFT

    def out_shape(self, in_shape: Shape) -> Shape:
        m, d = in_shape
        if d != self.dim:
            raise ValueError(f"LayerNorm({self.dim}) got row width {d}")
        return in_shape

    def intermediates(self, x: np.ndarray):
        """All integer intermediates, shared with the circuit lowering."""
        x = x.astype(np.int64)
        mean = x.sum(axis=1) >> self.mean_shift
        c = x - mean[:, None]
        sq = c * c
        var = sq.sum(axis=1) >> self.var_shift
        y = get_table("rsqrt").apply(var)
        prod = c * y[:, None]
        out = prod >> self.out_shift
        return mean, c, sq, var, y, prod, out

    def forward(self, x: np.ndarray) -> LayerOutput:
        _, _, _, _, _, prod, out = self.intermediates(x)
        return LayerOutput(acc=prod, out=out)

    def macs(self, in_shape: Shape) -> int:
        return 2 * int(np.prod(in_shape))

    def adds(self, in_shape: Shape) -> int:
        m, d = in_shape
        return m * (3 * d + 2)


# -- constraint-free shape layers ------------------------------------------------------


class GatherLayer(Layer):
    """Base for layers that only permute/select wires (zero constraints)."""

    kind = "shape"

    def gather_sources(self, in_shapes: Sequence[Shape]) -> np.ndarray:
        """``(out_size, 2)`` rows of ``(input_ordinal, flat_position)``."""
        raise NotImplementedError

    def _gather(self, xs: Sequence[np.ndarray]) -> np.ndarray:
        sources = self.gather_sources([x.shape for x in xs])
        flats = [x.reshape(-1) for x in xs]
        out = np.array(
            [int(flats[src][pos]) for src, pos in sources], dtype=np.int64
        )
        return out.reshape(self.out_shape(xs[0].shape))

    def forward(self, *xs: np.ndarray) -> LayerOutput:
        out = self._gather(xs)
        return LayerOutput(acc=out, out=out)


class SliceCols(GatherLayer):
    """Select a column range — one attention head's slice of Q/K/V."""

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi

    def out_shape(self, in_shape: Shape) -> Shape:
        m, n = in_shape
        if not 0 <= self.lo < self.hi <= n:
            raise ValueError(f"slice [{self.lo}:{self.hi}] outside width {n}")
        return (m, self.hi - self.lo)

    def gather_sources(self, in_shapes: Sequence[Shape]) -> np.ndarray:
        m, n = in_shapes[0]
        rows = []
        for i in range(m):
            for j in range(self.lo, self.hi):
                rows.append((0, i * n + j))
        return np.asarray(rows, dtype=np.int64)


class ConcatCols(GatherLayer):
    """Concatenate same-height inputs along columns — head merge."""

    def __init__(self, widths: Sequence[int]) -> None:
        self.widths = tuple(int(w) for w in widths)

    def out_shape(self, in_shape: Shape) -> Shape:
        m, n = in_shape
        if n != self.widths[0]:
            raise ValueError(
                f"first input width {n} != declared {self.widths[0]}"
            )
        return (m, sum(self.widths))

    def gather_sources(self, in_shapes: Sequence[Shape]) -> np.ndarray:
        if len(in_shapes) != len(self.widths):
            raise ValueError(
                f"concat declared {len(self.widths)} inputs, got {len(in_shapes)}"
            )
        m = in_shapes[0][0]
        for k, shape in enumerate(in_shapes):
            if shape != (m, self.widths[k]):
                raise ValueError(
                    f"concat input {k} has shape {shape}, expected "
                    f"({m}, {self.widths[k]})"
                )
        rows = []
        for i in range(m):
            for k, w in enumerate(self.widths):
                for j in range(w):
                    rows.append((k, i * w + j))
        return np.asarray(rows, dtype=np.int64)


class Patchify(GatherLayer):
    """``(c, h, w)`` image -> ``(num_patches, c*p*p)`` patch rows (ViT)."""

    def __init__(self, patch: int) -> None:
        self.patch = patch

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        p = self.patch
        if h % p or w % p:
            raise ValueError(f"patch {p} does not divide {h}x{w}")
        return ((h // p) * (w // p), c * p * p)

    def gather_sources(self, in_shapes: Sequence[Shape]) -> np.ndarray:
        c, h, w = in_shapes[0]
        p = self.patch
        rows = []
        for pi in range(h // p):
            for pj in range(w // p):
                for ch in range(c):
                    for di in range(p):
                        for dj in range(p):
                            flat = (
                                ch * h * w
                                + (pi * p + di) * w
                                + (pj * p + dj)
                            )
                            rows.append((0, flat))
        return np.asarray(rows, dtype=np.int64)


# -- model assembly helpers ------------------------------------------------------------


def add_attention_block(
    model,
    prefix: str,
    src: str,
    dim: int,
    heads: int,
    sampler,
) -> str:
    """Multi-head self-attention + residual + LayerNorm; returns out node."""
    from repro.nn.layers import Add, Linear

    if dim % heads:
        raise ValueError(f"heads {heads} must divide dim {dim}")
    head_dim = dim // heads
    seq = model.shape_of(src)[0]
    for name, w in (("q", dim), ("k", dim), ("v", dim)):
        model.add(
            f"{prefix}.{name}",
            Linear(sampler.linear(w, dim), sampler.bias(w)),
            inputs=(src,),
        )
    ctx_names: List[str] = []
    for h in range(heads):
        lo, hi = h * head_dim, (h + 1) * head_dim
        for name in ("q", "k", "v"):
            model.add(
                f"{prefix}.h{h}.{name}",
                SliceCols(lo, hi),
                inputs=(f"{prefix}.{name}",),
            )
        model.add(
            f"{prefix}.h{h}.scores",
            MatMul(n_out=seq, transpose_b=True),
            inputs=(f"{prefix}.h{h}.q", f"{prefix}.h{h}.k"),
        )
        model.add(f"{prefix}.h{h}.exp", ActivationLUT("exp"))
        model.add(f"{prefix}.h{h}.rowsum", RowSum())
        model.add(f"{prefix}.h{h}.recip", ActivationLUT("recip"))
        model.add(
            f"{prefix}.h{h}.probs",
            RowScale(),
            inputs=(f"{prefix}.h{h}.exp", f"{prefix}.h{h}.recip"),
        )
        model.add(
            f"{prefix}.h{h}.ctx",
            MatMul(n_out=head_dim),
            inputs=(f"{prefix}.h{h}.probs", f"{prefix}.h{h}.v"),
        )
        ctx_names.append(f"{prefix}.h{h}.ctx")
    model.add(
        f"{prefix}.concat",
        ConcatCols([head_dim] * heads),
        inputs=tuple(ctx_names),
    )
    model.add(
        f"{prefix}.out", Linear(sampler.linear(dim, dim), sampler.bias(dim))
    )
    model.add(f"{prefix}.res", Add(), inputs=(src, f"{prefix}.out"))
    model.add(f"{prefix}.ln", LayerNorm(dim))
    return f"{prefix}.ln"


def add_mlp_block(model, prefix: str, src: str, dim: int, hidden: int, sampler) -> str:
    """GELU MLP + residual + LayerNorm; returns the output node name."""
    from repro.nn.layers import Add, Linear

    model.add(
        f"{prefix}.fc1",
        Linear(sampler.linear(hidden, dim), sampler.bias(hidden)),
        inputs=(src,),
    )
    model.add(f"{prefix}.gelu", ActivationLUT("gelu"))
    model.add(
        f"{prefix}.fc2", Linear(sampler.linear(dim, hidden), sampler.bias(dim))
    )
    model.add(f"{prefix}.res", Add(), inputs=(src, f"{prefix}.fc2"))
    model.add(f"{prefix}.ln", LayerNorm(dim))
    return f"{prefix}.ln"
