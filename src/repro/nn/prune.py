"""Magnitude pruning for the evaluation networks (TeleSparse direction).

Sparsity-aware compilation (``CompilerOptions.sparse``) elides zero-weight
terms and shares sub-circuits across identical (notably all-zero) filter
rows, but our synthetic Normal-int8 weights have almost no natural zeros.
This module supplies the pruned models the scale benchmarks compile:

* **unstructured** pruning zeroes the smallest-|w| fraction of individual
  weights per dot layer — scattered zeros, which term elision skips
  without changing the constraint system;
* **structured** pruning zeroes whole output rows (conv filters / FC
  neurons) by L1 norm — every dot of a pruned row degenerates to its bias
  constant, which the compiler's sub-circuit sharing collapses to one
  committed wire per row (the big constraint-count lever).

Pruning happens *before* calibration so requantization shifts are chosen
for the pruned network; the final classifier layer is exempt from
structured pruning so all 10 logits stay live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.nn.graph import Model
from repro.nn.layers import Conv2d, Linear


@dataclass
class PruneSpec:
    """How much to prune: fractions in ``[0, 1)`` per dot layer."""

    structured: float = 0.0  # fraction of output rows zeroed (by L1 norm)
    unstructured: float = 0.0  # fraction of remaining weights zeroed (by |w|)

    def __post_init__(self) -> None:
        for name in ("structured", "unstructured"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} fraction must be in [0, 1), got {value}")

    @property
    def enabled(self) -> bool:
        return self.structured > 0.0 or self.unstructured > 0.0

    @classmethod
    def parse(cls, spec: Union["PruneSpec", str, float, None]) -> "PruneSpec":
        """Accept ``PruneSpec`` | ``"0.6,0.2"`` (structured,unstructured) |
        ``"0.3"`` / ``0.3`` (unstructured only) | ``None``."""
        if spec is None:
            return cls()
        if isinstance(spec, PruneSpec):
            return spec
        if isinstance(spec, (int, float)):
            return cls(unstructured=float(spec))
        parts = [p.strip() for p in str(spec).split(",") if p.strip()]
        if len(parts) == 1:
            return cls(unstructured=float(parts[0]))
        if len(parts) == 2:
            return cls(structured=float(parts[0]), unstructured=float(parts[1]))
        raise ValueError(f"prune spec must be 'U' or 'S,U', got {spec!r}")


@dataclass
class PruneStats:
    """What pruning actually zeroed, per layer and in total."""

    spec: PruneSpec
    layers: List[Dict[str, int]] = field(default_factory=list)
    weights_total: int = 0
    weights_zero: int = 0
    rows_total: int = 0
    rows_zero: int = 0

    @property
    def density(self) -> float:
        if not self.weights_total:
            return 1.0
        return 1.0 - self.weights_zero / self.weights_total

    def to_json(self) -> dict:
        return {
            "structured": self.spec.structured,
            "unstructured": self.spec.unstructured,
            "weights_total": self.weights_total,
            "weights_zero": self.weights_zero,
            "rows_total": self.rows_total,
            "rows_zero": self.rows_zero,
            "density": self.density,
        }


def _prunable_nodes(model: Model) -> List[Tuple[str, object]]:
    return [
        (node.name, node.layer)
        for node in model.nodes
        if isinstance(node.layer, (Conv2d, Linear))
    ]


def prune_model(
    model: Model, spec: Union[PruneSpec, str, float, None]
) -> PruneStats:
    """Zero weights in-place per ``spec``; returns what was zeroed.

    Structured pruning keeps at least one live row per layer and skips the
    final dot layer (the classifier head); unstructured pruning applies to
    every dot layer's surviving weights.  Deterministic: ties break by
    stable sort order.
    """
    spec = PruneSpec.parse(spec)
    stats = PruneStats(spec=spec)
    nodes = _prunable_nodes(model)
    for position, (name, layer) in enumerate(nodes):
        weight = layer.weight
        rows = weight.reshape(weight.shape[0], -1)
        c_out, n = rows.shape
        zero_rows = 0
        is_head = position == len(nodes) - 1
        if spec.structured and not is_head:
            norms = np.abs(rows).sum(axis=1)
            kill = min(int(math.floor(spec.structured * c_out)), c_out - 1)
            if kill > 0:
                victims = np.argsort(norms, kind="stable")[:kill]
                rows[victims, :] = 0
                zero_rows = int(kill)
        if spec.unstructured:
            flat = rows.reshape(-1)
            live = np.nonzero(flat)[0]
            kill = int(math.floor(spec.unstructured * live.size))
            if kill > 0:
                order = np.argsort(np.abs(flat[live]), kind="stable")[:kill]
                flat[live[order]] = 0
        layer.weight = rows.reshape(weight.shape)
        zeros = int(np.count_nonzero(rows == 0))
        stats.layers.append(
            {
                "name": name,
                "weights": int(rows.size),
                "zeros": zeros,
                "rows": c_out,
                "zero_rows": int(np.count_nonzero(~rows.any(axis=1))),
            }
        )
        stats.weights_total += int(rows.size)
        stats.weights_zero += zeros
        stats.rows_total += c_out
        stats.rows_zero += stats.layers[-1]["zero_rows"]
    return stats


def model_sparsity(model: Model) -> Dict[str, float]:
    """Fraction of zero weights / zero rows across all dot layers."""
    total = zero = rows = zero_rows = 0
    for _, layer in _prunable_nodes(model):
        mat = layer.weight.reshape(layer.weight.shape[0], -1)
        total += mat.size
        zero += int(np.count_nonzero(mat == 0))
        rows += mat.shape[0]
        zero_rows += int(np.count_nonzero(~mat.any(axis=1)))
    return {
        "weights_total": total,
        "weights_zero": zero,
        "rows_total": rows,
        "rows_zero": zero_rows,
        "density": 1.0 - (zero / total if total else 0.0),
    }
