"""Quantized neural-network substrate.

zkSNARK NNs prove *quantized integer* inference (§2.2): activations are
uint8, weights int8, accumulators int32, and every layer is expressible with
additions and multiplications (plus comparisons for ReLU).  This package
provides that plaintext substrate:

* :mod:`repro.nn.quantize`   — symmetric-weight affine quantization and
  power-of-two requantization (chosen to be zkSNARK-friendly: the circuit
  proves an exact integer identity, never a float rounding);
* :mod:`repro.nn.layers`     — Conv2d (im2col), Linear, AvgPool2d, ReLU,
  BatchNorm, residual Add, Flatten, with MAC/addition counts;
* :mod:`repro.nn.graph`      — a small DAG model container with traced
  execution (the trace is the zk witness source);
* :mod:`repro.nn.models`     — the paper's six networks (Table 4) in full
  and ``mini`` scale, plus the TINY/VIT transformer family;
* :mod:`repro.nn.transformer` — embedding, multi-head attention with
  quantized softmax, LayerNorm, and GELU MLP layers lowered through the
  :mod:`repro.lookup` argument (ARCHITECTURE §13);
* :mod:`repro.nn.data`       — deterministic synthetic MNIST / CIFAR-10
  stand-ins (see DESIGN.md "Substitutions").
"""

from repro.nn.quantize import QuantParams, quantize_weights, requant_shift
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    ReLU,
)
from repro.nn.graph import LayerTrace, Model, Node
from repro.nn.models import (
    MODEL_BUILDERS,
    TRANSFORMER_ORDER,
    build_model,
    model_table,
)
from repro.nn.transformer import (
    ActivationLUT,
    ConcatCols,
    Embedding,
    LayerNorm,
    MatMul,
    Patchify,
    PositionalEmbedding,
    RowScale,
    RowSum,
    SliceCols,
    add_attention_block,
    add_mlp_block,
)
from repro.nn.data import synthetic_cifar10, synthetic_mnist

__all__ = [
    "QuantParams",
    "quantize_weights",
    "requant_shift",
    "Layer",
    "Conv2d",
    "Linear",
    "AvgPool2d",
    "ReLU",
    "BatchNorm",
    "Add",
    "Flatten",
    "Model",
    "Node",
    "LayerTrace",
    "MODEL_BUILDERS",
    "TRANSFORMER_ORDER",
    "build_model",
    "model_table",
    "synthetic_mnist",
    "synthetic_cifar10",
    "Embedding",
    "PositionalEmbedding",
    "MatMul",
    "RowSum",
    "RowScale",
    "ActivationLUT",
    "LayerNorm",
    "SliceCols",
    "ConcatCols",
    "Patchify",
    "add_attention_block",
    "add_mlp_block",
]
