"""The paper's six evaluation networks (Table 4), plus ``mini`` variants.

Full-size variants match Table 4's FLOP inventory to within the precision
its architecture descriptions allow (the paper gives layer counts, not
channel widths; widths here are chosen so measured #FLOPs land near the
reported column — see EXPERIMENTS.md for actual vs paper numbers):

=============  =====  ==============  =========================
Network        Abbr.  paper #FLOPs(K) construction
=============  =====  ==============  =========================
ShallowNet     SHAL   102             FC-128, ReLU, FC-10 (MNIST)
LeNetCifarSm.  LCS    530             LeNet-5, base width 6
LeNetCifarLg.  LCL    7,170           LeNet-5, base width 32
VggNet-16      VGG16  19,917          VGG-16 @ width 16
ResNet-18      RES18  32,355          ResNet-18 @ width 16
ResNet-50      RES50  69,191          ResNet-50 @ width 14
=============  =====  ==============  =========================

``mini`` variants shrink the spatial input (CIFAR 32->16, MNIST 28->14) and
halve widths; they exist so end-to-end proving benchmarks finish in
pure-Python time while full variants feed the analytic circuit-size model.

Weights are drawn from a Normal distribution and symmetrically quantized to
int8 — matching the paper's cache-service assumption that "NN weights and
features usually follow Normal distribution" (§6.1).  Requantization shifts
are calibrated on synthetic images so the no-clipping invariant holds
(see :mod:`repro.nn.quantize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.data import synthetic_images
from repro.nn.graph import INPUT, Model
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    Linear,
    ReLU,
)
from repro.nn.quantize import requant_shift


@dataclass(frozen=True)
class ModelInfo:
    """Table 4 row metadata."""

    abbr: str
    full_name: str
    dataset: str  # "mnist" | "cifar10"
    paper_flops_k: int
    paper_accuracy: float  # reported in Table 4 (we cannot train here)


MODEL_INFO: Dict[str, ModelInfo] = {
    "SHAL": ModelInfo("SHAL", "ShallowNet", "mnist", 102, 94.91),
    "LCS": ModelInfo("LCS", "LeNetCifarSmall", "cifar10", 530, 55.35),
    "LCL": ModelInfo("LCL", "LeNetCifarLarge", "cifar10", 7_170, 63.68),
    "VGG16": ModelInfo("VGG16", "VggNet-16", "cifar10", 19_917, 84.19),
    "RES18": ModelInfo("RES18", "ResNet-18", "cifar10", 32_355, 85.45),
    "RES50": ModelInfo("RES50", "ResNet-50", "cifar10", 69_191, 87.05),
}

#: Transformer family proved through the lookup-argument gadgets.  Kept
#: out of ``MODEL_INFO`` on purpose: that dict mirrors Table 4 exactly
#: (no paper FLOP/accuracy figures exist for these), and downstream code
#: iterates ``MODEL_ORDER`` for the paper tables.
TRANSFORMER_INFO: Dict[str, ModelInfo] = {
    "TINY": ModelInfo("TINY", "TinyTransformer", "synthetic", 0, 0.0),
    "VIT": ModelInfo("VIT", "ViT-Slice", "synthetic", 0, 0.0),
}

ALL_MODELS: Dict[str, ModelInfo] = {**MODEL_INFO, **TRANSFORMER_INFO}


class _WeightSampler:
    """Deterministic Normal-distributed int8 weight generator."""

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def conv(self, c_out: int, c_in: int, k: int) -> np.ndarray:
        fan_in = c_in * k * k
        real = self.rng.normal(0.0, 1.0 / np.sqrt(fan_in), (c_out, c_in, k, k))
        scale = np.max(np.abs(real)) / 127.0 or 1.0
        return np.clip(np.round(real / scale), -127, 127).astype(np.int64)

    def linear(self, c_out: int, c_in: int) -> np.ndarray:
        real = self.rng.normal(0.0, 1.0 / np.sqrt(c_in), (c_out, c_in))
        scale = np.max(np.abs(real)) / 127.0 or 1.0
        return np.clip(np.round(real / scale), -127, 127).astype(np.int64)

    def bias(self, c_out: int) -> np.ndarray:
        return self.rng.integers(-64, 64, c_out).astype(np.int64)

    def bn(self, channels: int) -> Tuple[np.ndarray, np.ndarray]:
        gamma = self.rng.integers(1, 4, channels).astype(np.int64)
        beta = self.rng.integers(-32, 32, channels).astype(np.int64)
        return gamma, beta


# -- builders -----------------------------------------------------------------


def _shallownet(sampler: _WeightSampler, side: int, width: int) -> Model:
    model = Model("ShallowNet", (1, side, side))
    model.add("flatten", Flatten())
    model.add("fc1", Linear(sampler.linear(width, side * side), sampler.bias(width)))
    model.add("relu1", ReLU())
    model.add("fc2", Linear(sampler.linear(10, width), sampler.bias(10)))
    return model


def _lenet(
    sampler: _WeightSampler, side: int, widths: Tuple[int, int, int, int]
) -> Model:
    """LeNet-5 skeleton: 2x (conv5x5, relu, avgpool) + 3 FC layers."""
    c1, c2, f1, f2 = widths
    model = Model("LeNet", (3, side, side))
    model.add("conv1", Conv2d(sampler.conv(c1, 3, 5), sampler.bias(c1)))
    model.add("relu1", ReLU())
    model.add("pool1", AvgPool2d(2))
    model.add("conv2", Conv2d(sampler.conv(c2, c1, 5), sampler.bias(c2)))
    model.add("relu2", ReLU())
    model.add("pool2", AvgPool2d(2))
    model.add("flatten", Flatten())
    flat = model.shape_of("flatten")[0]
    model.add("fc1", Linear(sampler.linear(f1, flat), sampler.bias(f1)))
    model.add("relu3", ReLU())
    model.add("fc2", Linear(sampler.linear(f2, f1), sampler.bias(f2)))
    model.add("relu4", ReLU())
    model.add("fc3", Linear(sampler.linear(10, f2), sampler.bias(10)))
    return model


_VGG16_PLAN = [
    (1, 1), "M", (2, 2), "M", (4, 4, 4), "M", (8, 8, 8), "M", (8, 8, 8), "M"
]  # channel multipliers of the base width; "M" = 2x2 average pool


def _vgg16(sampler: _WeightSampler, side: int, width: int) -> Model:
    model = Model("VggNet-16", (3, side, side))
    c_in = 3
    conv_idx = 0
    pool_idx = 0
    for stage in _VGG16_PLAN:
        if stage == "M":
            pool_idx += 1
            model.add(f"pool{pool_idx}", AvgPool2d(2))
            continue
        for mult in stage:
            conv_idx += 1
            c_out = mult * width
            model.add(
                f"conv{conv_idx}",
                Conv2d(sampler.conv(c_out, c_in, 3), sampler.bias(c_out), padding=1),
            )
            model.add(f"relu{conv_idx}", ReLU())
            c_in = c_out
    model.add("flatten", Flatten())
    flat = model.shape_of("flatten")[0]
    model.add("fc1", Linear(sampler.linear(8 * width, flat), sampler.bias(8 * width)))
    model.add("relu_fc1", ReLU())
    model.add("fc2", Linear(sampler.linear(8 * width, 8 * width), sampler.bias(8 * width)))
    model.add("relu_fc2", ReLU())
    model.add("fc3", Linear(sampler.linear(10, 8 * width), sampler.bias(10)))
    return model


def _basic_block(
    model: Model,
    sampler: _WeightSampler,
    prefix: str,
    src: str,
    c_in: int,
    c_out: int,
    stride: int,
) -> str:
    """ResNet-18/34 basic block; returns the output node name."""
    model.add(
        f"{prefix}.conv1",
        Conv2d(sampler.conv(c_out, c_in, 3), stride=stride, padding=1),
        inputs=(src,),
    )
    g, b = sampler.bn(c_out)
    model.add(f"{prefix}.bn1", BatchNorm(g, b))
    model.add(f"{prefix}.relu1", ReLU())
    model.add(
        f"{prefix}.conv2", Conv2d(sampler.conv(c_out, c_out, 3), padding=1)
    )
    g, b = sampler.bn(c_out)
    model.add(f"{prefix}.bn2", BatchNorm(g, b))
    shortcut = src
    if stride != 1 or c_in != c_out:
        model.add(
            f"{prefix}.down",
            Conv2d(sampler.conv(c_out, c_in, 1), stride=stride),
            inputs=(src,),
        )
        g, b = sampler.bn(c_out)
        model.add(f"{prefix}.down_bn", BatchNorm(g, b))
        shortcut = f"{prefix}.down_bn"
    model.add(f"{prefix}.add", Add(), inputs=(f"{prefix}.bn2", shortcut))
    model.add(f"{prefix}.relu2", ReLU())
    return f"{prefix}.relu2"


def _bottleneck_block(
    model: Model,
    sampler: _WeightSampler,
    prefix: str,
    src: str,
    c_in: int,
    c_mid: int,
    stride: int,
) -> Tuple[str, int]:
    """ResNet-50 bottleneck (1x1 -> 3x3 -> 1x1, expansion 4)."""
    c_out = 4 * c_mid
    model.add(
        f"{prefix}.conv1", Conv2d(sampler.conv(c_mid, c_in, 1)), inputs=(src,)
    )
    g, b = sampler.bn(c_mid)
    model.add(f"{prefix}.bn1", BatchNorm(g, b))
    model.add(f"{prefix}.relu1", ReLU())
    model.add(
        f"{prefix}.conv2",
        Conv2d(sampler.conv(c_mid, c_mid, 3), stride=stride, padding=1),
    )
    g, b = sampler.bn(c_mid)
    model.add(f"{prefix}.bn2", BatchNorm(g, b))
    model.add(f"{prefix}.relu2", ReLU())
    model.add(f"{prefix}.conv3", Conv2d(sampler.conv(c_out, c_mid, 1)))
    g, b = sampler.bn(c_out)
    model.add(f"{prefix}.bn3", BatchNorm(g, b))
    shortcut = src
    if stride != 1 or c_in != c_out:
        model.add(
            f"{prefix}.down",
            Conv2d(sampler.conv(c_out, c_in, 1), stride=stride),
            inputs=(src,),
        )
        g, b = sampler.bn(c_out)
        model.add(f"{prefix}.down_bn", BatchNorm(g, b))
        shortcut = f"{prefix}.down_bn"
    model.add(f"{prefix}.add", Add(), inputs=(f"{prefix}.bn3", shortcut))
    model.add(f"{prefix}.relu3", ReLU())
    return f"{prefix}.relu3", c_out


def _resnet18(sampler: _WeightSampler, side: int, width: int) -> Model:
    model = Model("ResNet-18", (3, side, side))
    model.add("conv0", Conv2d(sampler.conv(width, 3, 3), padding=1))
    g, b = sampler.bn(width)
    model.add("bn0", BatchNorm(g, b))
    model.add("relu0", ReLU())
    src, c_in = "relu0", width
    plan = [(width, 1), (width, 1), (2 * width, 2), (2 * width, 1),
            (4 * width, 2), (4 * width, 1), (8 * width, 2), (8 * width, 1)]
    for i, (c_out, stride) in enumerate(plan):
        src = _basic_block(model, sampler, f"b{i}", src, c_in, c_out, stride)
        c_in = c_out
    final_side = model.shape_of(src)[1]
    model.add("gap", AvgPool2d(final_side), inputs=(src,))
    model.add("flatten", Flatten())
    model.add("fc", Linear(sampler.linear(10, c_in), sampler.bias(10)))
    return model


def _resnet50(sampler: _WeightSampler, side: int, width: int) -> Model:
    model = Model("ResNet-50", (3, side, side))
    model.add("conv0", Conv2d(sampler.conv(width, 3, 3), padding=1))
    g, b = sampler.bn(width)
    model.add("bn0", BatchNorm(g, b))
    model.add("relu0", ReLU())
    src, c_in = "relu0", width
    plan = [
        (width, 1, 3),        # stage 1: 3 bottlenecks
        (2 * width, 2, 4),    # stage 2: 4
        (4 * width, 2, 6),    # stage 3: 6
        (8 * width, 2, 3),    # stage 4: 3
    ]
    block = 0
    for c_mid, first_stride, count in plan:
        for k in range(count):
            stride = first_stride if k == 0 else 1
            src, c_in = _bottleneck_block(
                model, sampler, f"b{block}", src, c_in, c_mid, stride
            )
            block += 1
    final_side = model.shape_of(src)[1]
    model.add("gap", AvgPool2d(final_side), inputs=(src,))
    model.add("flatten", Flatten())
    model.add("fc", Linear(sampler.linear(10, c_in), sampler.bias(10)))
    return model


# -- calibration -----------------------------------------------------------------


def _tiny_transformer(
    sampler: _WeightSampler, seq: int, dim: int, heads: int, mlp: int
) -> Model:
    """Embedding -> positions -> attention block -> GELU MLP -> head.

    The input is a ``(1, 1, seq)`` tensor of uint8 token ids (vocab 256,
    so any synthetic image is a valid id sequence).
    """
    from repro.nn.transformer import (
        Embedding,
        PositionalEmbedding,
        add_attention_block,
        add_mlp_block,
    )

    model = Model("TinyTransformer", (1, 1, seq))
    table = sampler.rng.integers(-128, 128, (256, dim)).astype(np.int64)
    model.add("embed", Embedding(table))
    pos = sampler.rng.integers(-16, 16, (seq, dim)).astype(np.int64)
    model.add("pos", PositionalEmbedding(pos))
    src = add_attention_block(model, "blk0.attn", "pos", dim, heads, sampler)
    src = add_mlp_block(model, "blk0.mlp", src, dim, mlp, sampler)
    model.add("flatten", Flatten(), inputs=(src,))
    model.add("head", Linear(sampler.linear(10, seq * dim), sampler.bias(10)))
    return model


def _vit_slice(
    sampler: _WeightSampler,
    side: int,
    patch: int,
    dim: int,
    heads: int,
    mlp: int,
) -> Model:
    """One-block ViT slice: patchify -> linear projection -> transformer."""
    from repro.nn.transformer import (
        Patchify,
        PositionalEmbedding,
        add_attention_block,
        add_mlp_block,
    )

    model = Model("ViT-Slice", (1, side, side))
    model.add("patchify", Patchify(patch))
    n_patch = (side // patch) ** 2
    model.add(
        "proj", Linear(sampler.linear(dim, patch * patch), sampler.bias(dim))
    )
    pos = sampler.rng.integers(-16, 16, (n_patch, dim)).astype(np.int64)
    model.add("pos", PositionalEmbedding(pos))
    src = add_attention_block(model, "blk0.attn", "pos", dim, heads, sampler)
    src = add_mlp_block(model, "blk0.mlp", src, dim, mlp, sampler)
    model.add("flatten", Flatten(), inputs=(src,))
    model.add(
        "head", Linear(sampler.linear(10, n_patch * dim), sampler.bias(10))
    )
    return model


def calibrate(model: Model, num_images: int = 2, seed: int = 7) -> Model:
    """Set requantization shifts so every activation stays inside uint8.

    Walks nodes in topological order, accumulating worst-case magnitudes
    over a few synthetic images.  A conv/FC immediately followed by a
    BatchNorm keeps shift 0 (BN acts on the raw accumulator so fusion stays
    exact, §6.2); the BN carries the shift instead.
    """
    followers: Dict[str, List[str]] = {}
    for node in model.nodes:
        for src in node.inputs:
            followers.setdefault(src, []).append(node.name)

    def feeds_bn(name: str) -> bool:
        return any(
            isinstance(model.node(f).layer, BatchNorm)
            for f in followers.get(name, [])
        )

    def feeds_lut(name: str) -> bool:
        from repro.nn.transformer import ActivationLUT

        return any(
            isinstance(model.node(f).layer, ActivationLUT)
            for f in followers.get(name, [])
        )

    images = synthetic_images(model.input_shape, n=num_images, seed=seed)
    # Track the max |acc| seen per node across calibration images.
    max_acc: Dict[str, int] = {}
    for img in images:
        values = {INPUT: img}
        for node in model.nodes:
            ins = [values[s] for s in node.inputs]
            result = node.layer.forward(*ins)
            values[node.name] = result.out
            magnitude = int(np.max(np.abs(result.acc))) if result.acc.size else 0
            max_acc[node.name] = max(max_acc.get(node.name, 0), magnitude)
            # Update the shift on the fly so downstream layers see
            # realistically scaled inputs during calibration itself.
            if hasattr(node.layer, "requant") and not isinstance(
                node.layer, (AvgPool2d, Add)
            ):
                if not feeds_bn(node.name):
                    # Margin of 2x guards unseen inputs; 4x where the
                    # consumer is a lookup table, whose [-256, 255]
                    # domain rejects (not clips) any overshoot.
                    margin = 4 if feeds_lut(node.name) else 2
                    node.layer.requant = requant_shift(margin * max_acc[node.name])
                    values[node.name] = result.acc >> node.layer.requant
                else:
                    node.layer.requant = 0
                    values[node.name] = result.acc
    return model


# -- registry ---------------------------------------------------------------------------


#: Per-model construction parameters at each evaluation scale.  "full"
#: matches Table 4's FLOP inventory; "mini"/"micro" shrink spatial input
#: and widths for the pure-Python proving benchmarks (see DESIGN.md).
_SCALES = {
    "SHAL": {
        "full": dict(side=28, width=128),
        "mini": dict(side=14, width=32),
        "micro": dict(side=14, width=16),
    },
    "LCS": {
        "full": dict(side=32, widths=(6, 16, 120, 84)),
        "mini": dict(side=16, widths=(4, 8, 32, 16)),
        "micro": dict(side=16, widths=(3, 6, 16, 8)),
    },
    "LCL": {
        "full": dict(side=32, widths=(32, 64, 256, 84)),
        "mini": dict(side=16, widths=(8, 16, 64, 32)),
        "micro": dict(side=16, widths=(6, 12, 32, 16)),
    },
    "VGG16": {
        "full": dict(side=32, width=16),
        "mini": dict(side=32, width=4),
        "micro": dict(side=32, width=2),
    },
    "RES18": {
        "full": dict(side=32, width=16),
        "mini": dict(side=16, width=4),
        "micro": dict(side=16, width=2),
    },
    "RES50": {
        "full": dict(side=32, width=14),
        "mini": dict(side=16, width=4),
        "micro": dict(side=16, width=2),
    },
    "TINY": {
        "full": dict(seq=8, dim=8, heads=2, mlp=16),
        "mini": dict(seq=4, dim=4, heads=2, mlp=8),
        "micro": dict(seq=4, dim=4, heads=1, mlp=4),
    },
    "VIT": {
        "full": dict(side=8, patch=2, dim=8, heads=2, mlp=16),
        "mini": dict(side=4, patch=2, dim=4, heads=2, mlp=8),
        "micro": dict(side=4, patch=2, dim=4, heads=1, mlp=4),
    },
}

_BUILDERS = {
    "SHAL": _shallownet,
    "LCS": _lenet,
    "LCL": _lenet,
    "VGG16": _vgg16,
    "RES18": _resnet18,
    "RES50": _resnet50,
    "TINY": _tiny_transformer,
    "VIT": _vit_slice,
}


def _build(abbr: str, scale: str, seed: int, prune=None) -> Model:
    if abbr not in ALL_MODELS:
        raise KeyError(f"unknown model {abbr!r}; choose from {sorted(ALL_MODELS)}")
    if scale not in _SCALES[abbr]:
        raise KeyError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES[abbr])}"
        )
    sampler = _WeightSampler(seed)
    model = _BUILDERS[abbr](sampler, **_SCALES[abbr][scale])
    suffix = "" if scale == "full" else f"-{scale}"
    model.name = f"{ALL_MODELS[abbr].full_name}{suffix}"
    if prune is not None:
        # Prune before calibration so requant shifts fit the pruned net.
        from repro.nn.prune import PruneSpec, prune_model

        spec = PruneSpec.parse(prune)
        if spec.enabled:
            prune_model(model, spec)
    return calibrate(model)


MODEL_BUILDERS: Dict[str, Callable[..., Model]] = {
    abbr: (lambda a: lambda scale="full", seed=0: _build(a, scale, seed))(abbr)
    for abbr in ALL_MODELS
}

MODEL_ORDER = ["SHAL", "LCS", "LCL", "VGG16", "RES18", "RES50"]
TRANSFORMER_ORDER = ["TINY", "VIT"]


def build_model(abbr: str, scale: str = "full", seed: int = 0, prune=None) -> Model:
    """Build one of the paper's six networks (``scale`` = "full" | "mini"),
    or a transformer from :data:`TRANSFORMER_ORDER`.

    ``prune`` optionally applies magnitude pruning before calibration;
    it accepts anything :meth:`repro.nn.prune.PruneSpec.parse` does
    (e.g. ``"0.6,0.2"`` = structured,unstructured fractions).
    """
    if abbr not in ALL_MODELS:
        raise KeyError(f"unknown model {abbr!r}; choose from {sorted(ALL_MODELS)}")
    return _build(abbr, scale, seed, prune=prune)


def model_table(scale: str = "full") -> List[dict]:
    """Rows of Table 4: abbr, layer count, measured #FLOPs, paper #FLOPs."""
    rows = []
    for abbr in MODEL_ORDER:
        model = build_model(abbr, scale=scale)
        info = MODEL_INFO[abbr]
        rows.append(
            {
                "abbr": abbr,
                "network": info.full_name,
                "dataset": info.dataset,
                "layers": model.num_layers(),
                "flops_k": model.total_flops() // 1000,
                "paper_flops_k": info.paper_flops_k,
                "paper_accuracy": info.paper_accuracy,
                "params": model.num_params(),
            }
        )
    return rows
