"""zkSNARK-friendly quantization.

Design constraints (why this differs from e.g. gemmlowp):

* every value the circuit touches must be an *exact integer* — the circuit
  proves integer identities, never float rounding;
* requantization (int32 accumulator -> uint8 activation) must be provable
  with cheap gadgets, so we restrict it to a **right shift by a public
  power of two**: ``out = acc >> shift``.  The zk gadget for this is a
  remainder bit-decomposition (see :mod:`repro.core.circuit.gadgets`);
* clipping must never bind: shifts are calibrated on synthetic data so the
  shifted accumulator always fits uint8, and every forward pass asserts it.
  (ZEN [25] carries the same style of bit-width-aware constraints; folding
  the rare clip would add range-check gadgets without changing any of the
  paper's measured effects.)

Weights are symmetric int8 (zero-point 0), activations uint8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

UINT8_MAX = 255
INT8_MAX = 127
ACTIVATION_BITS = 8
WEIGHT_BITS = 8


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters for one tensor.

    These are the semantic contract a :class:`repro.lookup.LookupTable`
    carries for its input and output tensors: ``real = (q - zero_point) *
    scale`` over the integer range :attr:`range`.  The lookup argument
    proves the integer relation; the params say what real-valued function
    that relation encodes.
    """

    scale: float
    zero_point: int = 0
    bits: int = 8

    @classmethod
    def pow2(cls, shift: int, zero_point: int = 0, bits: int = 8) -> "QuantParams":
        """Power-of-two scale ``2^shift`` — the only scales the requant
        gadget (and therefore any in-circuit tensor) can realize."""
        return cls(scale=2.0**shift, zero_point=zero_point, bits=bits)

    @property
    def range(self) -> tuple:
        """Inclusive integer (lo, hi) this tensor's values must inhabit."""
        if self.zero_point == 0:  # symmetric/signed convention for weights
            m = 2 ** (self.bits - 1) - 1
            return (-m, m)
        return (0, 2**self.bits - 1)

    def quantize(self, real: np.ndarray) -> np.ndarray:
        q = np.round(real / self.scale) + self.zero_point
        lo, hi = self.range
        return np.clip(q, lo, hi).astype(np.int64)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return (q.astype(np.float64) - self.zero_point) * self.scale

    def assert_in_range(self, q: np.ndarray, context: str = "") -> np.ndarray:
        """Reject (never wrap) values outside this tensor's integer range.

        Circuit-side, the same guarantee comes from the range proof at the
        lookup input; plaintext-side an out-of-range value raises here so
        quantization bugs surface as errors, not field wraparound.
        """
        arr = np.asarray(q)
        lo, hi = self.range
        if arr.size and (int(arr.min()) < lo or int(arr.max()) > hi):
            raise ValueError(
                f"quantized value outside [{lo}, {hi}] in "
                f"{context or 'tensor'}: "
                f"[{int(arr.min())}, {int(arr.max())}] — "
                f"rejected, not wrapped"
            )
        return q


def quantize_weights(real: np.ndarray) -> np.ndarray:
    """Symmetric int8 quantization of a float weight tensor."""
    max_abs = float(np.max(np.abs(real))) or 1.0
    params = QuantParams(scale=max_abs / INT8_MAX, zero_point=0)
    return params.quantize(real)


def requant_shift(max_abs_acc: int) -> int:
    """Smallest right shift mapping ``[0, max_abs_acc]`` into uint8 range.

    ``acc >> shift <= 255`` for all observed accumulators.  Returns 0 when
    the accumulator already fits.
    """
    shift = 0
    acc = int(max_abs_acc)
    while (acc >> shift) > UINT8_MAX:
        shift += 1
    return shift


def apply_requant(acc: np.ndarray, shift: int) -> np.ndarray:
    """Exact power-of-two requantization (negative inputs floor toward -inf).

    The zk gadget proves ``acc = out * 2^shift + rem`` with
    ``0 <= rem < 2^shift``; numpy's ``>>`` on int64 implements exactly that
    floor semantics.
    """
    return acc >> shift


def assert_uint8(x: np.ndarray, context: str = "") -> np.ndarray:
    """Check the calibrated no-clipping invariant (see module docstring)."""
    if x.size and (int(x.min()) < 0 or int(x.max()) > UINT8_MAX):
        raise ValueError(
            f"activation escaped uint8 range in {context or 'layer'}: "
            f"[{int(x.min())}, {int(x.max())}] — recalibrate requant shifts"
        )
    return x
