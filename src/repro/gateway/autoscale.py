"""Autoscaling hooks: grow and shrink the worker fleet from telemetry.

The :class:`Autoscaler` runs a small policy loop against the same
telemetry gauges the gateway exports over ``/metrics``: when queued +
in-flight work per node exceeds ``scale_up_backlog`` it launches another
:class:`~repro.cluster.node.WorkerNode`, and when the fleet has been
idle for ``scale_down_idle`` seconds it drains one back down — never
dropping below ``min_nodes`` or climbing above ``max_nodes``.  Scale-ups
are rate limited by a ``cooldown`` so one burst doesn't overshoot the
fleet while freshly launched nodes are still warming their CRS caches.

Launch mechanics are pluggable:

* :class:`InProcessNodeLauncher` starts nodes inside the gateway process
  (inline proving threads — the right choice for tests and the crash
  benchmarks, where killing the gateway must take the whole fleet down
  with it);
* :class:`SubprocessNodeLauncher` shells out to
  ``python -m repro.cli cluster worker`` so each node gets its own
  process and multiprocessing pool, like a real deployment.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.node import WorkerNode


class InProcessNodeLauncher:
    """Run worker nodes as threads inside the current process."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        mode: str = "inline",
        pool_workers: int = 1,
        window: int = 2,
        prewarm: bool = False,
    ) -> None:
        self.address = address
        self.mode = mode
        self.pool_workers = pool_workers
        self.window = window
        self.prewarm = prewarm
        self._seq = 0

    def launch(self) -> WorkerNode:
        self._seq += 1
        node = WorkerNode(
            self.address,
            node_id=f"auto-{os.getpid()}-{self._seq}",
            mode=self.mode,
            pool_workers=self.pool_workers,
            window=self.window,
            prewarm=self.prewarm,
        )
        node.start()
        return node

    def drain(self, node: WorkerNode) -> None:
        node.stop()


class SubprocessNodeLauncher:
    """Run worker nodes as ``zeno cluster worker`` subprocesses."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        pool_workers: int = 1,
        window: int = 2,
        mode: str = "pool",
    ) -> None:
        self.address = address
        self.pool_workers = pool_workers
        self.window = window
        self.mode = mode

    def launch(self) -> subprocess.Popen:
        host, port = self.address
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "cluster", "worker",
                "--connect", f"{host}:{port}",
                "--pool-workers", str(self.pool_workers),
                "--window", str(self.window),
                "--mode", self.mode,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def drain(self, proc: subprocess.Popen) -> None:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


@dataclass
class AutoscalerConfig:
    min_nodes: int = 1
    max_nodes: int = 4
    # Scale up when (queued + in-flight) / live_nodes exceeds this.
    scale_up_backlog: float = 8.0
    # Scale down after this many seconds with an empty queue and no
    # in-flight jobs (and more than min_nodes running).
    scale_down_idle: float = 10.0
    poll_interval: float = 0.25
    cooldown: float = 1.0  # min seconds between scale-ups


class Autoscaler:
    """Policy loop: watch gauges, launch or drain worker nodes."""

    def __init__(
        self,
        coordinator,  # ClusterCoordinator (duck-typed for tests)
        launcher,
        config: Optional[AutoscalerConfig] = None,
    ) -> None:
        self.coordinator = coordinator
        self.launcher = launcher
        self.config = config or AutoscalerConfig()
        self._nodes: List[Any] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._idle_since: Optional[float] = None
        self._last_scale_up = 0.0
        self.scale_ups = 0
        self.scale_downs = 0

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "Autoscaler":
        for _ in range(self.config.min_nodes):
            self._scale_up()
        self._thread = threading.Thread(
            target=self._loop, name="gateway-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
        with self._lock:
            nodes, self._nodes = list(self._nodes), []
        for node in nodes:
            try:
                self.launcher.drain(node)
            except Exception:
                pass

    # -- policy ----------------------------------------------------------------------

    def _gauges(self) -> Tuple[int, int]:
        snap = self.coordinator.telemetry.snapshot()
        gauges = snap.get("gauges", {})
        backlog = int(gauges.get("queue_depth", 0)) + int(
            gauges.get("batcher_pending", 0)
        )
        return backlog, int(gauges.get("inflight_jobs", 0))

    def decide(self, backlog: int, inflight: int, now: float) -> int:
        """Return +1 (scale up), -1 (scale down), or 0. Pure policy."""
        cfg = self.config
        n = len(self._nodes)
        outstanding = backlog + inflight
        if outstanding > 0:
            self._idle_since = None
            if (
                n < cfg.max_nodes
                and outstanding / max(n, 1) > cfg.scale_up_backlog
                and now - self._last_scale_up >= cfg.cooldown
            ):
                return 1
            return 0
        if n <= cfg.min_nodes:
            self._idle_since = None
            return 0
        if self._idle_since is None:
            self._idle_since = now
            return 0
        if now - self._idle_since >= cfg.scale_down_idle:
            self._idle_since = None  # one drain per idle window
            return -1
        return 0

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            try:
                backlog, inflight = self._gauges()
                action = self.decide(backlog, inflight, time.monotonic())
                if action > 0:
                    self._scale_up()
                elif action < 0:
                    self._scale_down()
            except Exception:
                # Policy errors must never take down the gateway; the
                # next tick re-reads fresh gauges.
                continue

    def _scale_up(self) -> None:
        node = self.launcher.launch()
        with self._lock:
            self._nodes.append(node)
        self._last_scale_up = time.monotonic()
        self.scale_ups += 1

    def _scale_down(self) -> None:
        with self._lock:
            if len(self._nodes) <= self.config.min_nodes:
                return
            node = self._nodes.pop()
        try:
            self.launcher.drain(node)
        finally:
            self.scale_downs += 1

    # -- introspection ---------------------------------------------------------------

    @property
    def node_count(self) -> int:
        with self._lock:
            return len(self._nodes)

    def stats(self) -> Dict[str, Any]:
        return {
            "nodes": self.node_count,
            "min_nodes": self.config.min_nodes,
            "max_nodes": self.config.max_nodes,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
        }
