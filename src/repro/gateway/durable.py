""":class:`DurableCoordinator`: a crash-safe shell around the cluster.

The cluster coordinator keeps every job in memory; this wrapper gives it
a memory that survives SIGKILL:

* every accepted submission is appended to the :class:`JobJournal`
  (durable — the fsync happens before the caller gets its job id back);
* queue and dispatch transitions stream into the journal through the
  ``serve.JobQueue`` / ``serve.MicroBatcher`` observer hooks (non-durable
  — they ride along with the next group commit);
* terminal states land through the coordinator's terminal callback as
  durable ``done`` / ``failed`` records carrying the full result (proof
  bytes, public inputs, logits, artifact-store keys);
* on construction, the WAL is replayed: completed jobs come back as
  served-from-journal results (never re-proved), pending jobs re-enter
  the coordinator's ``serve.JobQueue`` via
  :func:`repro.gateway.journal.replay_into_queue` semantics — zero jobs
  lost, zero jobs double-proved.

Gateway job ids (``g-...``) are stable across restarts; the coordinator
ids they map to are an implementation detail of one coordinator epoch.
Submissions may carry a client ``request_id`` for idempotency: retrying
a submit whose ack was lost returns the original job instead of proving
twice.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, Optional

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator
from repro.gateway.journal import (
    JobJournal,
    JournalError,
    decode_image,
    encode_image,
)
from repro.serve.jobs import JobState, ProofJob


class GatewayJob:
    """Gateway-side view of one durable job."""

    __slots__ = (
        "gid", "tenant", "request_id", "spec", "state", "attempts",
        "result", "error", "coordinator_id", "recovered",
    )

    def __init__(
        self,
        gid: str,
        tenant: str,
        request_id: Optional[str],
        spec: Dict[str, Any],
    ) -> None:
        self.gid = gid
        self.tenant = tenant
        self.request_id = request_id
        self.spec = spec
        self.state = "queued"
        self.attempts = 0
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.coordinator_id: Optional[str] = None
        self.recovered = False  # replayed from the WAL after a restart

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "timed_out")

    def public_view(self) -> Dict[str, Any]:
        """JSON-safe status payload for the HTTP layer."""
        view = {
            "job_id": self.gid,
            "state": self.state,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "recovered": self.recovered,
        }
        if self.error:
            view["error"] = self.error
        return view


class DurableCoordinator:
    """Journal + coordinator + recovery, behind one synchronous API."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        journal: JobJournal,
    ) -> None:
        self.coordinator = coordinator
        self.journal = journal
        self._lock = threading.Lock()
        self._terminal_cond = threading.Condition(self._lock)
        self._jobs: Dict[str, GatewayJob] = {}
        self._by_coordinator_id: Dict[str, str] = {}
        self._request_index: Dict[str, str] = {}
        self._seq = 0
        self.recovered_pending = 0  # jobs requeued by WAL replay
        self.recovered_completed = 0  # results served from the journal

        # Journal hooks: queue transitions (serve.JobQueue observer),
        # dispatch transitions (serve.MicroBatcher observer), terminal
        # records (coordinator terminal callback).
        coordinator._queue.observer = self._on_queued
        coordinator._batcher.observer = self._on_dispatched
        coordinator.add_terminal_callback(self._on_terminal)

        self._recover()

    # -- recovery --------------------------------------------------------------------

    def _recover(self) -> None:
        state = self.journal.state
        pending = sorted(
            state.pending(), key=lambda j: j.spec.get("seq", 0)
        )
        for rec in state.jobs.values():
            job = GatewayJob(
                gid=rec.gid,
                tenant=rec.spec.get("tenant", "default"),
                request_id=rec.spec.get("request_id"),
                spec=rec.spec,
            )
            job.state = rec.state if rec.terminal else "queued"
            job.attempts = rec.attempts
            job.result = rec.result
            job.error = rec.error
            job.recovered = True
            self._jobs[job.gid] = job
            if job.request_id:
                self._request_index[job.request_id] = job.gid
            self._seq = max(self._seq, int(rec.spec.get("seq", 0)))
        self.recovered_completed = sum(
            1 for j in self._jobs.values() if j.state == "done"
        )
        # Re-enqueue every non-terminal job into the (fresh) coordinator:
        # this IS the WAL-replay-into-serve.JobQueue path — submit()
        # pushes into the coordinator's JobQueue with a new epoch-local
        # id that we map back to the stable gateway id.
        for rec in pending:
            self._enqueue(self._jobs[rec.gid], self._image_for(rec.spec))
            self.recovered_pending += 1

    @staticmethod
    def _image_for(spec: Dict[str, Any]) -> np.ndarray:
        if "image" in spec:
            return decode_image(spec["image"])
        from repro.nn.data import synthetic_images
        from repro.nn.models import build_model

        shape = build_model(
            spec["model"], scale=spec["scale"], seed=spec["seed"]
        ).input_shape
        return synthetic_images(shape, n=1, seed=spec["image_seed"])[0]

    def _enqueue(self, job: GatewayJob, image: np.ndarray) -> None:
        spec = job.spec
        cid = self.coordinator.submit(
            spec["model"],
            image,
            scale=spec["scale"],
            seed=spec["seed"],
            privacy=spec["privacy"],
            priority=spec.get("priority", 0),
            timeout=spec.get("timeout"),
            tenant=job.tenant,
        )
        with self._lock:
            job.coordinator_id = cid
            self._by_coordinator_id[cid] = job.gid

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        model: str,
        *,
        image: Optional[np.ndarray] = None,
        image_seed: Optional[int] = None,
        scale: str = "mini",
        seed: int = 0,
        privacy: str = "one-private",
        priority: int = 0,
        timeout: Optional[float] = None,
        tenant: str = "default",
        request_id: Optional[str] = None,
    ) -> str:
        """Durably accept one job; returns its stable gateway id.

        The id is handed back only after the submit record is fsynced:
        an acked job survives any later crash.  A ``request_id`` seen
        before (this run or any previous one) returns the original job.
        """
        if request_id:
            with self._lock:
                gid = self._request_index.get(request_id)
                if gid is not None:
                    return gid
        if image is None and image_seed is None:
            raise ValueError("provide an image or an image_seed")
        gid = f"g-{uuid.uuid4().hex[:12]}"
        with self._lock:
            self._seq += 1
            seq = self._seq
        spec: Dict[str, Any] = {
            "t": "submit",
            "gid": gid,
            "seq": seq,
            "ts": time.time(),
            "tenant": tenant,
            "request_id": request_id,
            "model": model,
            "scale": scale,
            "seed": seed,
            "privacy": privacy,
            "priority": priority,
            "timeout": timeout,
        }
        if image is not None:
            spec["image"] = encode_image(image)
        else:
            spec["image_seed"] = int(image_seed)
        job = GatewayJob(gid, tenant, request_id, spec)
        with self._lock:
            self._jobs[gid] = job
            if request_id:
                self._request_index[request_id] = gid
        # Durable ack: the record is on disk before the caller sees gid.
        self.journal.append(spec, durable=True)
        self._enqueue(job, image if image is not None
                      else self._image_for(spec))
        return gid

    # -- journal hooks (coordinator threads) -----------------------------------------

    def _gid_for(self, coordinator_id: str) -> Optional[str]:
        with self._lock:
            return self._by_coordinator_id.get(coordinator_id)

    def _on_queued(self, proof_job: ProofJob, delay: float) -> None:
        gid = self._gid_for(proof_job.job_id)
        if gid is None:
            return
        self._append_observability(
            {"t": "queued", "gid": gid, "attempts": proof_job.attempts,
             "delay": round(delay, 4)}
        )

    def _on_dispatched(self, batch) -> None:
        for proof_job in batch.jobs:
            gid = self._gid_for(proof_job.job_id)
            if gid is None:
                continue
            self._append_observability(
                {"t": "dispatched", "gid": gid,
                 "batch_id": batch.batch_id}
            )

    def _append_observability(self, record: Dict[str, Any]) -> None:
        """Transition records are best-effort: coordinator threads may
        still be draining when the journal closes at shutdown, and a
        dropped queued/dispatched record only loses telemetry, never
        correctness (recovery re-proves anything non-terminal)."""
        try:
            self.journal.append(record)
        except JournalError:
            pass

    def _on_terminal(self, proof_job: ProofJob) -> None:
        gid = self._gid_for(proof_job.job_id)
        if gid is None:
            return
        with self._lock:
            job = self._jobs.get(gid)
            if job is None or job.terminal:
                return  # never write a second terminal record
        state = proof_job.state
        if state is JobState.DONE and proof_job.result is not None:
            res = proof_job.result
            record = {
                "t": "done",
                "gid": gid,
                "attempts": proof_job.attempts,
                "proof": res.proof.hex(),
                "public_inputs": [str(v) for v in res.public_inputs],
                "logits": [int(v) for v in res.logits],
                "batch_size": res.batch_size,
                "worker_pid": res.worker_pid,
                "store_keys": dict(res.store_keys),
            }
        else:
            record = {
                "t": "failed",
                "gid": gid,
                "state": state.value,
                "error": proof_job.error,
                "attempts": proof_job.attempts,
            }
        # Durable before visible: a client must never observe a result
        # that a crash could take back.
        self.journal.append(record, durable=True)
        with self._terminal_cond:
            job.attempts = proof_job.attempts
            if record["t"] == "done":
                job.state = "done"
                job.result = record
            else:
                job.state = state.value
                job.error = proof_job.error
            self._terminal_cond.notify_all()
        self.journal.compact()  # no-op below the size threshold

    # -- queries ---------------------------------------------------------------------

    def job(self, gid: str) -> Optional[GatewayJob]:
        with self._lock:
            return self._jobs.get(gid)

    def status(self, gid: str) -> Optional[Dict[str, Any]]:
        job = self.job(gid)
        if job is None:
            return None
        view = job.public_view()
        if not job.terminal and job.coordinator_id is not None:
            try:
                live = self.coordinator.status(job.coordinator_id)
                view["state"] = (
                    live.value if not live.terminal else view["state"]
                )
            except KeyError:
                pass
        return view

    def result_view(self, gid: str) -> Optional[Dict[str, Any]]:
        """JSON-safe result payload, or None if not DONE yet."""
        job = self.job(gid)
        if job is None or job.state != "done" or job.result is None:
            return None
        res = job.result
        payload = {
            "job_id": gid,
            "state": "done",
            "proof": res["proof"],
            "public_inputs": list(res["public_inputs"]),
            "logits": list(res["logits"]),
            "attempts": res.get("attempts", job.attempts),
            "batch_size": res.get("batch_size"),
            "store_keys": res.get("store_keys", {}),
            "recovered": job.recovered,
        }
        vk_key = (res.get("store_keys") or {}).get("vk")
        if vk_key:
            try:
                payload["vk"] = self.coordinator.store.get(vk_key).hex()
            except KeyError:
                payload["vk"] = None  # evicted / pre-restart artifact
        return payload

    def wait_terminal(
        self, gid: str, timeout: Optional[float] = None
    ) -> Optional[GatewayJob]:
        """Block until ``gid`` is terminal (or timeout); returns the job."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal_cond:
            job = self._jobs.get(gid)
            if job is None:
                return None
            while not job.terminal:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._terminal_cond.wait(timeout=remaining)
            return job

    def jobs_snapshot(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def stats(self) -> Dict[str, Any]:
        snap = self.coordinator.stats()
        snap["journal"] = self.journal.stats()
        snap["gateway_jobs"] = dict(
            self.jobs_snapshot(),
            recovered_pending=self.recovered_pending,
            recovered_completed=self.recovered_completed,
        )
        return snap

    def close(self) -> None:
        self.journal.close()
