"""Crash-durable job journal: an append-only WAL with group-commit fsync.

Every gateway-visible event — job submission, queue/dispatch transition,
terminal result — is one length-prefixed, CRC-protected JSON record
appended to a single file::

    u32 body_len | u32 crc32(body) | body (UTF-8 JSON, one object)

Durability model
----------------

* ``append(record, durable=True)`` returns only after the record is
  fsynced.  Concurrent durable appends share one fsync (leader-based
  group commit with a small gathering window), so a burst of submissions
  pays ~one ``fsync`` per batch, not one per job.
* A SIGKILL can leave a *torn tail*: a partially written final record.
  Replay stops at the first record whose length prefix overruns the file
  or whose CRC mismatches, and re-opening for append truncates the tail
  — so the journal on disk is always a clean prefix of what was written.
  Because records are appended (and fsynced) in order, a durable record
  implies every earlier record is durable too: a job's ``done`` record
  can never survive a crash that its ``submit`` record did not.
* Compaction rewrites the journal to a temp file (submits of live jobs +
  the submit/terminal pair of the most recent terminal jobs), fsyncs it,
  and atomically ``os.replace``s the old file.

Recovery invariants (what :func:`recover_state` guarantees)
-----------------------------------------------------------

1. **Zero lost** — every job whose ``submit`` record is durable appears
   in the recovered state; if no terminal record follows, the job is
   *pending* and must be re-enqueued.
2. **Zero double-proved** — a job with a durable ``done`` record is
   terminal in the recovered state and must NOT be re-enqueued; its
   result (proof bytes, public inputs, logits) is served straight from
   the journal.  A job killed *between* proving and the ``done`` fsync
   is re-proved on recovery, but then carries exactly one durable
   ``done`` record — ``RecoveredState.duplicate_done`` counts violations
   and the soak benchmark asserts it stays zero.
3. Replaying any byte-prefix of a journal yields the recovered state of
   some record-prefix — torn tails degrade to "fewer events seen",
   never to corrupted jobs (property-tested in
   ``tests/test_gateway_journal.py``).
"""

from __future__ import annotations

import base64
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

_PREFIX = struct.Struct(">II")  # body_len, crc32(body)
JOURNAL_VERSION = 1

# A single record far beyond this is corruption, not data (full results
# for the mini models are a few KB).
MAX_RECORD_BYTES = 64 << 20

TERMINAL_STATES = ("done", "failed", "timed_out")


class JournalError(RuntimeError):
    """Raised on misuse (appending to a closed journal, bad records)."""


# -- record codec ------------------------------------------------------------------


def encode_record(record: Dict[str, Any]) -> bytes:
    body = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_RECORD_BYTES:
        raise JournalError(f"record of {len(body)} bytes exceeds cap")
    return _PREFIX.pack(len(body), zlib.crc32(body)) + body


def encode_image(image: np.ndarray) -> Dict[str, Any]:
    """JSON-safe ndarray: dtype + shape + base64 of the raw bytes."""
    arr = np.ascontiguousarray(image)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_image(spec: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(spec["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
    return arr.reshape(tuple(spec["shape"])).copy()


def iter_records(path) -> Iterator[Dict[str, Any]]:
    """Yield every intact record; stop silently at a torn/corrupt tail."""
    for record, _ in _iter_records_with_offsets(path):
        yield record


def _iter_records_with_offsets(path):
    path = Path(path)
    if not path.exists():
        return
    with path.open("rb") as fh:
        data = fh.read()
    offset = 0
    while offset + _PREFIX.size <= len(data):
        length, crc = _PREFIX.unpack_from(data, offset)
        body_start = offset + _PREFIX.size
        body_end = body_start + length
        if length > MAX_RECORD_BYTES or body_end > len(data):
            return  # torn tail: length prefix overruns the file
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            return  # torn/corrupt tail: record never fully landed
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(record, dict):
            return
        yield record, body_end
        offset = body_end


def valid_prefix_length(path) -> int:
    """Byte length of the longest clean record-prefix of ``path``."""
    last = 0
    for _, end in _iter_records_with_offsets(path):
        last = end
    return last


# -- recovered state ---------------------------------------------------------------


@dataclass
class RecoveredJob:
    """One job reconstructed from the WAL."""

    gid: str
    spec: Dict[str, Any]  # the submit record
    state: str = "queued"  # queued | running | done | failed | timed_out
    attempts: int = 0
    result: Optional[Dict[str, Any]] = None  # the done record, if any
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass
class RecoveredState:
    """Everything :func:`recover_state` can prove from a journal."""

    jobs: Dict[str, RecoveredJob] = field(default_factory=dict)
    request_index: Dict[str, str] = field(default_factory=dict)
    records: int = 0
    submits: int = 0
    done_records: int = 0
    duplicate_done: int = 0  # >0 would mean a job was double-proved
    orphan_records: int = 0  # transitions for gids with no submit record

    def pending(self) -> List[RecoveredJob]:
        """Jobs with no durable terminal record — must be re-enqueued.

        A job that was RUNNING at the crash is pending too: its result
        never committed, so re-proving it cannot double-count.
        """
        return [job for job in self.jobs.values() if not job.terminal]

    def completed(self) -> List[RecoveredJob]:
        return [
            job for job in self.jobs.values() if job.state == "done"
        ]

    def apply(self, record: Dict[str, Any]) -> None:
        self.records += 1
        kind = record.get("t")
        if kind == "header":
            return
        gid = record.get("gid")
        if kind == "submit":
            self.submits += 1
            if gid in self.jobs:  # replayed submit (compaction artifact)
                return
            job = RecoveredJob(gid=gid, spec=record)
            self.jobs[gid] = job
            rid = record.get("request_id")
            if rid:
                self.request_index[rid] = gid
            return
        job = self.jobs.get(gid)
        if job is None:
            self.orphan_records += 1
            return
        if kind == "queued":
            if not job.terminal:
                job.state = "queued"
                job.attempts = int(record.get("attempts", job.attempts))
        elif kind == "dispatched":
            if not job.terminal:
                job.state = "running"
        elif kind == "done":
            self.done_records += 1
            if job.state == "done":
                self.duplicate_done += 1
                return
            job.state = "done"
            job.result = record
            job.attempts = int(record.get("attempts", job.attempts))
        elif kind == "failed":
            if not job.terminal:
                job.state = record.get("state", "failed")
                job.error = record.get("error")
                job.attempts = int(record.get("attempts", job.attempts))


def recover_state(path) -> RecoveredState:
    """Replay every intact record of ``path`` into a consistent state."""
    state = RecoveredState()
    for record in iter_records(path):
        state.apply(record)
    return state


def replay_into_queue(state: RecoveredState, queue) -> List[str]:
    """Push every pending recovered job into a ``serve.JobQueue``.

    Reconstructs full :class:`~repro.serve.jobs.ProofJob` objects (images
    included) so a restarted coordinator picks up exactly where the
    crashed one stopped.  Returns the pushed gids in submit order.
    """
    from repro.serve.jobs import ProofJob

    pushed = []
    for job in sorted(state.pending(), key=lambda j: j.spec.get("seq", 0)):
        spec = job.spec
        if "image" in spec:
            image = decode_image(spec["image"])
        else:
            from repro.nn.data import synthetic_images
            from repro.nn.models import build_model

            shape = build_model(
                spec["model"], scale=spec["scale"], seed=spec["seed"]
            ).input_shape
            image = synthetic_images(
                shape, n=1, seed=spec["image_seed"]
            )[0]
        proof_job = ProofJob(
            job_id=job.gid,
            model=spec["model"],
            image=image,
            scale=spec["scale"],
            seed=spec["seed"],
            privacy=spec["privacy"],
            priority=spec.get("priority", 0),
            timeout=spec.get("timeout"),
            tenant=spec.get("tenant", "default"),
        )
        proof_job.submitted_at = time.monotonic()
        queue.push(proof_job)
        pushed.append(job.gid)
    return pushed


# -- the journal -------------------------------------------------------------------


class JobJournal:
    """Append-only WAL with leader-based group-commit fsync batching.

    ``append(..., durable=True)`` blocks until the record is fsynced;
    concurrent durable appenders elect one leader that waits a short
    ``batch_window`` for stragglers, fsyncs once, and releases everyone
    whose record made it to disk.  Non-durable appends (observability
    transitions) ride along with the next durable flush.
    """

    def __init__(
        self,
        path,
        *,
        batch_window: float = 0.002,
        retain_terminal: Optional[int] = None,
        compact_min_bytes: int = 4 << 20,
    ) -> None:
        self.path = Path(path)
        self.batch_window = batch_window
        self.retain_terminal = retain_terminal
        self.compact_min_bytes = compact_min_bytes

        self.appends = 0
        self.fsyncs = 0
        self.compactions = 0
        self.torn_bytes_dropped = 0

        self._lock = threading.Lock()  # guards the file handle + counters
        self._flush_cond = threading.Condition()
        self._flushing = False
        self._written_seq = 0
        self._flushed_seq = 0
        self._closed = False

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.state = recover_state(self.path)
        valid = valid_prefix_length(self.path)
        size = self.path.stat().st_size if self.path.exists() else 0
        if size > valid:
            # Torn tail from a previous crash: truncate to the clean
            # prefix so new records append at a record boundary.
            self.torn_bytes_dropped = size - valid
            with self.path.open("rb+") as fh:
                fh.truncate(valid)
        self._file = self.path.open("ab")
        if self.state.records == 0:
            self.append(
                {"t": "header", "version": JOURNAL_VERSION,
                 "created": time.time()},
                durable=True,
            )

    # -- appends ---------------------------------------------------------------------

    def append(self, record: Dict[str, Any], durable: bool = False) -> None:
        frame = encode_record(record)
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            self._file.write(frame)
            self.appends += 1
            self._written_seq += 1
            seq = self._written_seq
            self.state.apply(record)
        if durable:
            self._commit(seq)

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        with self._lock:
            seq = self._written_seq
        if seq:
            self._commit(seq)

    def _commit(self, seq: int) -> None:
        with self._flush_cond:
            while self._flushed_seq < seq:
                if not self._flushing:
                    self._flushing = True
                    break
                self._flush_cond.wait()
            else:
                return  # an earlier leader already made us durable
        # Leader: give concurrent appenders a moment to pile in, then
        # pay one fsync for the whole batch.
        if self.batch_window > 0:
            time.sleep(self.batch_window)
        with self._lock:
            if self._closed:
                flushed = self._written_seq
            else:
                self._file.flush()
                os.fsync(self._file.fileno())
                self.fsyncs += 1
                flushed = self._written_seq
        with self._flush_cond:
            self._flushed_seq = max(self._flushed_seq, flushed)
            self._flushing = False
            self._flush_cond.notify_all()

    # -- compaction ------------------------------------------------------------------

    def compact(self, force: bool = False) -> bool:
        """Rewrite the journal dropping history for old terminal jobs.

        Keeps: the header, the ``submit`` record of every live job, and
        the ``submit`` + terminal record of the ``retain_terminal`` most
        recent terminal jobs (all of them when the bound is None).
        Returns True if a rewrite happened.
        """
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            size = self.path.stat().st_size
            if not force and size < self.compact_min_bytes:
                return False
            self._file.flush()
            os.fsync(self._file.fileno())

            terminal = [
                job for job in self.state.jobs.values() if job.terminal
            ]
            keep_terminal = terminal
            if self.retain_terminal is not None:
                keep_terminal = sorted(
                    terminal, key=lambda j: j.spec.get("seq", 0)
                )[-self.retain_terminal:]

            records: List[Dict[str, Any]] = [
                {"t": "header", "version": JOURNAL_VERSION,
                 "created": time.time(),
                 "compactions": self.compactions + 1}
            ]
            ordered = sorted(
                list(self.state.pending()) + list(keep_terminal),
                key=lambda j: j.spec.get("seq", 0),
            )
            for job in ordered:
                records.append(job.spec)
                if job.state == "done" and job.result is not None:
                    records.append(job.result)
                elif job.terminal:
                    records.append(
                        {"t": "failed", "gid": job.gid,
                         "state": job.state, "error": job.error,
                         "attempts": job.attempts}
                    )

            tmp = self.path.with_suffix(self.path.suffix + ".compact")
            with tmp.open("wb") as fh:
                for record in records:
                    fh.write(encode_record(record))
                fh.flush()
                os.fsync(fh.fileno())
            self._file.close()
            os.replace(tmp, self.path)
            self._fsync_dir()
            self._file = self.path.open("ab")
            self.state = recover_state(self.path)
            self.compactions += 1
            return True

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            size = self.path.stat().st_size if self.path.exists() else 0
            return {
                "path": str(self.path),
                "bytes": size,
                "appends": self.appends,
                "fsyncs": self.fsyncs,
                "compactions": self.compactions,
                "torn_bytes_dropped": self.torn_bytes_dropped,
                "jobs": len(self.state.jobs),
                "pending": sum(
                    1 for j in self.state.jobs.values() if not j.terminal
                ),
                "duplicate_done": self.state.duplicate_done,
            }

    def close(self) -> None:
        self.sync()
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
