"""``repro.gateway`` — durable HTTP front door for the proving cluster.

The cluster coordinator (`repro.cluster`) holds every job in memory and
speaks a bespoke TCP protocol: a coordinator crash loses all queued work
and only the ``zeno`` CLI can submit jobs.  This package adds the three
pieces a production front door needs:

* :mod:`repro.gateway.journal` — a crash-durable append-only WAL
  recording every job submission, state transition, and result, with
  group-commit fsync batching, torn-tail recovery, and log compaction;
* :mod:`repro.gateway.durable` — :class:`DurableCoordinator`, wrapping a
  :class:`~repro.cluster.coordinator.ClusterCoordinator` with the
  journal: acked submissions survive a SIGKILL, recovery replays the WAL
  back into the coordinator's ``serve.JobQueue``, and completed jobs are
  never re-proved (exactly-once results);
* :mod:`repro.gateway.http` — an asyncio HTTP/JSON server with
  ``submit`` / ``status`` / ``result`` / ``metrics`` / ``healthz``
  endpoints, API-key auth, per-tenant token-bucket rate limiting, and
  weighted fair-share admission;
* :mod:`repro.gateway.autoscale` — an autoscaler watching queue-depth /
  in-flight gauges and spawning or draining
  :class:`~repro.cluster.node.WorkerNode` daemons between configurable
  min/max bounds.

``python -m repro.cli gateway`` wires all four together.
"""

from repro.gateway.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    InProcessNodeLauncher,
    SubprocessNodeLauncher,
)
from repro.gateway.durable import DurableCoordinator, GatewayJob
from repro.gateway.http import GatewayConfig, GatewayServer
from repro.gateway.journal import (
    JobJournal,
    JournalError,
    RecoveredJob,
    RecoveredState,
    iter_records,
    recover_state,
    replay_into_queue,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "DurableCoordinator",
    "GatewayConfig",
    "GatewayJob",
    "GatewayServer",
    "InProcessNodeLauncher",
    "JobJournal",
    "JournalError",
    "RecoveredJob",
    "RecoveredState",
    "SubprocessNodeLauncher",
    "iter_records",
    "recover_state",
    "replay_into_queue",
]
