"""Asyncio HTTP/JSON front door for the durable coordinator.

No third-party web framework is available in the toolchain, so this is
a deliberately small HTTP/1.1 server on raw ``asyncio`` streams: enough
for keep-alive JSON request/response traffic from the bench harness and
``curl``, with none of the framework surface.  Endpoints:

==========================  =====================================================
``POST /submit``            durably accept a job; 200 ``{"job_id": ...}`` only
                            after the WAL fsync (crash-safe ack)
``GET /status/<job_id>``    job state (stable across coordinator restarts)
``GET /result/<job_id>``    proof + public inputs + logits once DONE (202 while
                            pending)
``GET /metrics``            coordinator + journal + autoscaler + HTTP telemetry
``GET /healthz``            liveness (never requires auth)
==========================  =====================================================

Multi-tenancy: requests authenticate with ``X-API-Key``; each key maps
to a tenant.  Every tenant has a token bucket (``rate`` req/s, ``burst``
capacity — 429 when empty) and a fair-share weight: concurrent submits
are admitted by stride scheduling, so a tenant with weight 3 gets 3x
the admission slots of a weight-1 tenant under contention, and an idle
tenant's share is redistributed instead of wasted.

The server runs its event loop in a dedicated thread; journal fsyncs
(the blocking part of a durable submit) run in a small executor pool so
group commit can batch concurrent submissions into one fsync.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

MAX_BODY_BYTES = 8 << 20
MAX_HEADER_BYTES = 64 << 10
KEEPALIVE_TIMEOUT = 75.0
_STRIDE_UNIT = 1 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class GatewayConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; bound port lands in GatewayServer.port
    # key -> tenant; empty dict disables auth (everything is "default"
    # unless the submit body names a tenant).
    api_keys: Dict[str, str] = field(default_factory=dict)
    # tenant -> fair-share weight (unlisted tenants get weight 1).
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    rate: float = 0.0  # token-bucket refill, requests/sec (0 = unlimited)
    burst: int = 64  # token-bucket capacity
    admission_workers: int = 8  # concurrent durable submits (group commit)


class TokenBucket:
    """Classic token bucket; ``rate`` tokens/sec up to ``burst``."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def try_take(self, n: float = 1.0) -> bool:
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class StrideScheduler:
    """Weighted fair-share pick among tenants with queued work.

    Each tenant advances a virtual ``pass`` by ``stride = UNIT/weight``
    per admission; the runnable tenant with the smallest pass goes next.
    A tenant becoming active after idling starts at the current global
    minimum, so idle time is redistributed, not banked.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        self._weights = weights
        self._passes: Dict[str, float] = {}
        self._queues: Dict[str, List[Any]] = {}

    def _stride(self, tenant: str) -> float:
        return _STRIDE_UNIT / max(self._weights.get(tenant, 1.0), 1e-9)

    def push(self, tenant: str, item: Any) -> None:
        queue = self._queues.setdefault(tenant, [])
        if not queue:  # tenant was idle: catch its pass up to the pack
            active = [
                self._passes.get(t, 0.0)
                for t, q in self._queues.items() if q
            ]
            floor = min(active) if active else 0.0
            self._passes[tenant] = max(self._passes.get(tenant, 0.0), floor)
        queue.append(item)

    def pop(self) -> Optional[Tuple[str, Any]]:
        runnable = [t for t, q in self._queues.items() if q]
        if not runnable:
            return None
        tenant = min(runnable, key=lambda t: self._passes.get(t, 0.0))
        self._passes[tenant] = (
            self._passes.get(tenant, 0.0) + self._stride(tenant)
        )
        return tenant, self._queues[tenant].pop(0)

    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())


class GatewayServer:
    """HTTP front end over a :class:`DurableCoordinator`."""

    def __init__(
        self,
        durable,  # DurableCoordinator
        config: Optional[GatewayConfig] = None,
        autoscaler=None,
    ) -> None:
        self.durable = durable
        self.config = config or GatewayConfig()
        self.autoscaler = autoscaler
        self.port: Optional[int] = None
        self.host = self.config.host
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(self.config.admission_workers, 2),
            thread_name_prefix="gateway-submit",
        )
        self._buckets: Dict[str, TokenBucket] = {}
        self.http_stats: Dict[str, Any] = {
            "requests": 0,
            "submitted": 0,
            "rate_limited": 0,
            "auth_failures": 0,
            "errors": 0,
            "admitted_by_tenant": {},
        }

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "GatewayServer":
        self._thread = threading.Thread(
            target=self._run_loop, name="gateway-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("gateway HTTP server failed to start")
        if self._startup_error is not None:
            raise RuntimeError(
                f"gateway HTTP server failed to bind: {self._startup_error}"
            )
        return self

    def stop(self) -> None:
        self._stopping.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._executor.shutdown(wait=False)

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # bind failure before ready
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._scheduler = StrideScheduler(self.config.tenant_weights)
        self._admit_wakeup = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        admitters = [
            asyncio.create_task(self._admission_worker())
            for _ in range(self.config.admission_workers)
        ]
        async with server:
            await self._shutdown_event.wait()
        for task in admitters:
            task.cancel()

    # -- fair-share admission --------------------------------------------------------

    async def _admission_worker(self) -> None:
        """Pull (kwargs, future) pairs off the stride scheduler and run
        the durable submit in the executor pool.  Multiple workers run
        concurrently so the journal's group commit can merge their
        fsyncs; fairness comes from pop() ordering, not worker count."""
        while True:
            picked = self._scheduler.pop()
            if picked is None:
                self._admit_wakeup.clear()
                await self._admit_wakeup.wait()
                continue
            tenant, (kwargs, future) = picked
            try:
                gid = await self._loop.run_in_executor(
                    self._executor,
                    lambda: self.durable.submit(**kwargs),
                )
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
                continue
            by_tenant = self.http_stats["admitted_by_tenant"]
            by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
            if not future.done():
                future.set_result(gid)

    async def _admit(self, tenant: str, kwargs: Dict[str, Any]) -> str:
        future: asyncio.Future = self._loop.create_future()
        self._scheduler.push(tenant, (kwargs, future))
        self._admit_wakeup.set()
        return await future

    # -- HTTP plumbing ---------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    raw = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        timeout=KEEPALIVE_TIMEOUT,
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionError,
                ):
                    break
                if len(raw) > MAX_HEADER_BYTES:
                    await self._respond(writer, 413, {"error": "headers too large"})
                    break
                method, path, headers, err = self._parse_head(raw)
                if err is not None:
                    await self._respond(writer, 400, {"error": err})
                    break
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413, {"error": "body too large"})
                    break
                body = await reader.readexactly(length) if length else b""
                self.http_stats["requests"] += 1
                try:
                    status, payload = await self._route(
                        method, path, headers, body
                    )
                except Exception as exc:
                    self.http_stats["errors"] += 1
                    status, payload = 500, {"error": repr(exc)}
                keep = headers.get("connection", "keep-alive") != "close"
                await self._respond(writer, status, payload, keep_alive=keep)
                if not keep:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    def _parse_head(raw: bytes):
        try:
            head = raw.decode("latin-1")
            lines = head.split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None, None, None, "malformed request line"
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path.split("?", 1)[0], headers, None

    async def _respond(
        self, writer, status: int, payload: Dict[str, Any],
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # -- routing ---------------------------------------------------------------------

    def _authenticate(self, headers: Dict[str, str]) -> Optional[str]:
        """Returns the tenant, or None if the request is unauthorized."""
        if not self.config.api_keys:
            return "default"
        key = headers.get("x-api-key", "")
        return self.config.api_keys.get(key)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.rate, self.config.burst)
            self._buckets[tenant] = bucket
        return bucket

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            return 200, {
                "ok": True,
                "nodes": len(self.durable.coordinator.live_nodes()),
                "pending_submits": self._scheduler.depth(),
            }
        tenant = self._authenticate(headers)
        if tenant is None:
            self.http_stats["auth_failures"] += 1
            return 401, {"error": "missing or unknown X-API-Key"}
        if self.config.rate > 0 and not self._bucket(tenant).try_take():
            self.http_stats["rate_limited"] += 1
            return 429, {"error": "rate limit exceeded", "tenant": tenant}

        if method == "POST" and path == "/submit":
            return await self._handle_submit(tenant, body)
        if method == "GET" and path.startswith("/status/"):
            view = self.durable.status(path[len("/status/"):])
            return (200, view) if view else (404, {"error": "unknown job"})
        if method == "GET" and path.startswith("/result/"):
            return self._handle_result(path[len("/result/"):])
        if method == "GET" and path == "/metrics":
            return 200, self._metrics()
        if path in ("/submit", "/metrics") or path.startswith(
            ("/status/", "/result/")
        ):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {path}"}

    async def _handle_submit(
        self, tenant: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            req = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be JSON"}
        if not isinstance(req, dict) or "model" not in req:
            return 400, {"error": "missing required field: model"}
        # Without auth, the body may name its tenant; with auth the API
        # key decides and the body field is ignored.
        if not self.config.api_keys:
            tenant = str(req.get("tenant", tenant))
        kwargs = {
            "model": req["model"],
            "scale": req.get("scale", "mini"),
            "seed": int(req.get("seed", 0)),
            "privacy": req.get("privacy", "one-private"),
            "priority": int(req.get("priority", 0)),
            "timeout": req.get("timeout"),
            "tenant": tenant,
            "request_id": req.get("request_id"),
            "image_seed": req.get("image_seed"),
        }
        if kwargs["image_seed"] is None:
            return 400, {"error": "missing required field: image_seed"}
        try:
            gid = await self._admit(tenant, kwargs)
        except (ValueError, KeyError) as exc:
            return 400, {"error": str(exc)}
        self.http_stats["submitted"] += 1
        return 200, {"job_id": gid, "tenant": tenant, "durable": True}

    def _handle_result(self, gid: str) -> Tuple[int, Dict[str, Any]]:
        job = self.durable.job(gid)
        if job is None:
            return 404, {"error": "unknown job"}
        if job.state == "done":
            view = self.durable.result_view(gid)
            if view is not None:
                return 200, view
        if job.terminal:  # failed / timed_out
            return 200, job.public_view()
        return 202, self.durable.status(gid)

    def _metrics(self) -> Dict[str, Any]:
        snap = self.durable.stats()
        snap["http"] = dict(
            self.http_stats, pending_submits=self._scheduler.depth()
        )
        if self.autoscaler is not None:
            snap["autoscaler"] = self.autoscaler.stats()
        return snap
