"""Stranded encoding — ZEN's [25] batching baseline for Table 2.

Stranded encoding targets the *both-private* setting, where every scalar
product costs a constraint (Eq. 2).  It packs ``s`` consecutive weight taps
into one field element and the matching feature taps into another in
**reversed** digit order:

    A = a_0 + a_1 d + ... + a_{s-1} d^(s-1)
    B = b_{s-1} + ... + b_1 d^(s-2) + b_0 d^(s-1)          (d = 2^seg)

so the product's *middle* digit collects exactly the wanted partial dot
product:

    A * B = ... + (a_0 b_0 + a_1 b_1 + ... + a_{s-1} b_{s-1}) d^(s-1) + ...

One multiplication constraint now covers ``s`` scalar products — but the
product occupies ``2s - 1`` digit positions, which caps the batch at
``s ~ (b_out/seg + 1) / 2`` (~4 for uint8 in a 254-bit field: Table 2's
"max saving 4x" versus knit's 8x).  And the middle digit must be *decoded*
out of the packed accumulator with a bit-decomposition gadget — the
hundreds of decoding constraints Table 2 charges stranded encoding, versus
zero for knit (whose packed value is simply required to be zero).

Packing itself is free: A and B are linear combinations of the
already-committed digit variables (encoding overhead 0, matching Table 2).
Negative operands are handled by the standard ``+2^(b-1)`` digit offset;
the offset correction folds into the final equality as free LC terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.r1cs.system import ConstraintSystem


@dataclass(frozen=True)
class StrandedParams:
    """Packing geometry for dots of length ``n`` with ``b_in``-bit data."""

    s: int
    n: int
    b_in: int = 8
    b_out: int = 254

    @property
    def segment_bits(self) -> int:
        """Bits one product digit can occupy after accumulation.

        A digit position collects up to ``s`` digit products per chunk and
        ``n/s`` chunks — ``n`` terms of ``2*b_in`` bits in the worst case.
        """
        return 2 * self.b_in + max(1, math.ceil(math.log2(self.n + 1))) + 1

    @property
    def delta(self) -> int:
        return 1 << self.segment_bits

    @property
    def num_product_segments(self) -> int:
        return 2 * self.s - 1

    def fits(self) -> bool:
        return self.num_product_segments * self.segment_bits <= self.b_out


def max_batch_size(n: int, b_in: int = 8, b_out: int = 254) -> int:
    """Largest ``s`` whose 2s-1 product digits fit the field (Table 2)."""
    s = 1
    while StrandedParams(s=s + 1, n=n, b_in=b_in, b_out=b_out).fits():
        s += 1
    return s


class StrandedEncoding:
    """Emit one both-private dot product with stranded tap packing."""

    def __init__(self, params: StrandedParams) -> None:
        if not params.fits():
            raise ValueError(
                f"stranded batch s={params.s} needs {params.num_product_segments}"
                f" x {params.segment_bits} bits > {params.b_out}-bit field"
            )
        self.params = params
        self.decoding_constraints_emitted = 0
        self.product_constraints_emitted = 0

    def emit(
        self,
        cs: ConstraintSystem,
        weights: Sequence[int],
        features: Sequence[int],
        tag: str = "stranded",
    ) -> int:
        """Prove ``ref = <w, x>`` with both operands private.

        Returns the public ref variable.  Multiplication constraints drop
        from ``n`` to ``ceil(n / s)``; decoding adds the bit-decomposition
        constraints recorded in :attr:`decoding_constraints_emitted`.
        """
        p = self.params
        field = cs.field
        weights = np.asarray(weights, dtype=np.int64)
        features = np.asarray(features, dtype=np.int64)
        if weights.shape != (p.n,) or features.shape != (p.n,):
            raise ValueError(f"expected two length-{p.n} vectors")
        offset = 1 << (p.b_in - 1)
        w_dig = weights + offset
        x_dig = features + offset
        if w_dig.min() < 0 or x_dig.min() < 0:
            raise ValueError("operands exceed the declared bit width")

        # Commit every digit once (these are the ordinary NN witnesses).
        w_vars = [cs.new_private(int(v)) for v in w_dig]
        x_vars = [cs.new_private(int(v)) for v in x_dig]

        # Chunked packed products: LC * LC = wire, one constraint per chunk.
        num_chunks = math.ceil(p.n / p.s)
        acc_lc = cs.lc()
        packed_acc = 0
        for c in range(num_chunks):
            lo = c * p.s
            hi = min(lo + p.s, p.n)
            a_lc = cs.lc()
            b_lc = cs.lc()
            a_val = 0
            b_val = 0
            for j in range(lo, hi):
                a_lc.add_term(w_vars[j], 1 << ((j - lo) * p.segment_bits))
                b_lc.add_term(
                    x_vars[j], 1 << ((p.s - 1 - (j - lo)) * p.segment_bits)
                )
                a_val += int(w_dig[j]) << ((j - lo) * p.segment_bits)
                b_val += int(x_dig[j]) << ((p.s - 1 - (j - lo)) * p.segment_bits)
            wire = cs.new_private((a_val * b_val) % field.modulus)
            cs.enforce(a_lc, b_lc, cs.lc_variable(wire), tag=f"{tag}/pack{c}")
            self.product_constraints_emitted += 1
            acc_lc.add_term(wire, 1)
            packed_acc += a_val * b_val

        # Commit the packed accumulator.
        s_var = cs.new_private(packed_acc % field.modulus)
        cs.enforce_equal(acc_lc, cs.lc_variable(s_var), tag=f"{tag}/acc")
        self.decoding_constraints_emitted += 1

        # Decode: full bit decomposition of the packed accumulator
        # (booleanity per bit) and recomposition — the Table 2 overhead.
        total_bits = p.num_product_segments * p.segment_bits
        recompose = cs.lc()
        middle_lc = cs.lc()
        middle_base = (p.s - 1) * p.segment_bits
        for i in range(total_bits):
            bit = (packed_acc >> i) & 1
            bit_var = cs.new_private(bit)
            bit_lc = cs.lc_variable(bit_var)
            cs.enforce(
                bit_lc, bit_lc - cs.lc_constant(1), cs.lc(), tag=f"{tag}/bool"
            )
            self.decoding_constraints_emitted += 1
            recompose.add_term(bit_var, 1 << i)
            if middle_base <= i < middle_base + p.segment_bits:
                middle_lc.add_term(bit_var, 1 << (i - middle_base))
        cs.enforce_equal(recompose, cs.lc_variable(s_var), tag=f"{tag}/recompose")
        self.decoding_constraints_emitted += 1

        # Offset correction: middle digit = sum (w+o)(x+o)
        #                  = <w,x> + o*sum(w+o) + o*sum(x+o) - n*o^2.
        ref_value = int(weights @ features)
        ref = cs.new_public(ref_value)
        correction = cs.lc()
        for var in w_vars:
            correction.add_term(var, offset)
        for var in x_vars:
            correction.add_term(var, offset)
        correction.add_term(0, (-p.n * offset * offset) % field.modulus)
        lhs = middle_lc - correction
        cs.enforce_equal(lhs, cs.lc_variable(ref), tag=f"{tag}/out")
        self.decoding_constraints_emitted += 1
        return ref

    # -- analytic comparison (Table 2) --------------------------------------------

    def total_constraints(self) -> int:
        return self.product_constraints_emitted + self.decoding_constraints_emitted

    def decoding_overhead(self) -> int:
        return self.decoding_constraints_emitted

    @staticmethod
    def naive_constraints(n: int) -> int:
        """Both-private without packing: Eq. 2 for one dot product."""
        return n + 1
