"""Privacy-type driven optimizations (§4).

* :mod:`repro.core.privacy.adaptive` — privacy-adaptive circuit generation:
  Eq. 2 (both private, ``n+1`` constraints per dot) vs Eq. 3 (one side
  public, 1 constraint per dot).
* :mod:`repro.core.privacy.knit`     — privacy-aware knit encoding: pack
  ``s`` low-bit equality checks into one 254-bit constraint.
* :mod:`repro.core.privacy.stranded` — ZEN's stranded encoding baseline for
  the Table 2 comparison.
"""

from repro.core.privacy.adaptive import constraints_for_dot
from repro.core.privacy.knit import KnitPacker, knit_batch_size
from repro.core.privacy.stranded import StrandedEncoding

__all__ = [
    "constraints_for_dot",
    "KnitPacker",
    "knit_batch_size",
    "StrandedEncoding",
]
