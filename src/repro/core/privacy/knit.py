"""Privacy-aware knit encoding (§4.2).

One equality check per dot product costs one constraint (Eq. 3), yet the
checked quantity occupies only ``2*b_in + ceil(log2 n)`` bits of a 254-bit
field element.  Knit encoding packs ``s`` such checks into a single
constraint:

    sum_j delta^j * expr_j == 0,      delta = 2^(bits per expression)

Because ``delta`` is a public scalar, building the packed linear
combination multiplies public coefficients only — zero extra constraints
(Table 2: encoding overhead 0, decoding overhead 0, max saving
``254 / (2*8 + log n)`` ~ 8x for uint8 data).

Batch-size selection follows the paper's formula: the largest ``s`` with
``s <= b_out / (2*b_in + ceil(log2 n))``.  We additionally reserve
``_SAFETY_BITS`` slack per slot so signed expression bounds (our
expressions may include requantization remainders, see
:mod:`repro.core.circuit.gadgets`) can never alias across slots.

Applicability: only when exactly one of weights/features is private
(Table 2) — with both private the per-term products are already wires and
the packing argument gives no constraint saving.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.field.counters import global_counter
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem

_SAFETY_BITS = 2


def expression_bits(dot_length: int, b_in: int = 8) -> int:
    """Bits one dot-product expression can occupy: ``2*b_in + ceil(log2 n)``."""
    n = max(int(dot_length), 1)
    return 2 * b_in + max(1, math.ceil(math.log2(n + 1)))


def knit_batch_size(
    dot_length: int, b_in: int = 8, b_out: int = 254
) -> int:
    """The paper's auto-selected batch size ``s`` (§4.2, Security Analysis).

    >>> knit_batch_size(1024)
    9
    """
    per_slot = expression_bits(dot_length, b_in)
    return max(1, b_out // per_slot)


class KnitPacker:
    """Accumulates zero-expressions and flushes packed equality constraints.

    Usage: for each dot product, build ``expr = LC(acc) - ref_terms`` (which
    an honest prover makes exactly zero) and call :meth:`push` with the bit
    bound of its honest-value range.  The packer multiplies each expression
    by the running ``delta^j`` (public scalars — free) and emits one
    constraint per ``s`` expressions.  Expressions from layers with
    different bounds are never mixed (a flush happens on bound change), so
    the non-overlap argument stays per-constraint.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        batch_size: Optional[int] = None,
        field_bits: int = 254,
        cache=None,
        tag: str = "",
    ) -> None:
        self.cs = cs
        self.forced_batch = batch_size
        self.field_bits = field_bits
        self.cache = cache  # optional frequency CacheService for coeff muls
        self.tag = tag
        self._pending: Optional[LinearCombination] = None
        self._count = 0
        self._slot_bits = 0
        self._delta_power = 1
        self.constraints_emitted = 0
        self.expressions_packed = 0

    # -- internals -----------------------------------------------------------

    def _capacity(self, slot_bits: int) -> int:
        if self.forced_batch is not None:
            return max(1, self.forced_batch)
        return max(1, self.field_bits // slot_bits)

    # -- public API ------------------------------------------------------------

    def push(self, expr: LinearCombination, slot_bits: int) -> None:
        """Add one zero-expression bounded by ``slot_bits`` bits.

        Folding ``delta^j * expr`` into the pending LC is the knit
        encoding's only arithmetic: public-coefficient multiplications
        (served by the frequency cache when one is attached) and "free"
        additions.
        """
        slot_bits = slot_bits + _SAFETY_BITS
        if self._pending is not None and slot_bits != self._slot_bits:
            self.flush()
        if self._pending is None:
            self._pending = expr.copy()
            self._slot_bits = slot_bits
            self._count = 1
            self._delta_power = 1
        else:
            field = self.cs.field
            p = field.modulus
            self._delta_power = (self._delta_power << self._slot_bits) % p
            factor = self._delta_power
            pending = self._pending.terms
            cache = self.cache
            n = len(expr.terms)
            if cache is not None:
                # One product table per (delta power, slot width): within a
                # push the right operand is fixed, so the pair key collapses
                # to the weight coefficient alone.  The table stays tiny —
                # "there are at most 256 values for uint8" (§6.1).
                table = cache.table_for((self._count, self._slot_bits))
                before = len(table)
                table_get = table.get
                for index, coeff in expr.terms.items():
                    product = table_get(coeff)
                    if product is None:
                        product = coeff * factor % p
                        table[coeff] = product
                    merged = (pending.get(index, 0) + product) % p
                    if merged:
                        pending[index] = merged
                    else:
                        pending.pop(index, None)
                added = len(table) - before
                cache.record(hits=n - added, misses=added)
            else:
                for index, coeff in expr.terms.items():
                    merged = (pending.get(index, 0) + coeff * factor) % p
                    if merged:
                        pending[index] = merged
                    else:
                        pending.pop(index, None)
            counter = global_counter()
            counter.lc_term += n
            counter.field_add += n
            counter.field_mul += n
            self._count += 1
        self.expressions_packed += 1
        if self._count >= self._capacity(slot_bits):
            self.flush()

    def flush(self) -> None:
        """Emit the pending packed constraint, if any."""
        if self._pending is None:
            return
        one = self.cs.lc_constant(1)
        zero = self.cs.lc()
        self.cs.enforce(self._pending, one, zero, tag=f"{self.tag}/knit")
        self.constraints_emitted += 1
        self._pending = None
        self._count = 0

    # -- reporting ----------------------------------------------------------------

    def saving_ratio(self) -> float:
        """Expressions per emitted constraint (the measured knit saving)."""
        if not self.constraints_emitted:
            return 1.0
        return self.expressions_packed / self.constraints_emitted
