"""Privacy-adaptive circuit generation (§4.1).

Privacy costs constraints; introduce it only where required:

* multiplying *public x private* folds the public value into an LC
  coefficient — **free**;
* multiplying *private x private* costs **one constraint** per product.

For a length-``n`` dot product this yields Eq. 2 (both private,
``n + 1`` constraints) versus Eq. 3 (one side public, ``1`` constraint).
This module provides both the standalone generators (used directly by unit
tests, Table 2/3 benches, and the compute primitives) and the analytic
count model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.lang.types import Privacy
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem


@dataclass(frozen=True)
class DotConstraintModel:
    """Analytic constraint counts for one length-``n`` dot product."""

    constraints: int
    wires: int  # private values introduced (Eq. 1's n contribution)


def constraints_for_dot(
    n: int, w_private: bool, x_private: bool, knit_batch: int = 1
) -> DotConstraintModel:
    """Constraint/wire counts per dot under each privacy combination.

    ``knit_batch`` amortizes the equality check when one side is public
    (§4.2); it must be 1 when both sides are private (Table 2).
    """
    if w_private and x_private:
        if knit_batch != 1:
            raise ValueError("knit encoding requires one public operand")
        # Eq. 2: n product constraints + 1 equality check; n product wires.
        return DotConstraintModel(constraints=n + 1, wires=n)
    if w_private or x_private:
        # Eq. 3: the public side becomes coefficients; only the (possibly
        # knit-amortized) equality check remains.
        return DotConstraintModel(constraints=1 if knit_batch == 1 else 0, wires=0)
    return DotConstraintModel(constraints=0, wires=0)  # fully public: no proof


def emit_dot_product(
    cs: ConstraintSystem,
    weights: Sequence[int],
    features: Sequence[int],
    w_privacy: Privacy,
    x_privacy: Privacy,
    ref_index: Optional[int] = None,
    tag: str = "dot",
) -> int:
    """Standalone privacy-adaptive dot-product circuit.

    Allocates the private operand(s), builds the LC per §4.1, and enforces
    equality against ``ref`` (allocated as a public variable when
    ``ref_index`` is None).  Returns the ref variable index.

    This is the exact circuit of the paper's Eq. 2 / Eq. 3, used as-is by
    unit tests and the layer-level benchmarks; the full compiler path in
    :mod:`repro.core.circuit.compute` generalizes it with requantization and
    knit packing.
    """
    if len(weights) != len(features):
        raise ValueError(
            f"length mismatch: {len(weights)} weights, {len(features)} features"
        )
    field = cs.field
    ref_value = sum(int(w) * int(x) for w, x in zip(weights, features))
    if ref_index is None:
        ref_index = cs.new_public(ref_value)

    lc = cs.lc()
    if w_privacy.is_private and x_privacy.is_private:
        # Eq. 2: one constraint per private*private product.
        for i, (w, x) in enumerate(zip(weights, features)):
            w_var = cs.new_private(int(w))
            x_var = cs.new_private(int(x))
            wire = cs.mul_private(x_var, w_var, tag=f"{tag}/mul{i}")
            lc.add_term(wire, 1)
    elif w_privacy.is_private or x_privacy.is_private:
        # Eq. 3: fold the public side into coefficients — zero constraints.
        if x_privacy.is_private:
            coeffs, values = weights, features
        else:
            coeffs, values = features, weights
        for coeff, value in zip(coeffs, values):
            var = cs.new_private(int(value))
            lc.add_term(var, int(coeff) % field.modulus)
    else:
        lc.add_term(0, ref_value)  # fully public: trivial identity

    cs.enforce_equal(lc, cs.lc_variable(ref_index), tag=f"{tag}/eq")
    return ref_index
