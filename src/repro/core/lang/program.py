"""ZkProgram: tensor-level recording of a zkSNARK NN (§3).

A :class:`ZkProgram` is the compiler's input IR — an ordered list of
:class:`TensorOp` records that keep *tensor* and *privacy* semantics intact,
instead of the assembly-style scalar circuit existing frameworks lower to
immediately.  Each op knows:

* which named tensors it reads/writes,
* its dot-product factorization (for conv/FC/pool — Table 3's ``(mk, n)``),
* the plaintext accumulator/output values from the traced NN run (these
  become the zk witness).

Dot layers precompute an im2col *index* matrix so the circuit generator can
emit each dot product without re-deriving geometry: entry ``p+1`` refers to
flat input position ``p``, and ``0`` marks a padded (constant-zero) tap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.lang.types import Privacy
from repro.nn.graph import INPUT, LayerTrace, Model
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.transformer import (
    ActivationLUT,
    Embedding,
    GatherLayer,
    LayerNorm,
    MatMul,
    PositionalEmbedding,
    RowScale,
    RowSum,
)


@dataclass
class TensorOp:
    """Base record: one tensor-level operation of the program."""

    name: str
    inputs: Tuple[str, ...]
    output: str
    out_values: np.ndarray  # plaintext activation handed downstream


@dataclass
class DotLayerOp(TensorOp):
    """Conv / FC / AvgPool as a bag of independent dot products.

    ``weight_rows[row_of_dot[d]]`` gives dot ``d``'s weight vector;
    ``input_cols[:, col_of_dot[d]]`` gives the 1-based flat positions of its
    activation taps (0 = padded zero).  ``acc_values[d]`` is the plaintext
    accumulator the circuit commits to; ``requant`` the power-of-two shift
    linking it to ``out_values``.
    """

    weight_rows: np.ndarray = None  # (r, n)
    row_of_dot: np.ndarray = None  # (num_dots,)
    col_of_dot: np.ndarray = None  # (num_dots,)
    input_cols: np.ndarray = None  # (n, num_cols), 1-based; 0 = padding
    bias: np.ndarray = None  # (r,), public constants
    acc_values: np.ndarray = None  # (num_dots,)
    requant: int = 0
    weights_private: bool = False
    layer_kind: str = "fc"  # "fc" | "conv" | "pool"

    @property
    def num_dots(self) -> int:
        return int(self.row_of_dot.shape[0])

    @property
    def dot_length(self) -> int:
        return int(self.weight_rows.shape[1])

    def macs(self) -> int:
        return self.num_dots * self.dot_length


@dataclass
class EwiseAffineOp(TensorOp):
    """Per-channel affine ``g*x + b`` (BatchNorm) with a requant shift."""

    gamma: np.ndarray = None  # flat, per element
    beta: np.ndarray = None
    acc_values: np.ndarray = None
    requant: int = 0
    weights_private: bool = False


@dataclass
class AddOp(TensorOp):
    """Residual addition with a requant shift."""

    acc_values: np.ndarray = None
    requant: int = 0


@dataclass
class ReluOp(TensorOp):
    """Elementwise ReLU — compiled to the bit-decomposition gadget (§2.2)."""

    in_values: np.ndarray = None
    bits: int = 16


@dataclass
class MaxPoolOp(TensorOp):
    """Window maximum — chained comparison gadgets (§2.2's costly pooling).

    ``window_positions[:, w]`` holds the 1-based flat input positions of
    window ``w``'s taps.
    """

    window_positions: np.ndarray = None  # (k, num_windows)
    in_values: np.ndarray = None  # flat input values
    bits: int = 16

    @property
    def num_windows(self) -> int:
        return int(self.window_positions.shape[1])

    @property
    def window_size(self) -> int:
        return int(self.window_positions.shape[0])


@dataclass
class FlattenOp(TensorOp):
    """Pure reshape; generates no constraints."""


@dataclass
class GatherOp(TensorOp):
    """Wire permutation/selection (head split/merge, ViT patchify).

    ``sources[o] = (input_ordinal, flat_position)`` names the input wire
    that becomes flat output position ``o``; generates no constraints.
    """

    sources: np.ndarray = None  # (out_size, 2)


@dataclass
class EmbedOp(TensorOp):
    """Token-id row lookup into a public ``(vocab, dim)`` table.

    Lookup mode lowers each output element through a per-dimension
    :class:`~repro.lookup.table.LookupTable` (the id is range-proven at
    the lookup input); bits mode uses a per-token one-hot selector shared
    across dimensions.
    """

    table: np.ndarray = None  # (vocab, dim) int64
    ids: np.ndarray = None  # (seq,) traced token ids


@dataclass
class MatMulOp(TensorOp):
    """Private x private matrix product: one mul constraint per term."""

    a_shape: Tuple[int, int] = None
    b_shape: Tuple[int, int] = None
    transpose_b: bool = False
    acc_values: np.ndarray = None  # flat (m * n_out)
    requant: int = 0

    @property
    def dims(self) -> Tuple[int, int, int]:
        """(m, k, n_out) of the product."""
        m, k = self.a_shape
        n = self.b_shape[0] if self.transpose_b else self.b_shape[1]
        return m, k, n


@dataclass
class RowScaleOp(TensorOp):
    """``out_ij = (e_ij * r_i) >> requant`` — softmax normalization."""

    width: int = 0  # row width of the e operand
    acc_values: np.ndarray = None  # flat
    requant: int = 0


@dataclass
class ActLUTOp(TensorOp):
    """Elementwise nonlinearity through a builtin lookup table."""

    table_name: str = ""  # repro.lookup registry name
    in_values: np.ndarray = None  # flat


@dataclass
class LayerNormOp(TensorOp):
    """Composite LayerNorm: mean / variance commits + rsqrt lookup.

    All intermediates are recomputed from ``in_values`` by both the
    circuit lowering and the batch witness replay, so the op only needs
    the traced input and the three static shifts.
    """

    in_values: np.ndarray = None  # (rows, d)
    mean_shift: int = 0
    var_shift: int = 0
    out_shift: int = 0


@dataclass
class ZkProgram:
    """The full recorded program plus its privacy configuration."""

    name: str
    input_shape: Tuple[int, ...]
    input_values: np.ndarray
    image_privacy: Privacy
    weights_privacy: Privacy
    ops: List[TensorOp] = field(default_factory=list)
    output_name: str = ""

    def dot_ops(self) -> List[DotLayerOp]:
        return [op for op in self.ops if isinstance(op, DotLayerOp)]

    def total_macs(self) -> int:
        return sum(op.macs() for op in self.dot_ops())

    def final_logits(self) -> np.ndarray:
        return self.ops[-1].out_values

    def __repr__(self) -> str:
        return (
            f"ZkProgram({self.name}: {len(self.ops)} ops, "
            f"image={self.image_privacy}, weights={self.weights_privacy})"
        )


# -- lowering an NN model into a program ------------------------------------------


def _index_cols(layer: Conv2d, in_shape: Tuple[int, ...]) -> np.ndarray:
    """im2col over flat positions: 1-based indices, 0 for padded taps."""
    positions = (np.arange(int(np.prod(in_shape)), dtype=np.int64) + 1).reshape(
        in_shape
    )
    return layer.im2col(positions)


def _dot_op_from_conv(
    name: str, layer: Conv2d, trace: LayerTrace, inputs, weights_private: bool
) -> DotLayerOp:
    in_shape = trace.input_values[0].shape
    c_out = layer.weight.shape[0]
    cols = _index_cols(layer, in_shape)  # (n, num_pixels)
    num_pixels = cols.shape[1]
    row_of_dot = np.repeat(np.arange(c_out), num_pixels)
    col_of_dot = np.tile(np.arange(num_pixels), c_out)
    return DotLayerOp(
        name=name,
        inputs=inputs,
        output=name,
        out_values=trace.out,
        weight_rows=layer.weight.reshape(c_out, -1),
        row_of_dot=row_of_dot,
        col_of_dot=col_of_dot,
        input_cols=cols,
        bias=layer.bias,
        acc_values=trace.acc.reshape(-1),
        requant=layer.requant,
        weights_private=weights_private,
        layer_kind="conv",
    )


def _dot_op_from_linear(
    name: str, layer: Linear, trace: LayerTrace, inputs, weights_private: bool
) -> DotLayerOp:
    c_out, c_in = layer.weight.shape
    # 2-D input (seq, c_in): the same weight rows sweep every input row —
    # dot d computes output row d // c_out (input column d // c_out of the
    # index matrix), weight row d % c_out, matching the row-major (seq,
    # c_out) flattening of trace.acc.
    seq = trace.input_values[0].shape[0] if trace.input_values[0].ndim == 2 else 1
    cols = (
        np.arange(seq * c_in, dtype=np.int64) + 1
    ).reshape(seq, c_in).T  # (c_in, seq)
    return DotLayerOp(
        name=name,
        inputs=inputs,
        output=name,
        out_values=trace.out,
        weight_rows=layer.weight,
        row_of_dot=np.tile(np.arange(c_out), seq),
        col_of_dot=np.repeat(np.arange(seq), c_out),
        input_cols=cols,
        bias=layer.bias,
        acc_values=trace.acc.reshape(-1),
        requant=layer.requant,
        weights_private=weights_private,
        layer_kind="fc",
    )


def _dot_op_from_rowsum(
    name: str, layer: "RowSum", trace: LayerTrace, inputs
) -> DotLayerOp:
    """Row sum = dot with a public ones-vector, one dot per row."""
    m, n = trace.input_values[0].shape
    cols = (np.arange(m * n, dtype=np.int64) + 1).reshape(m, n).T  # (n, m)
    return DotLayerOp(
        name=name,
        inputs=inputs,
        output=name,
        out_values=trace.out,
        weight_rows=np.ones((1, n), dtype=np.int64),
        row_of_dot=np.zeros(m, dtype=np.int64),
        col_of_dot=np.arange(m),
        input_cols=cols,
        bias=np.zeros(1, dtype=np.int64),
        acc_values=trace.acc.reshape(-1),
        requant=layer.requant,
        weights_private=False,  # structural ones-vector, always public
        layer_kind="pool",
    )


def _dot_op_from_pool(
    name: str, layer: AvgPool2d, trace: LayerTrace, inputs
) -> DotLayerOp:
    """Average pool = dot with a public ones-vector of length s^2 (§5.1)."""
    in_shape = trace.input_values[0].shape
    c, h, w = in_shape
    s = layer.size
    oh, ow = h // s, w // s
    positions = (np.arange(c * h * w, dtype=np.int64) + 1).reshape(in_shape)
    grids = (
        positions.reshape(c, oh, s, ow, s)
        .transpose(0, 1, 3, 2, 4)
        .reshape(c * oh * ow, s * s)
    )
    num_dots = c * oh * ow
    return DotLayerOp(
        name=name,
        inputs=inputs,
        output=name,
        out_values=trace.out,
        weight_rows=np.ones((1, s * s), dtype=np.int64),
        row_of_dot=np.zeros(num_dots, dtype=np.int64),
        col_of_dot=np.arange(num_dots),
        input_cols=grids.T,  # (s*s, num_dots)
        bias=np.zeros(1, dtype=np.int64),
        acc_values=trace.acc.reshape(-1),
        requant=layer.requant,
        weights_private=False,  # the ones-vector is structural, always public
        layer_kind="pool",
    )


def _maxpool_op(
    name: str, layer: "MaxPool2d", trace: LayerTrace, inputs, bits: int
) -> MaxPoolOp:
    in_shape = trace.input_values[0].shape
    c, h, w = in_shape
    s = layer.size
    oh, ow = h // s, w // s
    positions = (np.arange(c * h * w, dtype=np.int64) + 1).reshape(in_shape)
    windows = (
        positions.reshape(c, oh, s, ow, s)
        .transpose(0, 1, 3, 2, 4)
        .reshape(c * oh * ow, s * s)
    )
    return MaxPoolOp(
        name=name,
        inputs=inputs,
        output=name,
        out_values=trace.out,
        window_positions=windows.T,  # (s*s, num_windows)
        in_values=trace.input_values[0].reshape(-1),
        bits=bits,
    )


def program_from_model(
    model: Model,
    image: np.ndarray,
    image_privacy: Privacy = Privacy.PRIVATE,
    weights_privacy: Privacy = Privacy.PUBLIC,
    relu_bits: int = 16,
) -> ZkProgram:
    """Trace ``model`` on ``image`` and record it as a typed ZkProgram.

    This is the "Generate"-phase front half: NN semantics (tensor shapes,
    layer kinds, privacy) flow into the program instead of being lowered to
    anonymous scalar gates.
    """
    traces = model.trace(image)
    program = ZkProgram(
        name=model.name,
        input_shape=tuple(model.input_shape),
        input_values=image.astype(np.int64),
        image_privacy=image_privacy,
        weights_privacy=weights_privacy,
    )
    wp = weights_privacy.is_private
    for trace in traces:
        node = model.node(trace.name)
        layer = node.layer
        inputs = node.inputs
        if isinstance(layer, Conv2d):
            op = _dot_op_from_conv(trace.name, layer, trace, inputs, wp)
        elif isinstance(layer, Linear):
            op = _dot_op_from_linear(trace.name, layer, trace, inputs, wp)
        elif isinstance(layer, AvgPool2d):
            op = _dot_op_from_pool(trace.name, layer, trace, inputs)
        elif isinstance(layer, MaxPool2d):
            op = _maxpool_op(trace.name, layer, trace, inputs, relu_bits)
        elif isinstance(layer, BatchNorm):
            flat = trace.input_values[0]
            if flat.ndim == 3:
                gamma = np.broadcast_to(
                    layer.gamma[:, None, None], flat.shape
                ).reshape(-1)
                beta = np.broadcast_to(
                    layer.beta[:, None, None], flat.shape
                ).reshape(-1)
            else:
                gamma, beta = layer.gamma, layer.beta
            op = EwiseAffineOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                gamma=np.ascontiguousarray(gamma),
                beta=np.ascontiguousarray(beta),
                acc_values=trace.acc.reshape(-1),
                requant=layer.requant,
                weights_private=wp,
            )
        elif isinstance(layer, Add):
            op = AddOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                acc_values=trace.acc.reshape(-1),
                requant=layer.requant,
            )
        elif isinstance(layer, ReLU):
            op = ReluOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                in_values=trace.input_values[0].reshape(-1),
                bits=relu_bits,
            )
        elif isinstance(layer, Flatten):
            op = FlattenOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
            )
        elif isinstance(layer, RowSum):
            op = _dot_op_from_rowsum(trace.name, layer, trace, inputs)
        elif isinstance(layer, PositionalEmbedding):
            flat = trace.input_values[0]
            op = EwiseAffineOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                gamma=np.ones(flat.size, dtype=np.int64),
                beta=layer.pos.reshape(-1),
                acc_values=trace.acc.reshape(-1),
                requant=0,
                weights_private=wp,
            )
        elif isinstance(layer, Embedding):
            op = EmbedOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                table=layer.table,
                ids=trace.input_values[0].reshape(-1),
            )
        elif isinstance(layer, MatMul):
            op = MatMulOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                a_shape=tuple(trace.input_values[0].shape),
                b_shape=tuple(trace.input_values[1].shape),
                transpose_b=layer.transpose_b,
                acc_values=trace.acc.reshape(-1),
                requant=layer.requant,
            )
        elif isinstance(layer, RowScale):
            op = RowScaleOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                width=int(trace.input_values[0].shape[1]),
                acc_values=trace.acc.reshape(-1),
                requant=layer.requant,
            )
        elif isinstance(layer, ActivationLUT):
            op = ActLUTOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                table_name=layer.table_name,
                in_values=trace.input_values[0].reshape(-1),
            )
        elif isinstance(layer, LayerNorm):
            op = LayerNormOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                in_values=trace.input_values[0],
                mean_shift=layer.mean_shift,
                var_shift=layer.var_shift,
                out_shift=layer.out_shift,
            )
        elif isinstance(layer, GatherLayer):
            op = GatherOp(
                name=trace.name,
                inputs=inputs,
                output=trace.name,
                out_values=trace.out,
                sources=layer.gather_sources(
                    [v.shape for v in trace.input_values]
                ),
            )
        else:
            raise TypeError(f"no program lowering for layer {type(layer).__name__}")
        program.ops.append(op)
    program.output_name = traces[-1].name
    return program
