"""zkTensor: the basic data unit of zkSNARK NNs (§3, Table 1)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.lang.types import Privacy, ScalarKind, infer_scalar_kind


class ZkTensor:
    """A tensor of finite-field data paired with a privacy type.

    ``values`` holds the plaintext integers (the prover knows everything);
    ``var_indices`` holds, for private tensors that have been allocated in a
    constraint system, the signed variable index of every element (same
    shape as ``values``).  Public tensors never allocate variables — their
    elements become constraint *coefficients*, which is the root of every
    privacy-type optimization in §4.
    """

    __slots__ = ("values", "privacy", "stage", "var_indices", "name")

    def __init__(
        self,
        values: np.ndarray,
        privacy: Privacy,
        stage: str = "input",
        var_indices: Optional[np.ndarray] = None,
        name: str = "",
    ) -> None:
        self.values = np.asarray(values, dtype=np.int64)
        self.privacy = privacy
        self.stage = stage
        self.name = name
        if privacy is Privacy.PUBLIC and var_indices is not None:
            raise ValueError("public tensors do not own circuit variables")
        if var_indices is not None and var_indices.shape != self.values.shape:
            raise ValueError(
                f"var_indices shape {var_indices.shape} != values "
                f"shape {self.values.shape}"
            )
        self.var_indices = var_indices

    # -- constructors ------------------------------------------------------------

    @classmethod
    def public(cls, values: np.ndarray, name: str = "") -> "ZkTensor":
        return cls(values, Privacy.PUBLIC, stage="input", name=name)

    @classmethod
    def private(
        cls, values: np.ndarray, stage: str = "input", name: str = ""
    ) -> "ZkTensor":
        return cls(values, Privacy.PRIVATE, stage=stage, name=name)

    # -- type information ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.values.shape)

    @property
    def is_private(self) -> bool:
        return self.privacy.is_private

    @property
    def scalar_kind(self) -> ScalarKind:
        """The automatically inferred per-element scalar type (Table 1)."""
        return infer_scalar_kind(self.privacy, self.stage)

    def is_allocated(self) -> bool:
        return self.var_indices is not None

    # -- structure helpers -----------------------------------------------------------

    def flat_values(self) -> np.ndarray:
        return self.values.reshape(-1)

    def flat_vars(self) -> np.ndarray:
        if self.var_indices is None:
            raise ValueError(f"tensor {self.name!r} has no allocated variables")
        return self.var_indices.reshape(-1)

    def reshaped(self, shape: Tuple[int, ...]) -> "ZkTensor":
        vars_reshaped = (
            self.var_indices.reshape(shape) if self.var_indices is not None else None
        )
        return ZkTensor(
            self.values.reshape(shape),
            self.privacy,
            stage=self.stage,
            var_indices=vars_reshaped,
            name=self.name,
        )

    def __repr__(self) -> str:
        alloc = "alloc" if self.is_allocated() else "unalloc"
        return (
            f"ZkTensor({self.name or '?'}: shape={self.shape}, "
            f"{self.privacy}, {self.scalar_kind.value}, {alloc})"
        )
