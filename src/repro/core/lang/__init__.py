"""ZENO language construct (§3): types and tensor compute primitives.

The construct's purpose is to carry two kinds of semantics from model to
circuit that assembly-style scalar circuits destroy (§2.3):

* **privacy type** — every tensor is a :class:`~repro.core.lang.zktensor.ZkTensor`
  ``(T, P)`` whose privacy drives constraint generation (§4);
* **tensor type** — computation is recorded as whole-tensor ops
  (:class:`~repro.core.lang.program.TensorOp`), so the circuit generator can
  emit ZENO circuits per dot product instead of parsing scalar gates (§5).
"""

from repro.core.lang.types import Privacy, ScalarKind
from repro.core.lang.zktensor import ZkTensor
from repro.core.lang.program import TensorOp, ZkProgram, program_from_model

__all__ = [
    "Privacy",
    "ScalarKind",
    "ZkTensor",
    "TensorOp",
    "ZkProgram",
    "program_from_model",
]
