"""ZENO type information (Table 1 of the paper).

The table's standard (scalar) types describe where a value lives in the
zkSNARK pipeline; ZENO's contribution is the *tensor-level* pair
``zkTensor = (Tensor, Privacy)`` built on top of them:

=========  =================================================================
Type       Description
=========  =================================================================
Const      public constant value in a λ-bit finite field
Variable   private scalar in the circuit (input)
Gate       private scalar in the circuit (intermediate result)
Wire       private scalar in the constraint system
LC         linear combination of wires in the constraint system
Privacy    'private' or 'public'
Tensor     a tensor of finite-field data
zkTensor   tuple (T, P): tensor T plus privacy P
=========  =================================================================

When ``P`` is public, every scalar of ``T`` is a ``Const``; when private,
the specific scalar kind (Variable/Gate/Wire/LC) is inferred automatically
by the circuit generator — users never pick per-scalar privacy by hand,
which is exactly the manual effort Table 1's design removes.
"""

from __future__ import annotations

import enum


class Privacy(enum.Enum):
    """The privacy half of a zkTensor."""

    PUBLIC = "public"
    PRIVATE = "private"

    @property
    def is_private(self) -> bool:
        return self is Privacy.PRIVATE

    def __str__(self) -> str:
        return self.value


class ScalarKind(enum.Enum):
    """Where a scalar value lives in the zkSNARK pipeline (Table 1)."""

    CONST = "const"  # public constant in the field
    VARIABLE = "variable"  # private circuit input
    GATE = "gate"  # private circuit intermediate
    WIRE = "wire"  # private constraint-system value
    LC = "lc"  # linear combination of wires

    @property
    def is_private(self) -> bool:
        return self is not ScalarKind.CONST


def infer_scalar_kind(privacy: Privacy, stage: str) -> ScalarKind:
    """Automatic scalar-kind inference for a tensor's elements.

    ``stage`` names where the tensor sits: "input", "intermediate", or
    "constraint".  Public tensors are Const everywhere; private tensors
    map input -> Variable, intermediate -> Gate, constraint -> Wire.
    """
    if privacy is Privacy.PUBLIC:
        return ScalarKind.CONST
    mapping = {
        "input": ScalarKind.VARIABLE,
        "intermediate": ScalarKind.GATE,
        "constraint": ScalarKind.WIRE,
    }
    if stage not in mapping:
        raise ValueError(
            f"unknown stage {stage!r}; expected one of {sorted(mapping)}"
        )
    return mapping[stage]
