"""Program validation: check ZkProgram invariants before compilation.

The circuit generator trusts several structural invariants of the typed
program (distinct taps per dot, accumulator consistency with the recorded
geometry, dataflow well-formedness).  Violations would surface later as
unsatisfiable systems or — worse — silently wrong dict-built LCs, so
:func:`validate_program` checks them up front.  The compiler does not run
this on every compile (it is O(MACs)); it is meant for program authors,
tests, and debugging sessions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.lang.program import (
    AddOp,
    DotLayerOp,
    EwiseAffineOp,
    FlattenOp,
    MaxPoolOp,
    ReluOp,
    ZkProgram,
)
from repro.nn.graph import INPUT


class ProgramValidationError(ValueError):
    """Raised when a ZkProgram violates a compiler invariant."""


def validate_program(program: ZkProgram, deep: bool = True) -> List[str]:
    """Check all invariants; returns human-readable notes (warnings).

    Raises :class:`ProgramValidationError` on any hard violation.  With
    ``deep=True`` (default) the O(MACs) accumulator reconstruction runs
    too; ``deep=False`` checks only the structural properties.
    """
    notes: List[str] = []
    if not program.ops:
        raise ProgramValidationError("program has no operations")

    # -- dataflow: every input resolves to INPUT or an earlier op -------------
    produced = {INPUT}
    values = {INPUT: program.input_values}
    for op in program.ops:
        for src in op.inputs:
            if src not in produced:
                raise ProgramValidationError(
                    f"op {op.name!r} reads {src!r} before it is produced"
                )
        if op.output in produced:
            raise ProgramValidationError(
                f"op {op.name!r} redefines tensor {op.output!r}"
            )
        produced.add(op.output)
        values[op.output] = op.out_values
    if program.output_name != program.ops[-1].name:
        raise ProgramValidationError(
            f"output_name {program.output_name!r} is not the last op"
        )

    for op in program.ops:
        if isinstance(op, DotLayerOp):
            _validate_dot(op, values, deep, notes)
        elif isinstance(op, MaxPoolOp):
            _validate_maxpool(op, values, deep)
        elif isinstance(op, ReluOp):
            _validate_relu(op, values)
        elif isinstance(op, (EwiseAffineOp, AddOp, FlattenOp)):
            _validate_sizes(op, values)
    return notes


def _validate_sizes(op, values) -> None:
    src = values[op.inputs[0]]
    if isinstance(op, FlattenOp):
        if op.out_values.size != src.size:
            raise ProgramValidationError(f"{op.name}: flatten changes size")
        return
    if isinstance(op, AddOp):
        other = values[op.inputs[1]]
        if src.shape != other.shape:
            raise ProgramValidationError(f"{op.name}: residual shape mismatch")
    if op.acc_values.size != op.out_values.size:
        raise ProgramValidationError(f"{op.name}: acc/out size mismatch")


def _validate_relu(op: ReluOp, values) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    expected = np.maximum(op.in_values.reshape(op.out_values.shape), 0)
    if not np.array_equal(expected, op.out_values):
        raise ProgramValidationError(f"{op.name}: out != relu(in)")
    limit = 1 << (op.bits - 1)
    if op.in_values.size and (
        int(op.in_values.min()) < -limit or int(op.in_values.max()) >= limit
    ):
        raise ProgramValidationError(
            f"{op.name}: inputs exceed the {op.bits}-bit sign-gadget range"
        )


def _validate_dot(op: DotLayerOp, values, deep: bool, notes: List[str]) -> None:
    src = values[op.inputs[0]]
    n, num_cols = op.input_cols.shape
    if n != op.weight_rows.shape[1]:
        raise ProgramValidationError(
            f"{op.name}: input_cols rows != weight row length"
        )
    if op.input_cols.min() < 0 or op.input_cols.max() > src.size:
        raise ProgramValidationError(
            f"{op.name}: tap positions outside the input tensor"
        )
    if op.row_of_dot.shape != op.col_of_dot.shape:
        raise ProgramValidationError(f"{op.name}: dot index arrays differ")
    if int(op.row_of_dot.max()) >= op.weight_rows.shape[0]:
        raise ProgramValidationError(f"{op.name}: row_of_dot out of range")
    if int(op.col_of_dot.max()) >= num_cols:
        raise ProgramValidationError(f"{op.name}: col_of_dot out of range")
    if op.acc_values.shape[0] != op.num_dots:
        raise ProgramValidationError(f"{op.name}: acc count != num_dots")

    # Distinct taps per column: the ZENO dict-built LC relies on it.
    for c in range(num_cols):
        taps = op.input_cols[:, c]
        nonzero = taps[taps > 0]
        if len(np.unique(nonzero)) != len(nonzero):
            raise ProgramValidationError(
                f"{op.name}: duplicate taps in column {c}"
            )

    zero_weights = int(np.sum(op.weight_rows == 0))
    if zero_weights:
        notes.append(
            f"{op.name}: {zero_weights} zero weight entries (dead witness "
            f"vars if weights are private — consider repro.r1cs.optimize)"
        )

    if not deep:
        return
    flat = src.reshape(-1)
    for d in range(op.num_dots):
        row = op.weight_rows[op.row_of_dot[d]]
        taps = op.input_cols[:, op.col_of_dot[d]]
        valid = taps > 0
        acc = int(row[valid] @ flat[taps[valid] - 1]) + int(
            op.bias[op.row_of_dot[d]]
        )
        if acc != int(op.acc_values[d]):
            raise ProgramValidationError(
                f"{op.name}: dot {d} accumulator mismatch "
                f"(recomputed {acc}, recorded {int(op.acc_values[d])})"
            )


def _validate_maxpool(op: MaxPoolOp, values, deep: bool) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    if op.window_positions.min() < 1 or op.window_positions.max() > src.size:
        raise ProgramValidationError(f"{op.name}: window taps out of range")
    if not deep:
        return
    out_flat = op.out_values.reshape(-1)
    for w in range(op.num_windows):
        taps = op.window_positions[:, w]
        expected = max(int(op.in_values[t - 1]) for t in taps)
        if expected != int(out_flat[w]):
            raise ProgramValidationError(
                f"{op.name}: window {w} maximum mismatch"
            )
