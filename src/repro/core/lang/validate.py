"""Program validation: check ZkProgram invariants before compilation.

The circuit generator trusts several structural invariants of the typed
program (distinct taps per dot, accumulator consistency with the recorded
geometry, dataflow well-formedness).  Violations would surface later as
unsatisfiable systems or — worse — silently wrong dict-built LCs, so
:func:`validate_program` checks them up front.  The compiler does not run
this on every compile (it is O(MACs)); it is meant for program authors,
tests, and debugging sessions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.lang.program import (
    ActLUTOp,
    AddOp,
    DotLayerOp,
    EmbedOp,
    EwiseAffineOp,
    FlattenOp,
    GatherOp,
    LayerNormOp,
    MatMulOp,
    MaxPoolOp,
    ReluOp,
    RowScaleOp,
    ZkProgram,
)
from repro.nn.graph import INPUT


class ProgramValidationError(ValueError):
    """Raised when a ZkProgram violates a compiler invariant."""


def validate_program(program: ZkProgram, deep: bool = True) -> List[str]:
    """Check all invariants; returns human-readable notes (warnings).

    Raises :class:`ProgramValidationError` on any hard violation.  With
    ``deep=True`` (default) the O(MACs) accumulator reconstruction runs
    too; ``deep=False`` checks only the structural properties.
    """
    notes: List[str] = []
    if not program.ops:
        raise ProgramValidationError("program has no operations")

    # -- dataflow: every input resolves to INPUT or an earlier op -------------
    produced = {INPUT}
    values = {INPUT: program.input_values}
    for op in program.ops:
        for src in op.inputs:
            if src not in produced:
                raise ProgramValidationError(
                    f"op {op.name!r} reads {src!r} before it is produced"
                )
        if op.output in produced:
            raise ProgramValidationError(
                f"op {op.name!r} redefines tensor {op.output!r}"
            )
        produced.add(op.output)
        values[op.output] = op.out_values
    if program.output_name != program.ops[-1].name:
        raise ProgramValidationError(
            f"output_name {program.output_name!r} is not the last op"
        )

    for op in program.ops:
        if isinstance(op, DotLayerOp):
            _validate_dot(op, values, deep, notes)
        elif isinstance(op, MaxPoolOp):
            _validate_maxpool(op, values, deep)
        elif isinstance(op, ReluOp):
            _validate_relu(op, values)
        elif isinstance(op, (EwiseAffineOp, AddOp, FlattenOp)):
            _validate_sizes(op, values)
        elif isinstance(op, GatherOp):
            _validate_gather(op, values)
        elif isinstance(op, EmbedOp):
            _validate_embed(op, values)
        elif isinstance(op, MatMulOp):
            _validate_matmul(op, values, deep)
        elif isinstance(op, RowScaleOp):
            _validate_rowscale(op, values, deep)
        elif isinstance(op, ActLUTOp):
            _validate_lut(op, values, deep)
        elif isinstance(op, LayerNormOp):
            _validate_layernorm(op, values)
    return notes


def _validate_sizes(op, values) -> None:
    src = values[op.inputs[0]]
    if isinstance(op, FlattenOp):
        if op.out_values.size != src.size:
            raise ProgramValidationError(f"{op.name}: flatten changes size")
        return
    if isinstance(op, AddOp):
        other = values[op.inputs[1]]
        if src.shape != other.shape:
            raise ProgramValidationError(f"{op.name}: residual shape mismatch")
    if op.acc_values.size != op.out_values.size:
        raise ProgramValidationError(f"{op.name}: acc/out size mismatch")


def _validate_relu(op: ReluOp, values) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    expected = np.maximum(op.in_values.reshape(op.out_values.shape), 0)
    if not np.array_equal(expected, op.out_values):
        raise ProgramValidationError(f"{op.name}: out != relu(in)")
    limit = 1 << (op.bits - 1)
    if op.in_values.size and (
        int(op.in_values.min()) < -limit or int(op.in_values.max()) >= limit
    ):
        raise ProgramValidationError(
            f"{op.name}: inputs exceed the {op.bits}-bit sign-gadget range"
        )


def _validate_dot(op: DotLayerOp, values, deep: bool, notes: List[str]) -> None:
    src = values[op.inputs[0]]
    n, num_cols = op.input_cols.shape
    if n != op.weight_rows.shape[1]:
        raise ProgramValidationError(
            f"{op.name}: input_cols rows != weight row length"
        )
    if op.input_cols.min() < 0 or op.input_cols.max() > src.size:
        raise ProgramValidationError(
            f"{op.name}: tap positions outside the input tensor"
        )
    if op.row_of_dot.shape != op.col_of_dot.shape:
        raise ProgramValidationError(f"{op.name}: dot index arrays differ")
    if int(op.row_of_dot.max()) >= op.weight_rows.shape[0]:
        raise ProgramValidationError(f"{op.name}: row_of_dot out of range")
    if int(op.col_of_dot.max()) >= num_cols:
        raise ProgramValidationError(f"{op.name}: col_of_dot out of range")
    if op.acc_values.shape[0] != op.num_dots:
        raise ProgramValidationError(f"{op.name}: acc count != num_dots")

    # Distinct taps per column: the ZENO dict-built LC relies on it.
    for c in range(num_cols):
        taps = op.input_cols[:, c]
        nonzero = taps[taps > 0]
        if len(np.unique(nonzero)) != len(nonzero):
            raise ProgramValidationError(
                f"{op.name}: duplicate taps in column {c}"
            )

    zero_weights = int(np.sum(op.weight_rows == 0))
    if zero_weights:
        notes.append(
            f"{op.name}: {zero_weights} zero weight entries (dead witness "
            f"vars if weights are private — consider repro.r1cs.optimize)"
        )

    if not deep:
        return
    flat = src.reshape(-1)
    for d in range(op.num_dots):
        row = op.weight_rows[op.row_of_dot[d]]
        taps = op.input_cols[:, op.col_of_dot[d]]
        valid = taps > 0
        acc = int(row[valid] @ flat[taps[valid] - 1]) + int(
            op.bias[op.row_of_dot[d]]
        )
        if acc != int(op.acc_values[d]):
            raise ProgramValidationError(
                f"{op.name}: dot {d} accumulator mismatch "
                f"(recomputed {acc}, recorded {int(op.acc_values[d])})"
            )


def _validate_gather(op: GatherOp, values) -> None:
    if op.sources.shape != (op.out_values.size, 2):
        raise ProgramValidationError(f"{op.name}: sources shape mismatch")
    sizes = [values[src].size for src in op.inputs]
    for o in range(op.sources.shape[0]):
        src, pos = int(op.sources[o, 0]), int(op.sources[o, 1])
        if not 0 <= src < len(sizes) or not 0 <= pos < sizes[src]:
            raise ProgramValidationError(
                f"{op.name}: gather source {o} out of range"
            )


def _validate_embed(op: EmbedOp, values) -> None:
    src = values[op.inputs[0]]
    if op.ids.size != src.size:
        raise ProgramValidationError(f"{op.name}: ids size mismatch")
    vocab, d = op.table.shape
    if op.ids.size and (int(op.ids.min()) < 0 or int(op.ids.max()) >= vocab):
        raise ProgramValidationError(f"{op.name}: token id outside vocabulary")
    expected = op.table[op.ids.reshape(-1)]
    if not np.array_equal(expected, op.out_values.reshape(-1, d)):
        raise ProgramValidationError(f"{op.name}: out != table[ids]")


def _validate_matmul(op: MatMulOp, values, deep: bool) -> None:
    a = values[op.inputs[0]]
    b = values[op.inputs[1]]
    m, k, n = op.dims
    if a.size != m * k or b.size != op.b_shape[0] * op.b_shape[1]:
        raise ProgramValidationError(f"{op.name}: operand size mismatch")
    if op.acc_values.size != m * n:
        raise ProgramValidationError(f"{op.name}: acc size != m*n")
    if not deep:
        return
    bm = b.reshape(op.b_shape)
    acc = a.reshape(m, k).astype(np.int64) @ (
        bm.T if op.transpose_b else bm
    ).astype(np.int64)
    if not np.array_equal(acc.reshape(-1), op.acc_values):
        raise ProgramValidationError(f"{op.name}: accumulator mismatch")


def _validate_rowscale(op: RowScaleOp, values, deep: bool) -> None:
    e = values[op.inputs[0]]
    r = values[op.inputs[1]]
    if e.size != op.acc_values.size or r.size * op.width != e.size:
        raise ProgramValidationError(f"{op.name}: operand size mismatch")
    if not deep:
        return
    acc = e.reshape(-1, op.width).astype(np.int64) * r.reshape(-1, 1)
    if not np.array_equal(acc.reshape(-1), op.acc_values):
        raise ProgramValidationError(f"{op.name}: accumulator mismatch")


def _validate_lut(op: ActLUTOp, values, deep: bool) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    if not deep:
        return
    from repro.lookup import get_table

    table = get_table(op.table_name)
    out = op.out_values.reshape(-1)
    for i, x in enumerate(op.in_values.reshape(-1).tolist()):
        if table.lookup(int(x)) != int(out[i]):
            raise ProgramValidationError(
                f"{op.name}: element {i} out != {op.table_name}(in)"
            )


def _validate_layernorm(op: LayerNormOp, values) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    rows, d = op.in_values.shape
    if d != 1 << op.mean_shift:
        raise ProgramValidationError(
            f"{op.name}: mean_shift {op.mean_shift} != log2({d})"
        )
    if op.out_values.shape != (rows, d):
        raise ProgramValidationError(f"{op.name}: out shape mismatch")


def _validate_maxpool(op: MaxPoolOp, values, deep: bool) -> None:
    src = values[op.inputs[0]]
    if op.in_values.size != src.size:
        raise ProgramValidationError(f"{op.name}: in_values size mismatch")
    if op.window_positions.min() < 1 or op.window_positions.max() > src.size:
        raise ProgramValidationError(f"{op.name}: window taps out of range")
    if not deep:
        return
    out_flat = op.out_values.reshape(-1)
    for w in range(op.num_windows):
        taps = op.window_positions[:, w]
        expected = max(int(op.in_values[t - 1]) for t in taps)
        if expected != int(out_flat[w]):
            raise ProgramValidationError(
                f"{op.name}: window {w} maximum mismatch"
            )
