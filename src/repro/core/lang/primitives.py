"""Tensor compute primitives (§3): the user-facing ZENO construction API.

The paper's primitive set — ``dotProduct``, ``fullyConnected``,
``convolution``, ``pool``, ``ReLU``, plus ``addTensor``/``mulTensor`` for
user-defined operations such as residual connections — is exposed through
:class:`ProgramBuilder`.  Each call computes the plaintext result *and*
records a typed :class:`~repro.core.lang.program.TensorOp`, so the builder
produces the same :class:`~repro.core.lang.program.ZkProgram` IR as lowering
a full NN model.

Example (a single private-image dot product)::

    builder = ProgramBuilder("demo", image_vector)
    builder.dot_product(weight_vector)
    program = builder.build()
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.lang.program import (
    AddOp,
    EwiseAffineOp,
    FlattenOp,
    ReluOp,
    ZkProgram,
    _dot_op_from_conv,
    _dot_op_from_linear,
    _dot_op_from_pool,
)
from repro.core.lang.types import Privacy
from repro.nn.graph import INPUT, LayerTrace
from repro.nn.layers import AvgPool2d, Conv2d, Linear


class ProgramBuilder:
    """Incrementally records tensor primitives into a ZkProgram."""

    def __init__(
        self,
        name: str,
        input_values: np.ndarray,
        image_privacy: Privacy = Privacy.PRIVATE,
        weights_privacy: Privacy = Privacy.PUBLIC,
        relu_bits: int = 16,
    ) -> None:
        input_values = np.asarray(input_values, dtype=np.int64)
        self.program = ZkProgram(
            name=name,
            input_shape=tuple(input_values.shape),
            input_values=input_values,
            image_privacy=image_privacy,
            weights_privacy=weights_privacy,
        )
        self.relu_bits = relu_bits
        self._values = {INPUT: input_values}
        self._last = INPUT
        self._counter = 0

    # -- plumbing ---------------------------------------------------------------

    def _fresh(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    def _resolve(self, src: Optional[str]) -> Tuple[str, np.ndarray]:
        name = src if src is not None else self._last
        if name not in self._values:
            raise KeyError(f"unknown tensor {name!r}")
        return name, self._values[name]

    def _record(self, op, out_values: np.ndarray) -> str:
        self.program.ops.append(op)
        self._values[op.name] = out_values
        self._last = op.name
        self.program.output_name = op.name
        return op.name

    def _trace(self, name, layer, x, result) -> LayerTrace:
        return LayerTrace(
            name=name,
            layer=layer,
            input_values=[x],
            acc=result.acc,
            out=result.out,
        )

    @property
    def wp(self) -> bool:
        return self.program.weights_privacy.is_private

    # -- primitives (§3) ------------------------------------------------------------

    def dot_product(
        self, weight: np.ndarray, requant: int = 0, src: Optional[str] = None
    ) -> str:
        """A single dot product — the workhorse primitive (§4.1, §5.1)."""
        weight = np.asarray(weight, dtype=np.int64)
        if weight.ndim != 1:
            raise ValueError("dot_product expects a 1-D weight vector")
        return self.fully_connected(weight.reshape(1, -1), requant=requant, src=src)

    def fully_connected(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        requant: int = 0,
        src: Optional[str] = None,
    ) -> str:
        src_name, x = self._resolve(src)
        layer = Linear(np.asarray(weight, dtype=np.int64), bias, requant=requant)
        result = layer.forward(x)
        name = self._fresh("fc")
        op = _dot_op_from_linear(
            name, layer, self._trace(name, layer, x, result), (src_name,), self.wp
        )
        return self._record(op, result.out)

    def convolution(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
        requant: int = 0,
        src: Optional[str] = None,
    ) -> str:
        src_name, x = self._resolve(src)
        layer = Conv2d(
            np.asarray(weight, dtype=np.int64),
            bias,
            stride=stride,
            padding=padding,
            requant=requant,
        )
        result = layer.forward(x)
        name = self._fresh("conv")
        op = _dot_op_from_conv(
            name, layer, self._trace(name, layer, x, result), (src_name,), self.wp
        )
        return self._record(op, result.out)

    def pool(self, size: int = 2, src: Optional[str] = None) -> str:
        src_name, x = self._resolve(src)
        layer = AvgPool2d(size)
        result = layer.forward(x)
        name = self._fresh("pool")
        op = _dot_op_from_pool(
            name, layer, self._trace(name, layer, x, result), (src_name,)
        )
        return self._record(op, result.out)

    def max_pool(self, size: int = 2, src: Optional[str] = None) -> str:
        """Window maximum — compiled to comparison-gadget chains (§2.2)."""
        from repro.core.lang.program import _maxpool_op
        from repro.nn.layers import MaxPool2d

        src_name, x = self._resolve(src)
        layer = MaxPool2d(size)
        result = layer.forward(x)
        name = self._fresh("maxpool")
        op = _maxpool_op(
            name,
            layer,
            self._trace(name, layer, x, result),
            (src_name,),
            self.relu_bits,
        )
        return self._record(op, result.out)

    def relu(self, src: Optional[str] = None) -> str:
        src_name, x = self._resolve(src)
        out = np.maximum(x, 0)
        name = self._fresh("relu")
        op = ReluOp(
            name=name,
            inputs=(src_name,),
            output=name,
            out_values=out,
            in_values=x.reshape(-1),
            bits=self.relu_bits,
        )
        return self._record(op, out)

    def add_tensor(self, a: str, b: str, requant: int = 0) -> str:
        """Elementwise addition of two recorded tensors (residuals)."""
        _, va = self._resolve(a)
        _, vb = self._resolve(b)
        if va.shape != vb.shape:
            raise ValueError(f"add_tensor shapes differ: {va.shape} vs {vb.shape}")
        acc = va + vb
        out = acc >> requant
        name = self._fresh("add")
        op = AddOp(
            name=name,
            inputs=(a, b),
            output=name,
            out_values=out,
            acc_values=acc.reshape(-1),
            requant=requant,
        )
        return self._record(op, out)

    def mul_tensor(
        self,
        scale: np.ndarray,
        shift: Optional[np.ndarray] = None,
        requant: int = 0,
        src: Optional[str] = None,
    ) -> str:
        """Elementwise public affine ``scale*x + shift`` (user-defined ops)."""
        src_name, x = self._resolve(src)
        scale = np.broadcast_to(np.asarray(scale, dtype=np.int64), x.shape)
        shift_arr = (
            np.broadcast_to(np.asarray(shift, dtype=np.int64), x.shape)
            if shift is not None
            else np.zeros_like(x)
        )
        acc = scale * x + shift_arr
        out = acc >> requant
        name = self._fresh("mul")
        op = EwiseAffineOp(
            name=name,
            inputs=(src_name,),
            output=name,
            out_values=out,
            gamma=np.ascontiguousarray(scale.reshape(-1)),
            beta=np.ascontiguousarray(shift_arr.reshape(-1)),
            acc_values=acc.reshape(-1),
            requant=requant,
            weights_private=self.wp,
        )
        return self._record(op, out)

    def flatten(self, src: Optional[str] = None) -> str:
        src_name, x = self._resolve(src)
        out = x.reshape(-1)
        name = self._fresh("flat")
        op = FlattenOp(
            name=name, inputs=(src_name,), output=name, out_values=out
        )
        return self._record(op, out)

    # -- finalize ----------------------------------------------------------------------

    def build(self, validate: bool = False) -> ZkProgram:
        """Finalize the program.

        With ``validate=True`` the structural invariants are checked via
        :func:`repro.core.lang.validate.validate_program` (shallow — the
        O(MACs) accumulator reconstruction is opt-in there).
        """
        if not self.program.ops:
            raise ValueError("empty program: record at least one primitive")
        if validate:
            from repro.core.lang.validate import validate_program

            validate_program(self.program, deep=False)
        return self.program
