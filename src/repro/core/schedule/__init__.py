"""Workload-specialized parallel scheduler (§5.2)."""

from repro.core.schedule.counter import layer_gate_counts
from repro.core.schedule.scheduler import ParallelSchedule, WorkloadScheduler
from repro.core.schedule.simclock import simulate_parallel_time

__all__ = [
    "layer_gate_counts",
    "WorkloadScheduler",
    "ParallelSchedule",
    "simulate_parallel_time",
]
