"""Workload-specialized parallel scheduler (§5.2): model and executor."""

from repro.core.schedule.counter import layer_gate_counts
from repro.core.schedule.executor import (
    LayerSlices,
    ScheduleExecutor,
    WitnessEvaluation,
    plan_layer_slices,
)
from repro.core.schedule.scheduler import ParallelSchedule, WorkloadScheduler
from repro.core.schedule.simclock import (
    LayerComparison,
    modeled_vs_measured,
    simulate_parallel_time,
)

__all__ = [
    "layer_gate_counts",
    "LayerComparison",
    "LayerSlices",
    "ScheduleExecutor",
    "WitnessEvaluation",
    "WorkloadScheduler",
    "ParallelSchedule",
    "modeled_vs_measured",
    "plan_layer_slices",
    "simulate_parallel_time",
]
