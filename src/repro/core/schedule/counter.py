"""Step 1 of the scheduler (§5.2): count gates per layer from shapes alone.

"Based on the plaintext NN with specific layer shapes, we first count the
number of addition and multiplication in each layer" — no circuit parsing,
which is the whole point: reconstructing this from an assembly-style
circuit would cost a scan of millions of gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.nn.graph import Model


@dataclass(frozen=True)
class LayerGateCount:
    """Gate inventory of one layer, derived purely from its shape."""

    name: str
    kind: str
    multiplications: int
    additions: int
    independent_units: int  # dots (or elements) computable in parallel

    @property
    def total_gates(self) -> int:
        return self.multiplications + self.additions


def layer_gate_counts(model: Model) -> List[LayerGateCount]:
    """Per-layer multiplication/addition counts for a plaintext model."""
    counts: List[LayerGateCount] = []
    for node in model.nodes:
        in_shape = model.shape_of(node.inputs[0])
        layer = node.layer
        geometry = layer.dot_geometry(in_shape)
        if geometry is not None:
            units = geometry[0]
        else:
            out_shape = layer.out_shape(in_shape)
            units = 1
            for dim in out_shape:
                units *= dim
        counts.append(
            LayerGateCount(
                name=node.name,
                kind=layer.kind,
                multiplications=layer.macs(in_shape),
                additions=layer.adds(in_shape),
                independent_units=units,
            )
        )
    return counts


def gate_count_map(model: Model) -> Dict[str, LayerGateCount]:
    return {c.name: c for c in layer_gate_counts(model)}
