"""Simulated-clock execution of a parallel schedule.

Python's GIL prevents genuine thread-level speedup for this workload, so —
per the substitution note in DESIGN.md — parallel latency is *simulated*:
the schedule's per-layer worker assignment is exact, and the parallel wall
time is derived from the measured **sequential** wall time of each layer,

    parallel_time(layer) = sequential_time(layer) * span_work / total_work.

This preserves every effect the paper measures (imbalance on small layers,
sequential cross-layer dependencies, diminishing returns with more
workers) while staying deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedule.scheduler import ParallelSchedule


def simulate_parallel_time(
    schedule: ParallelSchedule, layer_work: Sequence
) -> float:
    """Parallel wall time implied by measured sequential layer times."""
    by_name = {layer.name: layer for layer in layer_work}
    total = 0.0
    for assignment in schedule.assignments:
        layer = by_name[assignment.name]
        work = assignment.total_work()
        if work <= 0 or layer.wall_time <= 0:
            total += layer.wall_time
            continue
        total += layer.wall_time * assignment.span_work() / work
    return total
