"""Simulated-clock execution of a parallel schedule.

Python's GIL prevents genuine thread-level speedup for this workload, so —
per the substitution note in DESIGN.md — parallel latency is *simulated*:
the schedule's per-layer worker assignment is exact, and the parallel wall
time is derived from the measured **sequential** wall time of each layer,

    parallel_time(layer) = sequential_time(layer) * span_work / total_work.

This preserves every effect the paper measures (imbalance on small layers,
sequential cross-layer dependencies, diminishing returns with more
workers) while staying deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.schedule.scheduler import ParallelSchedule


def simulate_parallel_time(
    schedule: ParallelSchedule, layer_work: Sequence
) -> float:
    """Parallel wall time implied by measured sequential layer times."""
    by_name = {layer.name: layer for layer in layer_work}
    total = 0.0
    for assignment in schedule.assignments:
        layer = by_name[assignment.name]
        work = assignment.total_work()
        if work <= 0 or layer.wall_time <= 0:
            total += layer.wall_time
            continue
        total += layer.wall_time * assignment.span_work() / work
    return total


@dataclass(frozen=True)
class LayerComparison:
    """Modeled vs measured span for one layer."""

    name: str
    modeled: float  # seconds the simclock model predicts for this layer
    measured: float  # max worker-span seconds the executor observed

    @property
    def ratio(self) -> float:
        """measured / modeled — 1.0 means the model was exact."""
        return self.measured / self.modeled if self.modeled > 0 else 0.0


def modeled_vs_measured(
    schedule: ParallelSchedule,
    layer_work: Sequence,
    measured_spans: Dict[str, float],
) -> List[LayerComparison]:
    """Compare the simclock's predicted per-layer spans against spans the
    :class:`~repro.core.schedule.executor.ScheduleExecutor` actually
    measured (``WitnessEvaluation.layer_seconds``).

    The model stays the deterministic source of truth for figures; this
    hook quantifies how far real fork/IPC overhead and GIL-free worker
    arithmetic land from it.  Layers present on only one side are skipped
    (the executor adds anonymous filler layers the model never sees).
    """
    by_name = {layer.name: layer for layer in layer_work}
    out: List[LayerComparison] = []
    for assignment in schedule.assignments:
        layer = by_name.get(assignment.name)
        measured = measured_spans.get(assignment.name)
        if layer is None or measured is None:
            continue
        work = assignment.total_work()
        modeled = (
            layer.wall_time * assignment.span_work() / work
            if work > 0 and layer.wall_time > 0
            else layer.wall_time
        )
        out.append(
            LayerComparison(
                name=assignment.name, modeled=modeled, measured=measured
            )
        )
    return out
