"""Executor-backed §5.2 scheduling: real workers over CSR constraint rows.

:mod:`repro.core.schedule.simclock` *models* the paper's Circuit
Computation parallelism (exact layer partition, simulated wall time); this
module *executes* it.  The unit of work is one constraint row of the CSR
snapshot (:mod:`repro.r1cs.csr`): rows inside one layer's range are
independent (they only read the already-assigned witness), so each layer's
row range is partitioned across a process pool following the
:class:`~repro.core.schedule.scheduler.ParallelSchedule` worker
assignments, and layers are gathered in order — the paper's
"parallelism within a layer, layers sequential" shape.

Two transport modes:

* **fork sharing** (POSIX default) — the CSR arrays and dense assignment
  are published in a module global and the pool is forked with them in
  place, so workers inherit the snapshot copy-on-write and payloads are
  just ``(start, stop)`` row spans.  The pool is cached keyed by the
  snapshot's ``stamp`` (see :mod:`repro.r1cs.csr`): repeated proves over
  the same witness reuse the warm pool, and any structure change or
  witness re-assignment restamps the snapshot, forcing a re-fork;
* **pickle fallback** — each task ships a rebased
  :meth:`~repro.r1cs.csr.CSRSystem.row_span` copy, for platforms without
  ``fork``.

Workers run under a fresh op-counter scope and return their tallies, so
the parent's cost-model counters match the sequential path exactly — the
op-count parity the regression tests pin down.

A second, persistent pool (:func:`worker_pool`) serves payload-pickled
one-shot tasks — the QAP coset-NTT chains dispatched by
:func:`repro.snark.qap.quotient_coefficients`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule.scheduler import ParallelSchedule
from repro.field.counters import count_ops, global_counter
from repro.r1cs.csr import CSRSystem, evaluate_rows

TALLY_KEYS = ("field_mul", "field_add", "field_inv", "lc_term")


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


# -- persistent pool for payload-pickled tasks (QAP chains) -----------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def worker_pool(workers: int) -> ProcessPoolExecutor:
    """A cached process pool for self-contained (pickled) payloads."""
    pool = _POOLS.get(workers)
    if pool is None:
        ctx = _fork_context() or multiprocessing.get_context()
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        _POOLS[workers] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Tear down cached pools (tests / interpreter exit)."""
    global _WITNESS_POOL, _WITNESS_KEY, _SHARED_CSR
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    if _WITNESS_POOL is not None:
        _WITNESS_POOL.shutdown(wait=False, cancel_futures=True)
        _WITNESS_POOL = None
    _WITNESS_KEY = None
    _SHARED_CSR = None


atexit.register(shutdown_worker_pools)


# -- worker entry points ----------------------------------------------------------

_SHARED_CSR: Optional[CSRSystem] = None  # fork-inherited snapshot
_WITNESS_POOL: Optional[ProcessPoolExecutor] = None
_WITNESS_KEY: Optional[Tuple[int, int]] = None  # (csr.stamp, num_workers)


def _witness_pool(csr: CSRSystem, workers: int) -> ProcessPoolExecutor:
    """The fork-shared pool for ``csr``, re-forked only when the snapshot
    stamp changes (new structure or re-assigned witness) or the worker
    count does.  Workers fork lazily on first submit, inheriting the
    published ``_SHARED_CSR`` copy-on-write."""
    global _SHARED_CSR, _WITNESS_POOL, _WITNESS_KEY
    key = (csr.stamp, workers)
    if _WITNESS_POOL is None or _WITNESS_KEY != key:
        if _WITNESS_POOL is not None:
            _WITNESS_POOL.shutdown(wait=False, cancel_futures=True)
        _SHARED_CSR = csr
        _WITNESS_POOL = ProcessPoolExecutor(
            max_workers=workers, mp_context=_fork_context()
        )
        _WITNESS_KEY = key
    return _WITNESS_POOL


def _eval_span_shared(span: Tuple[int, int]):
    """Fork-mode worker: evaluate rows ``[start, stop)`` of the inherited
    CSR snapshot; returns rows + op tally + measured seconds."""
    start, stop = span
    began = time.perf_counter()
    with count_ops() as ops:
        a, b, c = evaluate_rows(_SHARED_CSR, start, stop)
    tally = {key: getattr(ops, key) for key in TALLY_KEYS}
    return start, a, b, c, tally, time.perf_counter() - began


def _eval_span_pickled(payload: Tuple[int, CSRSystem]):
    """Pickle-mode worker: the payload carries a rebased row span."""
    start, span_csr = payload
    began = time.perf_counter()
    with count_ops() as ops:
        a, b, c = evaluate_rows(span_csr)
    tally = {key: getattr(ops, key) for key in TALLY_KEYS}
    return start, a, b, c, tally, time.perf_counter() - began


# -- layer planning ---------------------------------------------------------------


@dataclass(frozen=True)
class LayerSlices:
    """One layer's row range, partitioned into per-worker spans."""

    name: str
    start: int
    stop: int
    spans: Tuple[Tuple[int, int], ...]  # contiguous, non-empty, in order

    @property
    def num_rows(self) -> int:
        return self.stop - self.start


def _proportional_spans(
    start: int, stop: int, shares: Sequence[int]
) -> Tuple[Tuple[int, int], ...]:
    """Split ``[start, stop)`` into contiguous spans proportional to
    ``shares`` (monotone integer cuts; zero-width spans are dropped)."""
    total = sum(shares)
    n = stop - start
    if total <= 0 or n <= 0:
        return ((start, stop),) if n > 0 else ()
    spans: List[Tuple[int, int]] = []
    acc = 0
    prev = 0
    for share in shares:
        acc += share
        cut = (n * acc) // total
        if cut > prev:
            spans.append((start + prev, start + cut))
        prev = cut
    return tuple(spans)


def plan_layer_slices(
    num_rows: int,
    layer_ranges: Optional[Dict[str, range]] = None,
    num_workers: int = 1,
    schedule: Optional[ParallelSchedule] = None,
) -> List[LayerSlices]:
    """Partition ``num_rows`` constraint rows into per-layer worker spans.

    Layer provenance comes from ``ConstraintSystem.layer_ranges``; rows
    outside every tagged range (e.g. a trailing knit flush) become
    anonymous filler layers so coverage is total.  When a
    :class:`ParallelSchedule` is given, each matching layer's rows are
    split proportionally to its ``units_per_worker`` assignment — the
    §5.2 partition, re-expressed over constraint rows; otherwise rows
    split evenly across ``num_workers``.
    """
    by_name = (
        {a.name: a for a in schedule.assignments} if schedule is not None else {}
    )
    ordered = sorted(
        (
            (rng.start, min(rng.stop, num_rows), name)
            for name, rng in (layer_ranges or {}).items()
            if rng.start < min(rng.stop, num_rows)
        ),
    )
    plan: List[LayerSlices] = []

    def add(name: str, start: int, stop: int) -> None:
        assignment = by_name.get(name)
        shares = (
            assignment.units_per_worker
            if assignment is not None
            else [1] * max(num_workers, 1)
        )
        spans = _proportional_spans(start, stop, shares)
        if spans:
            plan.append(LayerSlices(name, start, stop, spans))

    cursor = 0
    for start, stop, name in ordered:
        if start > cursor:
            add(f"rows[{cursor}:{start}]", cursor, start)
        add(name, max(start, cursor), stop)
        cursor = max(cursor, stop)
    if cursor < num_rows:
        add(f"rows[{cursor}:{num_rows}]", cursor, num_rows)
    return plan


# -- the executor -----------------------------------------------------------------


@dataclass
class WitnessEvaluation:
    """Result of one executor-parallel witness evaluation."""

    a_rows: List[int]
    b_rows: List[int]
    c_rows: List[int]
    num_workers: int
    mode: str  # "fork" | "pickle"
    layer_seconds: Dict[str, float] = field(default_factory=dict)  # max span
    tally: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0


class ScheduleExecutor:
    """Evaluates witness rows layer-by-layer in real worker processes.

    The deterministic model (:mod:`~repro.core.schedule.simclock`) stays
    the source of *predicted* speedups; this executor produces *measured*
    per-layer spans that
    :func:`~repro.core.schedule.simclock.modeled_vs_measured` compares
    against the model.
    """

    def __init__(self, num_workers: int = 2, mode: str = "auto") -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        if mode == "auto":
            mode = "fork" if _fork_context() is not None else "pickle"
        if mode not in ("fork", "pickle"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = mode

    def evaluate_witness(
        self,
        csr: CSRSystem,
        layer_ranges: Optional[Dict[str, range]] = None,
        schedule: Optional[ParallelSchedule] = None,
    ) -> WitnessEvaluation:
        """``(A_w, B_w, C_w)`` rows via the worker pool, layers in order."""
        if csr.z is None:
            raise ValueError("CSR snapshot has no assignment vector")
        began = time.perf_counter()
        plan = plan_layer_slices(
            csr.num_rows, layer_ranges, self.num_workers, schedule
        )
        result = WitnessEvaluation(
            a_rows=[0] * csr.num_rows,
            b_rows=[0] * csr.num_rows,
            c_rows=[0] * csr.num_rows,
            num_workers=self.num_workers,
            mode=self.mode,
            tally={key: 0 for key in TALLY_KEYS},
        )
        if self.num_workers == 1 or not plan:
            with count_ops() as ops:
                a, b, c = evaluate_rows(csr)
            result.a_rows, result.b_rows, result.c_rows = a, b, c
            for key in TALLY_KEYS:
                result.tally[key] = getattr(ops, key)
            self._merge_tally(result.tally)
            result.wall_time = time.perf_counter() - began
            if plan:
                for layer in plan:
                    result.layer_seconds[layer.name] = 0.0
            return result

        if self.mode == "fork":
            pool = _witness_pool(csr, self.num_workers)
            futures = [
                (
                    layer,
                    [
                        pool.submit(_eval_span_shared, span)
                        for span in layer.spans
                    ],
                )
                for layer in plan
            ]
            self._gather(futures, result)
        else:
            pool = worker_pool(self.num_workers)
            futures = [
                (
                    layer,
                    [
                        pool.submit(
                            _eval_span_pickled,
                            (span[0], csr.row_span(span[0], span[1])),
                        )
                        for span in layer.spans
                    ],
                )
                for layer in plan
            ]
            self._gather(futures, result)
        self._merge_tally(result.tally)
        result.wall_time = time.perf_counter() - began
        return result

    def _gather(self, futures, result: WitnessEvaluation) -> None:
        for layer, layer_futures in futures:
            span_max = 0.0
            for future in layer_futures:
                start, a, b, c, tally, seconds = future.result()
                result.a_rows[start : start + len(a)] = a
                result.b_rows[start : start + len(b)] = b
                result.c_rows[start : start + len(c)] = c
                for key in TALLY_KEYS:
                    result.tally[key] += tally.get(key, 0)
                span_max = max(span_max, seconds)
            result.layer_seconds[layer.name] = span_max

    @staticmethod
    def _merge_tally(tally: Dict[str, int]) -> None:
        """Fold worker op tallies into this process's active counter."""
        counter = global_counter()
        for key, value in tally.items():
            setattr(counter, key, getattr(counter, key) + value)
