"""Steps 2-3 of the scheduler (§5.2): map layer gates to worker threads.

Two observations drive the design (quoted from the paper):

* gates in the same NN layer can be computed independently, while gates in
  later layers depend on earlier layers — so parallelism is exploited
  *within* a layer and layers stay sequential;
* the number of gates per layer follows directly from the layer shape — so
  assignment needs no circuit parsing.

"We evenly assign gates in the same layer to each thread."  A layer with
``u`` independent units on ``T`` workers gives some worker
``ceil(u / T)`` units; the layer's parallel span is that worker's share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class LayerAssignment:
    """One layer's partition across workers."""

    name: str
    units_per_worker: List[int]  # length = num_workers
    work_per_unit: float  # LC-term operations per independent unit

    @property
    def span_units(self) -> int:
        return max(self.units_per_worker)

    @property
    def total_units(self) -> int:
        return sum(self.units_per_worker)

    def span_work(self) -> float:
        return self.span_units * self.work_per_unit

    def total_work(self) -> float:
        return self.total_units * self.work_per_unit


@dataclass
class ParallelSchedule:
    """The full schedule plus its modeled speedup."""

    num_workers: int
    assignments: List[LayerAssignment] = field(default_factory=list)

    def total_work(self) -> float:
        return sum(a.total_work() for a in self.assignments)

    def span_work(self) -> float:
        """Critical-path work: layers are sequential, units parallel."""
        return sum(a.span_work() for a in self.assignments)

    def speedup(self) -> float:
        span = self.span_work()
        return self.total_work() / span if span else 1.0

    def utilization(self) -> float:
        """Fraction of worker-time doing useful work."""
        span = self.span_work()
        if not span:
            return 1.0
        return self.total_work() / (span * self.num_workers)


class WorkloadScheduler:
    """Builds a :class:`ParallelSchedule` from per-layer work records."""

    def __init__(self, num_workers: int = 16) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def partition_units(self, units: int) -> List[int]:
        """Evenly split ``units`` independent items over the workers."""
        base, extra = divmod(units, self.num_workers)
        return [base + (1 if w < extra else 0) for w in range(self.num_workers)]

    def schedule(self, layer_work: Sequence) -> ParallelSchedule:
        """``layer_work``: records with .name, .num_units, .work_units."""
        schedule = ParallelSchedule(num_workers=self.num_workers)
        for layer in layer_work:
            units = max(int(layer.num_units), 1)
            per_unit = layer.work_units / units if units else 0.0
            schedule.assignments.append(
                LayerAssignment(
                    name=layer.name,
                    units_per_worker=self.partition_units(units),
                    work_per_unit=per_unit,
                )
            )
        return schedule

    def schedule_from_model(self, model) -> ParallelSchedule:
        """The paper's §5.2 flow: schedule from layer *shapes* alone.

        "Based on the plaintext NN with specific layer shapes, we first
        count the number of addition and multiplication in each layer ...
        then we directly identify the gates for each NN layer" — no circuit
        is compiled or parsed.  Gate counts come from
        :func:`repro.core.schedule.counter.layer_gate_counts`; work per
        layer is its total gate count.
        """
        from repro.core.schedule.counter import layer_gate_counts

        schedule = ParallelSchedule(num_workers=self.num_workers)
        for count in layer_gate_counts(model):
            units = max(count.independent_units, 1)
            per_unit = count.total_gates / units
            schedule.assignments.append(
                LayerAssignment(
                    name=count.name,
                    units_per_worker=self.partition_units(units),
                    work_per_unit=per_unit,
                )
            )
        return schedule
