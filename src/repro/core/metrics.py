"""Cost model converting operation counts into modeled latency.

Wall-clock alone cannot reproduce the paper's security-computation figures
in pure Python: the honest BN254 backend pays Python-bigint constants and
the simulated backend is artificially cheap.  The cost model bridges this:
security computation cost is computed in *group-addition units* from the
exact MSM sizes (witness length ``n``, constraint count ``m`` — the same
proportionality the paper states in §2.1) and converted to seconds with a
per-G1-addition constant calibrated against the real curve on this machine.

Generate and circuit-computation phases are always measured wall-clock —
they are pure Python in both the baseline and ZENO paths, so their *ratios*
(which is what the figures plot) are faithful.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, MutableMapping, Optional, Union

from repro.snark.backends import SECURITY_BACKENDS, SecurityBackendProfile

PhaseSink = Union[Callable[[str, float], None], MutableMapping]


def peak_rss_bytes() -> int:
    """Lifetime peak resident-set size of this process, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux but bytes on
    macOS; normalized here.  Returns 0 where the ``resource`` module is
    unavailable (e.g. Windows).  Note this is a high-water mark for the
    whole process lifetime — capped-memory measurements need a fresh
    subprocess, not a reset.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(rss)
    return int(rss) * 1024


class PhaseTimer:
    """Context manager timing one named phase (generate / circuit / security).

    The compiler driver and the serving telemetry both need the same
    per-phase wall-clock split (Fig. 4's Generate / Circuit Computation /
    Security Computation); this measures it in one place instead of ad-hoc
    ``time.perf_counter()`` pairs.

    ``sink`` may be a callable ``(name, seconds)`` or a mutable mapping —
    mappings accumulate, so re-entering the same phase sums its time::

        with PhaseTimer("generate", sink=timings):
            ...
        timings["generate"]  # seconds
    """

    def __init__(self, name: str, sink: Optional[PhaseSink] = None) -> None:
        self.name = name
        self.sink = sink
        self.elapsed: float = 0.0
        self.peak_rss_bytes: int = 0
        self._start: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "PhaseTimer re-used without __enter__"
        self.elapsed = time.perf_counter() - self._start
        self.peak_rss_bytes = peak_rss_bytes()
        self._start = None
        if self.sink is None:
            return
        if callable(self.sink):
            self.sink(self.name, self.elapsed)
        else:
            self.sink[self.name] = self.sink.get(self.name, 0.0) + self.elapsed

# Arkworks-era Rust pays roughly 1.3us per mixed Jacobian G1 addition on the
# paper's Xeon Gold 5218; used when calibration is skipped.
DEFAULT_G1_ADD_SECONDS = 1.3e-6


@dataclass
class CostModel:
    """Seconds-per-primitive constants for modeled latency."""

    g1_add_seconds: float = DEFAULT_G1_ADD_SECONDS

    @classmethod
    def calibrate_python(cls, samples: int = 2000) -> "CostModel":
        """Measure this interpreter's real-curve G1 addition cost.

        Useful when comparing modeled numbers against actual
        ``RealBN254Backend`` runs; figure benchmarks default to the Rust-era
        constant so modeled latencies are comparable to the paper's tables.
        """
        from repro.ec.bn254 import BN254_G1

        g = BN254_G1.generator
        p = BN254_G1.double(g)
        start = time.perf_counter()
        acc = g
        for _ in range(samples):
            acc = BN254_G1.add(acc, p)
        elapsed = time.perf_counter() - start
        return cls(g1_add_seconds=elapsed / samples)

    def security_seconds(
        self,
        num_variables: int,
        num_constraints: int,
        profile: Optional[SecurityBackendProfile] = None,
    ) -> float:
        """Modeled Groth16 proving latency for one constraint system."""
        profile = profile or SECURITY_BACKENDS["zeno"]
        units = profile.security_cost(num_variables, num_constraints)
        return units * self.g1_add_seconds

    def setup_seconds(self, num_variables: int, num_constraints: int) -> float:
        """Modeled one-time trusted-setup cost (CRS scalar muls)."""
        # ~5 fixed-base scalar muls per variable + domain-size h query.
        ops = 5 * num_variables * 256 + max(num_constraints, 1) * 256
        return ops * self.g1_add_seconds

    # -- GPU projection (the paper's stated future work, §7.1/§8) ----------------

    #: "GPUs can further accelerate zkSNARK by an order of magnitude [27]"
    #: — the Bellperson GPU prover the paper cites.  MSMs (the security
    #: phase's bulk) map almost perfectly onto GPU bucket kernels.
    GPU_MSM_SPEEDUP = 10.0

    def gpu_security_seconds(
        self,
        num_variables: int,
        num_constraints: int,
        profile: Optional[SecurityBackendProfile] = None,
    ) -> float:
        """Projected security-computation latency on a server GPU.

        A projection, not a measurement: divides the MSM-dominated modeled
        cost by the paper's cited order-of-magnitude GPU factor.  Used by
        the Table 5 discussion ("may reduce the zkSNARK NN latency to
        millisecond-level") and the deployment examples.
        """
        return (
            self.security_seconds(num_variables, num_constraints, profile)
            / self.GPU_MSM_SPEEDUP
        )
