"""ZENO core: the paper's primary contribution.

Subpackages map one-to-one onto the paper's sections:

* :mod:`repro.core.lang`     — §3  ZENO language construct (types + primitives)
* :mod:`repro.core.circuit`  — §5.1 circuit IRs (baseline arithmetic vs ZENO)
* :mod:`repro.core.privacy`  — §4  privacy-adaptive generation + knit encoding
* :mod:`repro.core.schedule` — §5.2 workload-specialized parallel scheduler
* :mod:`repro.core.reuse`    — §6.1 cache service + batch constraint sharing
* :mod:`repro.core.fusion`   — §6.2 zkSNARK-aware NN fusion
* :mod:`repro.core.compiler` — the end-to-end driver with optimization toggles
"""

from repro.core.compiler import (
    CompilerOptions,
    PrivacySetting,
    ZenoCompiler,
    arkworks_options,
    zeno_options,
)
from repro.core.pipeline import PhaseReport, ProveReport

__all__ = [
    "CompilerOptions",
    "PrivacySetting",
    "ZenoCompiler",
    "arkworks_options",
    "zeno_options",
    "PhaseReport",
    "ProveReport",
]
