"""The ZENO compiler driver: model + privacy -> circuit -> proof.

Bundles every optimization behind :class:`CompilerOptions` toggles so the
benchmark harness can ablate each contribution exactly as the paper's
figures do:

* ``arkworks_options()`` — the baseline profile: scalar arithmetic circuit,
  no knit, no cache, no fusion, single-threaded circuit computation;
* ``zeno_options()``     — everything on (ZENO circuit, knit, cache,
  fusion, 16-worker scheduler).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.circuit.compute import (
    CircuitComputer,
    ComputeOptions,
    ComputeResult,
    GenerateResult,
    SparsityReport,
)
from repro.core.fusion.fuse import fuse_model
from repro.core.lang.program import ZkProgram, program_from_model
from repro.core.lang.types import Privacy
from repro.core.metrics import CostModel, PhaseTimer
from repro.core.pipeline import PhaseReport, ProveReport
from repro.core.reuse.cache import CacheService
from repro.core.schedule.scheduler import ParallelSchedule, WorkloadScheduler
from repro.core.schedule.simclock import simulate_parallel_time
from repro.ec.backend import GroupBackend, SimulatedBackend
from repro.nn.graph import Model
from repro.snark import groth16
from repro.snark.backends import SECURITY_BACKENDS


class PrivacySetting(enum.Enum):
    """The privacy configurations of the paper's evaluation (§7.1)."""

    PRIVATE_IMAGE_PUBLIC_WEIGHTS = "private_image_public_weights"
    PRIVATE_IMAGE_PRIVATE_WEIGHTS = "private_image_private_weights"
    PUBLIC_IMAGE_PRIVATE_WEIGHTS = "public_image_private_weights"

    @property
    def image_privacy(self) -> Privacy:
        if self is PrivacySetting.PUBLIC_IMAGE_PRIVATE_WEIGHTS:
            return Privacy.PUBLIC
        return Privacy.PRIVATE

    @property
    def weights_privacy(self) -> Privacy:
        if self is PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS:
            return Privacy.PUBLIC
        return Privacy.PRIVATE

    @property
    def one_private(self) -> bool:
        return self is not PrivacySetting.PRIVATE_IMAGE_PRIVATE_WEIGHTS


@dataclass
class CompilerOptions:
    """Every ZENO optimization as an independent toggle."""

    privacy: PrivacySetting = PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS
    zeno_circuit: bool = True  # §5.1 ZENO circuit vs baseline arithmetic circuit
    privacy_adaptive: bool = True  # §4.1 Eq. 3 folding (off = naive Eq. 2)
    knit: bool = True  # §4.2 knit encoding (auto batch size)
    knit_batch: Optional[int] = None  # force a batch size (ablation)
    cache: bool = True  # §6.1 frequency-based cache service
    cache_capacity: int = 4096
    fusion: bool = True  # §6.2 zkSNARK-aware NN fusion
    scheduler_workers: int = 16  # §5.2 parallel scheduler (1 = sequential)
    gadget_mode: str = "lean"  # "lean" (paper accounting) | "strict" (sound)
    relu_bits: int = 16
    # Nonlinearity lowering: "bits" (sign/bit gadgets + one-hot selectors)
    # or "lookup" (repro.lookup LogUp argument, ARCHITECTURE §13).
    # Transformer LUT/LayerNorm/embedding layers honor the same knob.
    relu_mode: str = "bits"
    record_recipe: bool = False
    # Sparsity-aware compilation (public weights only): elide zero-weight
    # terms via shared per-row plans and — with sparse_share — deduplicate
    # structurally identical gadget emissions (pruned filter rows collapse
    # to one sub-circuit).  See ComputeOptions.sparse.
    sparse: bool = False
    sparse_share: bool = True
    # Post-compile soundness audit (repro.analysis): "off", "report"
    # (attach an AuditReport to the artifact), or "enforce" (additionally
    # raise CircuitAuditError on ERROR-severity findings).
    audit: str = "off"
    security_profile: str = "zeno"  # backend profile for modeled security cost
    name: str = "zeno"

    def compute_options(self) -> ComputeOptions:
        return ComputeOptions(
            zeno_circuit=self.zeno_circuit,
            privacy_adaptive=self.privacy_adaptive,
            knit=self.knit,
            knit_batch=self.knit_batch,
            cache=CacheService(self.cache_capacity) if self.cache else None,
            gadget_mode=self.gadget_mode,
            relu_bits=self.relu_bits,
            relu_mode=self.relu_mode,
            # The auditor seeds its determinism check from the witness
            # recipe (free inputs), so auditing implies recording one.
            record_recipe=self.record_recipe or self.audit != "off",
            sparse=self.sparse,
            sparse_share=self.sparse_share,
        )


def zeno_options(
    privacy: PrivacySetting = PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS,
    **overrides,
) -> CompilerOptions:
    """All ZENO optimizations enabled."""
    return replace(CompilerOptions(privacy=privacy, name="zeno"), **overrides)


def arkworks_options(
    privacy: PrivacySetting = PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS,
    **overrides,
) -> CompilerOptions:
    """The Arkworks-style baseline: scalar circuit, no ZENO optimizations."""
    base = CompilerOptions(
        privacy=privacy,
        zeno_circuit=False,
        knit=False,
        cache=False,
        fusion=False,
        scheduler_workers=1,
        security_profile="arkworks",
        name="arkworks",
    )
    return replace(base, **overrides)


def naive_options(
    privacy: PrivacySetting = PrivacySetting.PRIVATE_IMAGE_PUBLIC_WEIGHTS,
    **overrides,
) -> CompilerOptions:
    """§4.1's strawman: ignore privacy types entirely.

    Generates one constraint for every multiplication even when one operand
    is public — the "naive implementation" the paper motivates
    privacy-adaptive generation against.  Used by the ablation benchmarks;
    the measured Arkworks baseline (``arkworks_options``) keeps coefficient
    folding, which Arkworks' LC mechanics perform natively.
    """
    base = arkworks_options(privacy, **overrides)
    return replace(base, privacy_adaptive=False, name="naive")


@dataclass
class CompileArtifact:
    """Everything produced by one compilation."""

    model: Model
    program: ZkProgram
    options: CompilerOptions
    generate: GenerateResult
    compute: ComputeResult
    schedule: Optional[ParallelSchedule]
    parallel_circuit_time: float
    cache: Optional[CacheService] = None  # live frequency cache, if enabled
    audit: Optional[object] = None  # AuditReport when options.audit != "off"

    @property
    def cs(self):
        return self.compute.cs

    @property
    def num_constraints(self) -> int:
        return self.compute.cs.num_constraints

    @property
    def num_variables(self) -> int:
        return self.compute.cs.num_variables

    @property
    def sparsity(self):
        """The compilation's :class:`SparsityReport`, or None when dense."""
        return self.compute.sparsity

    @property
    def lookup(self):
        """The compilation's :class:`~repro.lookup.LookupReport`, or None."""
        return self.compute.lookup

    @property
    def circuit_time(self) -> float:
        """Circuit-computation latency after the parallel scheduler."""
        return self.parallel_circuit_time

    def public_inputs(self):
        return self.cs.public_values()

    def public_outputs_signed(self):
        """Public values decoded back to signed NN space (logits)."""
        p = self.cs.field.modulus
        half = p // 2
        return [v - p if v > half else v for v in self.cs.public_values()]

    def split(self, mode: str = "public", num_segments: Optional[int] = None):
        """Split this compilation into per-layer Groth16 instances.

        Returns a :class:`repro.aggregate.SplitModel` (see ARCHITECTURE
        §11); ``num_segments`` caps the instance count by merging
        consecutive layer slices into balanced contiguous groups.
        """
        from repro.aggregate import split_model

        return split_model(self.cs, mode=mode, num_segments=num_segments)


class ZenoCompiler:
    """Compiles models (or raw programs) and generates proofs."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    # -- compilation ----------------------------------------------------------------

    def compile_model(self, model: Model, image: np.ndarray) -> CompileArtifact:
        opts = self.options
        if opts.fusion:
            model = fuse_model(model)
        program = program_from_model(
            model,
            image,
            opts.privacy.image_privacy,
            opts.privacy.weights_privacy,
            relu_bits=opts.relu_bits,
        )
        return self.compile_program(program, model=model)

    def compile_program(
        self, program: ZkProgram, model: Optional[Model] = None
    ) -> CompileArtifact:
        opts = self.options
        compute_opts = opts.compute_options()
        computer = CircuitComputer(program, compute_opts)
        generated = computer.generate()
        computed = computer.compute()

        schedule = None
        parallel_time = computed.wall_time
        if opts.scheduler_workers > 1:
            scheduler = WorkloadScheduler(opts.scheduler_workers)
            schedule = scheduler.schedule(computed.layer_work)
            parallel_time = simulate_parallel_time(schedule, computed.layer_work)

        artifact = CompileArtifact(
            model=model,
            program=program,
            options=opts,
            generate=generated,
            compute=computed,
            schedule=schedule,
            parallel_circuit_time=parallel_time,
            cache=compute_opts.cache,
        )
        if opts.audit != "off":
            artifact.audit = self._audit(artifact, enforce=opts.audit == "enforce")
        return artifact

    def _audit(self, artifact: CompileArtifact, enforce: bool):
        from repro.analysis import (
            CircuitAuditError,
            assume_from_recipe,
            audit_system,
        )

        report = audit_system(
            artifact.cs, assume=assume_from_recipe(artifact.compute.recipe)
        )
        if enforce and not report.ok:
            raise CircuitAuditError(report)
        return report

    # -- proving ---------------------------------------------------------------------

    def prove(
        self,
        artifact: CompileArtifact,
        backend: Optional[GroupBackend] = None,
        rng: Optional[random.Random] = None,
        verify: bool = True,
    ) -> ProveReport:
        """Run actual Groth16 setup/prove/verify and report measured times."""
        backend = backend or SimulatedBackend()
        rng = rng or random.Random(0xC0FFEE)
        report = self._base_report(artifact)

        with PhaseTimer("setup") as setup_timer:
            setup_result = groth16.setup(artifact.cs, backend, rng)

        with PhaseTimer("security_computation") as prove_timer:
            proof = groth16.prove(
                setup_result.proving_key, artifact.cs, backend, rng
            )

        report.phases["security_computation"] = PhaseReport(
            name="security_computation",
            wall_time=prove_timer.elapsed,
            counts={"setup_time": setup_timer.elapsed},
        )
        if verify:
            report.verified = groth16.verify(
                setup_result.verifying_key,
                artifact.public_inputs(),
                proof,
                backend,
            )
        return report

    def report(
        self, artifact: CompileArtifact, cost_model: Optional[CostModel] = None
    ) -> ProveReport:
        """Measured front-end phases + cost-modeled security phase."""
        cost_model = cost_model or CostModel()
        report = self._base_report(artifact)
        profile = SECURITY_BACKENDS[self.options.security_profile]
        report.phases["security_computation"] = PhaseReport(
            name="security_computation",
            modeled_time=cost_model.security_seconds(
                artifact.num_variables, artifact.num_constraints, profile
            ),
            counts={
                "num_constraints": artifact.num_constraints,
                "num_variables": artifact.num_variables,
            },
        )
        return report

    # -- internals -----------------------------------------------------------------------

    def _base_report(self, artifact: CompileArtifact) -> ProveReport:
        opts = self.options
        report = ProveReport(
            model_name=artifact.program.name,
            privacy=opts.privacy.value,
            optimization_profile=opts.name,
            num_constraints=artifact.num_constraints,
            num_variables=artifact.num_variables,
            num_gates=artifact.generate.num_gates,
        )
        report.phases["generate"] = PhaseReport(
            name="generate",
            wall_time=artifact.generate.wall_time,
            counts={
                "mul_gates": artifact.generate.num_mul_gates,
                "add_gates": artifact.generate.num_add_gates,
                "critical_path": artifact.generate.critical_path,
            },
        )
        counts = {
            "lc_terms": artifact.compute.lc_terms,
            "sequential_time": artifact.compute.wall_time,
        }
        if artifact.schedule is not None:
            counts["scheduler_speedup"] = artifact.schedule.speedup()
        report.phases["circuit_computation"] = PhaseReport(
            name="circuit_computation",
            wall_time=artifact.parallel_circuit_time,
            counts=counts,
        )
        if artifact.audit is not None:
            audit_counts = {
                severity: float(count)
                for severity, count in artifact.audit.counts().items()
            }
            report.phases["audit"] = PhaseReport(
                name="audit",
                wall_time=sum(artifact.audit.sections.values()),
                counts=audit_counts,
            )
        return report
