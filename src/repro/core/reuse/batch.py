"""Batch-specialized constraint-system sharing (§6.1).

"The constraint system is a description of the zkSNARK NN computation ...
the same computation applies to each image such that the constraint system
can be shared."  ZENO's batch mode runs Generate and Circuit Computation
**once**, then for each image only re-assigns witness values before
security computation — exactly the paper's design (ZEN's n=100 accuracy
scheme is the canonical workload, Fig. 14).

Re-assignment is driven by the *witness recipe* recorded during circuit
computation: an ordered log of ``(variable, descriptor)`` pairs describing
how each variable's value derives from a plaintext trace.  Re-proving a new
image therefore costs one plaintext forward pass plus ``O(num_variables)``
assignments — no gates, no LC expansion, no constraint emission.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.circuit.compute import (
    CircuitComputer,
    ComputeOptions,
    ComputeResult,
)
from repro.core.circuit.gadgets import RANGE_OFFSET
from repro.core.lang.program import (
    ActLUTOp,
    DotLayerOp,
    EmbedOp,
    LayerNormOp,
    MatMulOp,
    RowScaleOp,
    ZkProgram,
    program_from_model,
)
from repro.core.lang.types import Privacy
from repro.nn.graph import INPUT, Model


@dataclass
class BatchStats:
    """Timing ledger comparing shared vs per-image compilation."""

    generate_time: float = 0.0
    circuit_time: float = 0.0
    setup_time: float = 0.0  # one-time Groth16 setup (warm_setup)
    assign_times: List[float] = field(default_factory=list)

    def shared_total(self) -> float:
        """Compilation cost with sharing: compile once + assign per image."""
        return self.generate_time + self.circuit_time + sum(self.assign_times)

    def unshared_total(self) -> float:
        """Compilation cost without sharing: compile every image."""
        n = max(len(self.assign_times), 1)
        return (self.generate_time + self.circuit_time) * n


class BatchProver:
    """Compile once, re-assign witnesses per image."""

    def __init__(
        self,
        model: Model,
        base_image: np.ndarray,
        image_privacy: Privacy = Privacy.PRIVATE,
        weights_privacy: Privacy = Privacy.PUBLIC,
        options: Optional[ComputeOptions] = None,
    ) -> None:
        self.model = model
        self.image_privacy = image_privacy
        self.weights_privacy = weights_privacy
        opts = options or ComputeOptions()
        opts.record_recipe = True
        self.options = opts
        self.stats = BatchStats()

        program = program_from_model(
            model, base_image, image_privacy, weights_privacy,
            relu_bits=opts.relu_bits,
        )
        from repro.core.lang.program import MaxPoolOp

        if any(isinstance(op, MaxPoolOp) for op in program.ops):
            raise NotImplementedError(
                "batch constraint-system sharing does not support MaxPool2d "
                "(its comparison-chain witnesses are not recipe-encoded); "
                "use AvgPool2d or per-image compilation"
            )
        computer = CircuitComputer(program, opts)
        generated = computer.generate()
        self.result: ComputeResult = computer.compute()
        if self.result.recipe is None:
            raise RuntimeError("witness recipe was not recorded")
        self.stats.generate_time = generated.wall_time
        self.stats.circuit_time = self.result.wall_time
        self._setup = None
        self._tables = None

    @property
    def cs(self):
        return self.result.cs

    # -- serving-path hooks -----------------------------------------------------------

    def warm_setup(self, backend=None, rng=None, precompute=True):
        """Run Groth16 setup once for the shared constraint system.

        The serving worker pool (:mod:`repro.serve.workers`) keeps one
        ``BatchProver`` warm per (model, profile); the setup — by far the
        most expensive per-key cost — is cached here so every subsequent
        job pays only assign + prove.

        With ``precompute`` (the default), fixed-base MSM tables are built
        over the CRS query vectors alongside the setup; ``self.tables``
        then serves every proof of the session without re-deriving
        window-shifted bases (see :mod:`repro.ec.fixed_base`).
        """
        if self._setup is None:
            from repro.ec.backend import SimulatedBackend
            from repro.snark import groth16
            from repro.snark.keys import precompute_proving_tables

            backend = backend or SimulatedBackend()
            start = time.perf_counter()
            self._setup = groth16.setup(self.cs, backend, rng)
            if precompute:
                self._tables = precompute_proving_tables(
                    self._setup.proving_key, backend
                )
            self.stats.setup_time = time.perf_counter() - start
        return self._setup

    @property
    def tables(self):
        """Fixed-base CRS tables built by :meth:`warm_setup` (or ``None``)."""
        return self._tables

    def prove(
        self,
        image: Optional[np.ndarray] = None,
        backend=None,
        rng=None,
        parallelism: Optional[int] = None,
        phase_sink: Optional[Dict[str, float]] = None,
    ):
        """Prove the current witness (re-assigning ``image`` first if given).

        Bundles the whole warm path: cached setup + fixed-base tables from
        :meth:`warm_setup`, witness re-assignment via the recipe, and the
        parallel prover engine — the shared CSR structure is reused across
        images automatically (``to_csr`` only refreshes the dense ``z``).
        ``phase_sink`` accumulates per-phase prover seconds across calls.
        """
        from repro.ec.backend import SimulatedBackend
        from repro.snark import groth16

        backend = backend or SimulatedBackend()
        setup = self.warm_setup(backend)
        if image is not None:
            self.assign_image(image)
        return groth16.prove(
            setup.proving_key,
            self.cs,
            backend,
            rng,
            tables=self._tables,
            parallelism=parallelism,
            phase_sink=phase_sink,
        )

    # -- per-image witness assignment -------------------------------------------------

    def assign_image(self, image: np.ndarray) -> ZkProgram:
        """Re-trace the model on ``image`` and re-assign every variable.

        Returns the traced program (whose final logits are the new public
        inputs).  Raises if the recipe meets an unknown descriptor.
        """
        start = time.perf_counter()
        program = program_from_model(
            self.model,
            image,
            self.image_privacy,
            self.weights_privacy,
            relu_bits=self.options.relu_bits,
        )
        values: Dict[str, np.ndarray] = {
            INPUT: program.input_values.reshape(-1)
        }
        acc: Dict[str, np.ndarray] = {}
        relu_in: Dict[str, np.ndarray] = {}
        ops = {}
        # Transformer-op derived witnesses: one-hot selector inputs and
        # outputs (tag -> values), and LayerNorm's centered/normalized
        # intermediates — tags match the circuit lowering in compute.py.
        sel_in: Dict[str, tuple] = {}
        sel_out: Dict[str, np.ndarray] = {}
        ln: Dict[str, tuple] = {}
        for op in program.ops:
            values[op.output] = op.out_values.reshape(-1)
            ops[op.name] = op
            if hasattr(op, "acc_values") and op.acc_values is not None:
                acc[op.name] = op.acc_values
            if hasattr(op, "in_values") and op.in_values is not None:
                relu_in[op.name] = op.in_values
            if isinstance(op, ActLUTOp):
                from repro.lookup import get_table

                table = get_table(op.table_name)
                sel_in[op.name] = (op.in_values.reshape(-1), table.domain_lo)
                sel_out[op.name] = op.out_values.reshape(-1)
            elif isinstance(op, EmbedOp):
                sel_in[op.name] = (op.ids.reshape(-1), 0)
                sel_out[op.name] = op.out_values.reshape(-1)
            elif isinstance(op, LayerNormOp):
                from repro.lookup import get_table

                x = op.in_values.astype(np.int64)
                mean_acc = x.sum(axis=1)
                c = x - (mean_acc >> op.mean_shift)[:, None]
                var_acc = (c * c).sum(axis=1)
                var_q = var_acc >> op.var_shift
                y = get_table("rsqrt").apply(var_q)
                acc[f"{op.name}#mean"] = mean_acc
                acc[f"{op.name}#var"] = var_acc
                acc[f"{op.name}#out"] = (c * y[:, None]).reshape(-1)
                ln[op.name] = (c, y)
                sel_in[f"{op.name}#y"] = (var_q, 0)
                sel_out[f"{op.name}#y"] = y

        cs = self.cs
        for var, desc in self.result.recipe:
            kind = desc[0]
            if kind == "image":
                cs.assign(var, int(values[INPUT][desc[1]]))
            elif kind == "const":
                continue  # weights and BN parameters do not change per image
            elif kind == "out":
                _, name, idx, shift = desc
                cs.assign(var, int(acc[name][idx]) >> shift)
            elif kind == "rem":
                _, name, idx, shift = desc
                a = int(acc[name][idx])
                cs.assign(var, a - ((a >> shift) << shift))
            elif kind == "rem_bit":
                _, name, idx, shift, i = desc
                a = int(acc[name][idx])
                rem = a - ((a >> shift) << shift)
                cs.assign(var, (rem >> i) & 1)
            elif kind == "out_bit":
                _, name, idx, shift, i = desc
                out = (int(acc[name][idx]) >> shift) + RANGE_OFFSET
                cs.assign(var, (out >> i) & 1)
            elif kind == "sign":
                _, name, idx, _bits = desc
                cs.assign(var, 1 if int(relu_in[name][idx]) >= 0 else 0)
            elif kind == "relu_bit":
                _, name, idx, bits, i = desc
                shifted = int(relu_in[name][idx]) + (1 << (bits - 1))
                cs.assign(var, (shifted >> i) & 1)
            elif kind == "relu_out":
                _, name, idx, _bits = desc
                v = int(relu_in[name][idx])
                cs.assign(var, v if v > 0 else 0)
            elif kind == "dot_wire":
                _, name, d, i = desc
                op: DotLayerOp = ops[name]
                pos = int(op.input_cols[i, op.col_of_dot[d]])
                x = int(values[op.inputs[0]][pos - 1])
                w = int(op.weight_rows[op.row_of_dot[d]][i])
                cs.assign(var, w * x)
            elif kind == "affine_wire":
                _, name, idx = desc
                op = ops[name]
                x = int(values[op.inputs[0]][idx])
                cs.assign(var, int(op.gamma[idx]) * x)
            elif kind == "lut":
                # Lookup-argument wires (outputs, inverse columns,
                # multiplicities, sponge, range bits) are recomputed en
                # masse from the re-assigned input wires below.
                continue
            elif kind == "mul_wire":
                _, name, d, kk = desc
                op = ops[name]
                if isinstance(op, MatMulOp):
                    m, k, n = op.dims
                    a2 = values[op.inputs[0]].reshape(op.a_shape)
                    b2 = values[op.inputs[1]].reshape(op.b_shape)
                    i, jj = d // n, d % n
                    w = int(b2[jj, kk] if op.transpose_b else b2[kk, jj])
                    cs.assign(var, int(a2[i, kk]) * w)
                else:  # RowScaleOp: elementwise row reciprocal scaling
                    e = int(values[op.inputs[0]][d])
                    r = int(values[op.inputs[1]][d // op.width])
                    cs.assign(var, e * r)
            elif kind == "ln_sq":
                _, name, flat = desc
                c, _y = ln[name]
                cv = int(c[flat // c.shape[1], flat % c.shape[1]])
                cs.assign(var, cv * cv)
            elif kind == "ln_prod":
                _, name, flat = desc
                c, y = ln[name]
                cv = int(c[flat // c.shape[1], flat % c.shape[1]])
                cs.assign(var, cv * int(y[flat // c.shape[1]]))
            elif kind == "sel_bit":
                _, tag, idx, v = desc
                vals, lo = sel_in[tag]
                cs.assign(var, 1 if int(vals[idx]) == lo + v else 0)
            elif kind == "sel_out":
                _, tag, idx = desc
                cs.assign(var, int(sel_out[tag][idx]))
            else:
                raise ValueError(f"unknown recipe descriptor {desc!r}")
        if cs.lookup_blocks:
            from repro.lookup.argument import reassign_lookup_columns

            reassign_lookup_columns(cs)
        self.stats.assign_times.append(time.perf_counter() - start)
        return program
