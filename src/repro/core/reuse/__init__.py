"""NN-inspired computation reuse (§6.1)."""

from repro.core.reuse.cache import CacheService, profile_operand_pairs
from repro.core.reuse.batch import BatchProver

__all__ = ["CacheService", "profile_operand_pairs", "BatchProver"]
