"""Frequency-based cache service (§6.1).

During circuit computation the compiler repeatedly multiplies *public*
operand pairs on the λ-bit field — weight coefficients times knit
``delta^j`` powers, pooling/averaging scale factors, fused batch-norm
gammas.  Two NN facts make a tiny cache effective:

* activations/weights are uint8, so at most 256 distinct values exist;
* weights follow a Normal distribution, so values near zero dominate.

The paper's two-phase design is reproduced:

* **offline profiling** — run the plaintext NN on a small image set,
  count multiplication operand-pair frequencies, keep the top-k pairs;
* **online** — during circuit computation, look pairs up before computing.

Only public data is ever cached (no timing side channel on secrets).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Tuple

from repro.field.counters import global_counter
from repro.field.fp import Field


def profile_operand_pairs(
    model, images: Iterable, top_k: int = 5
) -> Counter:
    """Offline phase: frequency of (weight, activation-scale) operand pairs.

    Walks the plaintext model's dot layers over the given images and counts
    the public multiplication operands the circuit-computation phase will
    encounter.  Mirrors the paper's "evaluate the plaintext NN on a small
    set (=100) of images and profile the frequency of addition and
    multiplication operand pairs".
    """
    from repro.core.lang.program import program_from_model  # local: avoid cycle

    counts: Counter = Counter()
    for image in images:
        program = program_from_model(model, image)
        for op in program.dot_ops():
            unique, freq = _row_histogram(op.weight_rows)
            for value, count in zip(unique, freq):
                counts[int(value)] += int(count)
    return Counter(dict(counts.most_common(top_k))) if top_k else counts


def _row_histogram(rows) -> Tuple:
    import numpy as np

    unique, freq = np.unique(rows, return_counts=True)
    return unique, freq


class CacheService:
    """Top-k operand-pair product cache used during circuit computation.

    ``admit`` marks pairs as cacheable (the offline top-k set); by default
    every pair is admissible up to ``capacity`` (pure LRU-free table — the
    public-coefficient domain is tiny: 256 weight values x a handful of
    delta powers).  Counters record hits/misses so benchmarks can report
    the measured reuse rate.
    """

    def __init__(self, capacity: int = 4096, top_k_values=None) -> None:
        self.capacity = capacity
        self._table: Dict[Tuple[int, int], int] = {}
        self._contexts: Dict[tuple, Dict[int, int]] = {}
        self._admitted = (
            {int(v) for v in top_k_values} if top_k_values is not None else None
        )
        self.hits = 0
        self.misses = 0

    def _admissible(self, a: int) -> bool:
        return self._admitted is None or a in self._admitted

    def mul(self, field: Field, a: int, b: int) -> int:
        """``a * b mod p``, served from cache when possible.

        Hot path: hit/miss tallies live on the service itself (synced into
        the global counter by callers at phase boundaries) so a hit costs
        one dict probe and one integer increment.
        """
        cached = self._table.get((a, b))
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        product = (a * b) % field.modulus
        if len(self._table) < self.capacity and self._admissible(a):
            self._table[(a, b)] = product
        return product

    def mul_keyed(self, field: Field, a: int, b: int, key) -> int:
        """Like :meth:`mul` but indexed by a caller-supplied small key.

        The λ-bit operand (e.g. a knit ``delta^j`` power) would be expensive
        to hash; callers that know a compact identity for the pair — such as
        ``(weight value, power index)`` — pass it here.  Same semantics as
        the paper's operand-pair table, cheaper probes.
        """
        cached = self._table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        product = (a * b) % field.modulus
        if len(self._table) < self.capacity and self._admissible(a):
            self._table[key] = product
        return product

    def table_for(self, context: tuple) -> Dict[int, int]:
        """A product table for one fixed right-hand operand.

        Hot loops (knit packing) fix one operand per batch slot — e.g. the
        ``delta^j`` power — so the pair key collapses to the left operand
        alone, making probes a single dict lookup.  The caller inlines
        ``table.get`` / ``table[coeff] = product`` and reports tallies via
        :meth:`record`.  Each context's table is naturally bounded by the
        ~256 distinct uint8 weight values (the paper's §6.1 observation).
        """
        return self._contexts.setdefault(context, {})

    def record(self, hits: int, misses: int) -> None:
        """Report tallies from an inlined hot loop."""
        self.hits += hits
        self.misses += misses

    def num_entries(self) -> int:
        return len(self._table) + sum(len(t) for t in self._contexts.values())

    def sync_counters(self) -> None:
        """Publish hit/miss tallies into the active OpCounter."""
        counter = global_counter()
        counter.cache_hit += self.hits
        counter.cache_miss += self.misses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
