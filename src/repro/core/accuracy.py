"""Accuracy-proof service: ZEN's scheme as a first-class API (§6.1).

"One specific example is the accuracy scheme in ZEN [25], where the same
zkSNARK NN is used to process n(=100) images for proving the accuracy of
the zkSNARK NN."  This module packages that workload:

* the **prover** (`AccuracyProver`) compiles the constraint system once
  (batch-specialized sharing), then per image re-assigns the witness and
  emits a Groth16 proof whose public values are the logits;
* the **verifier** (`AccuracyVerifier`) holds only the verifying key and
  the public test set; it checks every proof (individually or batched via
  the random-linear-combination trick) and recomputes the claimed accuracy
  from the *proved* logits — the prover cannot inflate it.

The privacy setting is the paper's one-private regime: the claim is about
a model on public data, so images are the "private" circuit inputs only in
the structural sense; what the scheme certifies is that the published
logits really came from the committed computation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.circuit.compute import ComputeOptions
from repro.core.lang.types import Privacy
from repro.core.reuse.batch import BatchProver
from repro.ec.backend import GroupBackend, SimulatedBackend
from repro.nn.graph import Model
from repro.snark import groth16
from repro.snark.keys import VerifyingKey
from repro.snark.proof import Proof


@dataclass
class ImageClaim:
    """One image's proved result: public inputs, proof, claimed class."""

    index: int
    public_inputs: List[int]
    proof: Proof
    predicted_class: int


@dataclass
class AccuracyCertificate:
    """Everything the verifier needs: key, per-image claims, metadata."""

    verifying_key: VerifyingKey
    claims: List[ImageClaim]
    num_classes: int
    prove_seconds: float = 0.0

    def claimed_accuracy(self, labels: Sequence[int]) -> float:
        if len(labels) != len(self.claims):
            raise ValueError(
                f"{len(labels)} labels for {len(self.claims)} claims"
            )
        correct = sum(
            claim.predicted_class == int(label)
            for claim, label in zip(self.claims, labels)
        )
        return correct / len(self.claims) if self.claims else 0.0


def _argmax_signed(values: Sequence[int], modulus: int) -> int:
    half = modulus // 2
    signed = [v - modulus if v > half else v for v in values]
    return int(np.argmax(signed))


class AccuracyProver:
    """Compile once, prove each test image against the shared system."""

    def __init__(
        self,
        model: Model,
        sample_image: np.ndarray,
        backend: Optional[GroupBackend] = None,
        options: Optional[ComputeOptions] = None,
        crs_seed: int = 0xACC,
    ) -> None:
        self.backend = backend or SimulatedBackend()
        self.batch = BatchProver(
            model,
            sample_image,
            image_privacy=Privacy.PRIVATE,
            weights_privacy=Privacy.PUBLIC,
            options=options,
        )
        self.setup = groth16.setup(
            self.batch.cs, self.backend, random.Random(crs_seed)
        )

    @property
    def verifying_key(self) -> VerifyingKey:
        return self.setup.verifying_key

    def prove_images(
        self, images: Sequence[np.ndarray], rng_seed: int = 0
    ) -> AccuracyCertificate:
        """Prove every image; returns the certificate for the verifier."""
        claims: List[ImageClaim] = []
        modulus = self.batch.cs.field.modulus
        start = time.perf_counter()
        for i, image in enumerate(images):
            self.batch.assign_image(image)
            proof = groth16.prove(
                self.setup.proving_key,
                self.batch.cs,
                self.backend,
                random.Random(rng_seed + i),
            )
            publics = list(self.batch.cs.public_values())
            claims.append(
                ImageClaim(
                    index=i,
                    public_inputs=publics,
                    proof=proof,
                    predicted_class=_argmax_signed(publics, modulus),
                )
            )
        return AccuracyCertificate(
            verifying_key=self.setup.verifying_key,
            claims=claims,
            num_classes=len(claims[0].public_inputs) if claims else 0,
            prove_seconds=time.perf_counter() - start,
        )


class AccuracyVerifier:
    """Check a certificate: proofs, class claims, and the accuracy number."""

    def __init__(self, backend: Optional[GroupBackend] = None) -> None:
        self.backend = backend or SimulatedBackend()

    def verify(
        self,
        certificate: AccuracyCertificate,
        labels: Sequence[int],
        claimed_accuracy: Optional[float] = None,
        batched: bool = True,
        rng: Optional[random.Random] = None,
    ) -> Tuple[bool, float]:
        """Returns ``(accepted, recomputed_accuracy)``.

        Rejects if any proof fails, any claimed class disagrees with its
        proved logits, or (when given) the claimed accuracy disagrees with
        the recomputation.
        """
        if len(labels) != len(certificate.claims):
            return False, 0.0
        vk = certificate.verifying_key
        modulus = self.backend.scalar_field.modulus

        # 1. Class claims must match the proved logits.
        for claim in certificate.claims:
            if _argmax_signed(claim.public_inputs, modulus) != (
                claim.predicted_class
            ):
                return False, 0.0

        # 2. Cryptographic verification — batched (k+3 pairings) or one by
        #    one.
        if batched:
            ok = groth16.batch_verify(
                vk,
                [(c.public_inputs, c.proof) for c in certificate.claims],
                self.backend,
                rng or random.Random(),
            )
            if not ok:
                return False, 0.0
        else:
            for claim in certificate.claims:
                if not groth16.verify(
                    vk, claim.public_inputs, claim.proof, self.backend
                ):
                    return False, 0.0

        # 3. Recompute accuracy from the *proved* predictions.
        accuracy = certificate.claimed_accuracy(labels)
        if claimed_accuracy is not None and abs(
            accuracy - claimed_accuracy
        ) > 1e-9:
            return False, accuracy
        return True, accuracy
