"""Circuit IRs and the circuit-computation phase (§5.1).

Two interchangeable intermediate representations sit between the typed
:class:`~repro.core.lang.program.ZkProgram` and the R1CS:

* the **baseline arithmetic circuit** (:mod:`repro.core.circuit.arithmetic`)
  — per-scalar binary gates with recursive LC expansion, O(n^2) per dot
  product (how Arkworks-style frameworks behave);
* the **ZENO circuit** (:mod:`repro.core.circuit.zeno`) — n binary
  multiplication gates plus one multi-child addition gate per dot product,
  O(n) circuit computation and critical path 2 (Table 3).

Both produce semantically identical constraint systems, so the ZENO circuit
is an in-place replacement — a property the test suite checks directly.
"""

from repro.core.circuit.gates import (
    BaselineLayerCircuit,
    ZenoLayerCircuit,
    baseline_gate_counts,
    zeno_gate_counts,
)
from repro.core.circuit.compute import (
    CircuitComputer,
    ComputeOptions,
    ComputeResult,
    GenerateResult,
)

__all__ = [
    "BaselineLayerCircuit",
    "ZenoLayerCircuit",
    "baseline_gate_counts",
    "zeno_gate_counts",
    "CircuitComputer",
    "ComputeOptions",
    "ComputeResult",
    "GenerateResult",
]
