"""Circuit containers for both IRs, plus Table 3's analytic gate counts.

The Generate phase (§2.1 step 1) turns each dot-product layer into gates:

* **baseline** — every scalar multiplication/addition becomes its own
  binary gate.  We materialize the multiplication gates as two
  ``(num_dots, n)`` arrays (operand position, coefficient); the ``n-1``
  binary addition gates per dot are the left-deep chain over them.  Work
  and memory are proportional to the gate count ``mk * (2n - 1)``.
* **ZENO** — the structured ``(weight_rows, input_cols)`` tensor form *is*
  the circuit: ``n`` multiplication gates plus one multi-child addition
  gate per dot, kept symbolic.  Generate touches only per-layer metadata,
  which is the measured Generate-phase win of maintaining tensor semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.lang.program import DotLayerOp


@dataclass
class BaselineLayerCircuit:
    """Scalar-gate circuit of one dot layer (baseline IR)."""

    name: str
    x_pos: np.ndarray  # (num_dots, n) 1-based flat input positions; 0 = pad
    coeff: np.ndarray  # (num_dots, n) weight coefficient per mul gate
    num_mul_gates: int
    num_add_gates: int
    critical_path: int

    @property
    def num_gates(self) -> int:
        return self.num_mul_gates + self.num_add_gates


@dataclass
class ZenoLayerCircuit:
    """ZENO circuit of one dot layer: symbolic, tensor-structured."""

    name: str
    op: DotLayerOp
    num_mul_gates: int
    num_add_gates: int  # one multi-child gate per dot
    critical_path: int  # always 2 (Table 3)

    @property
    def num_gates(self) -> int:
        return self.num_mul_gates + self.num_add_gates


def generate_baseline(op: DotLayerOp) -> BaselineLayerCircuit:
    """Expand a dot layer into per-scalar gates (baseline Generate)."""
    # Materializing these arrays is the gate-construction work: one row of
    # (position, coefficient) per scalar multiplication gate.
    x_pos = np.ascontiguousarray(op.input_cols[:, op.col_of_dot].T)
    coeff = np.ascontiguousarray(op.weight_rows[op.row_of_dot])
    n = op.dot_length
    num_dots = op.num_dots
    return BaselineLayerCircuit(
        name=op.name,
        x_pos=x_pos,
        coeff=coeff,
        num_mul_gates=num_dots * n,
        num_add_gates=num_dots * (n - 1),
        critical_path=n,
    )


def generate_zeno(op: DotLayerOp) -> ZenoLayerCircuit:
    """Wrap a dot layer as a ZENO circuit (n mul gates + 1 multi-add)."""
    n = op.dot_length
    num_dots = op.num_dots
    return ZenoLayerCircuit(
        name=op.name,
        op=op,
        num_mul_gates=num_dots * n,
        num_add_gates=num_dots,
        critical_path=2,
    )


# -- Table 3: analytic per-layer complexity --------------------------------------


def baseline_gate_counts(layer: str, m: int, n: int, k: int = 1, s: int = 2) -> Dict:
    """Arithmetic-circuit row of Table 3 for one layer type.

    ``layer`` in {"dot", "fc", "conv", "pool"}; shapes follow the table:
    dot=(n,n), fc=(m x n, n), conv=(m x n, n x k), pool=(m x n, s).
    """
    if layer == "dot":
        return {
            "gates": 2 * n - 1,
            "wires": n,
            "lcs": n - 1,
            "critical_path": n,
            "computation": n * n,
        }
    if layer == "fc":
        return {
            "gates": m * (2 * n - 1),
            "wires": m * n,
            "lcs": m * (n - 1),
            "critical_path": n,
            "computation": m * n * n,
        }
    if layer == "conv":
        return {
            "gates": m * k * (2 * n - 1),
            "wires": m * k * n,
            "lcs": m * k * (n - 1),
            "critical_path": n,
            "computation": m * k * n * n,
        }
    if layer == "pool":
        grids = (m * n) // (s * s)
        return {
            "gates": grids * (s * s - 1),
            "wires": 0,
            "lcs": grids * (s * s - 1),
            "critical_path": s * s - 1,
            "computation": m * n * s * s,
        }
    raise ValueError(f"unknown layer type {layer!r}")


def zeno_gate_counts(layer: str, m: int, n: int, k: int = 1, s: int = 2) -> Dict:
    """ZENO-circuit row of Table 3 for one layer type."""
    if layer == "dot":
        return {
            "gates": n + 1,
            "wires": n,
            "lcs": 1,
            "critical_path": 2,
            "computation": n,
        }
    if layer == "fc":
        return {
            "gates": m * (n + 1),
            "wires": m * n,
            "lcs": m,
            "critical_path": 2,
            "computation": m * n,
        }
    if layer == "conv":
        return {
            "gates": m * k * (n + 1),
            "wires": m * k * n,
            "lcs": m * k,
            "critical_path": 2,
            "computation": m * k * n,
        }
    if layer == "pool":
        grids = (m * n) // (s * s)
        return {
            "gates": grids,
            "wires": 0,
            "lcs": grids,
            "critical_path": 1,
            "computation": m * n,
        }
    raise ValueError(f"unknown layer type {layer!r}")
