"""The circuit-computation phase: program -> gates -> constraint system.

This module implements both halves of §2.1's pipeline front end under one
driver:

* :meth:`CircuitComputer.generate` — the **Generate** phase (arithmetic
  function -> circuit), per IR;
* :meth:`CircuitComputer.compute`  — the **Circuit Computation** phase
  (circuit -> constraints), per IR, with the privacy-adaptive rules of
  §4.1, optional knit packing (§4.2), the frequency cache (§6.1), and
  per-layer work accounting consumed by the parallel scheduler (§5.2).

The baseline path deliberately reproduces the O(n^2) recursive LC
expansion of scalar-gate frameworks (left-deep merge of binary addition
gates); the ZENO path builds each dot product's LC in a single O(n) pass.
Both emit *identical* constraint semantics — a property under test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.circuit.gadgets import GadgetEmitter, GadgetStats
from repro.core.circuit.gates import (
    BaselineLayerCircuit,
    ZenoLayerCircuit,
    generate_baseline,
    generate_zeno,
)
from repro.core.lang.program import (
    ActLUTOp,
    AddOp,
    DotLayerOp,
    EmbedOp,
    EwiseAffineOp,
    FlattenOp,
    GatherOp,
    LayerNormOp,
    MatMulOp,
    MaxPoolOp,
    ReluOp,
    RowScaleOp,
    ZkProgram,
)
from repro.core.lang.types import Privacy
from repro.core.lang.zktensor import ZkTensor
from repro.core.privacy.knit import KnitPacker, expression_bits
from repro.field.counters import global_counter
from repro.lookup import LookupEngine, LookupReport, LookupTable, get_table
from repro.nn.graph import INPUT
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem


@dataclass
class ComputeOptions:
    """Optimization toggles for one compilation."""

    zeno_circuit: bool = True
    knit: bool = True
    knit_batch: Optional[int] = None  # None = paper's auto selection
    # §4.1 privacy-adaptive circuit generation.  When False (the Arkworks
    # baseline), the compiler "ignores privacy type of input data and
    # generates constraints for each multiplication": public weights are
    # still committed as private variables and every scalar product costs a
    # constraint (Eq. 2), exactly as the paper describes the naive path.
    privacy_adaptive: bool = True
    cache: Optional["CacheService"] = None  # repro.core.reuse.cache.CacheService
    gadget_mode: str = "lean"
    field_bits: int = 254
    relu_bits: int = 16
    record_recipe: bool = False  # log witness recipe for batch sharing (§6.1)
    # Sparsity-aware compilation (TeleSparse direction).  Active only when
    # weights are public — zero weights are then compile-time knowledge, so
    # eliding their terms leaks nothing.  Zero-weight taps are skipped via
    # per-row nonzero plans shared across identical row contents
    # (constraint-system preserving: identical LCs, byte-identical proofs
    # vs the dense path), and with ``sparse_share`` structurally identical
    # gadget emissions are additionally value-numbered so pruned filter
    # rows collapse to one sub-circuit (changes the constraint system —
    # strictly fewer constraints).
    sparse: bool = False
    sparse_share: bool = True
    # Nonlinearity lowering: "bits" keeps the per-activation
    # bit-decomposition gadgets (and one-hot selectors for table
    # functions); "lookup" routes ReLU/GELU/softmax/rsqrt/embedding
    # through the shared repro.lookup argument.
    relu_mode: str = "bits"


@dataclass
class SparsityReport:
    """What sparsity-aware compilation elided and shared (`--sparse`)."""

    enabled: bool = False
    weight_terms_total: int = 0  # dense tap count across all dots
    zero_terms_elided: int = 0  # zero-weight taps skipped
    total_rows: int = 0  # filter rows across all dot layers
    zero_rows: int = 0  # all-zero (pruned) rows
    distinct_rows: int = 0  # distinct row contents (one plan each)
    row_plan_hits: int = 0  # rows canonicalized via a shared plan
    outputs_shared: int = 0  # committed output wires deduplicated
    relus_shared: int = 0  # ReLU sub-circuits deduplicated

    @property
    def terms_kept(self) -> int:
        return self.weight_terms_total - self.zero_terms_elided

    def to_json(self) -> dict:
        return {
            "enabled": self.enabled,
            "weight_terms_total": self.weight_terms_total,
            "zero_terms_elided": self.zero_terms_elided,
            "total_rows": self.total_rows,
            "zero_rows": self.zero_rows,
            "distinct_rows": self.distinct_rows,
            "row_plan_hits": self.row_plan_hits,
            "outputs_shared": self.outputs_shared,
            "relus_shared": self.relus_shared,
        }


@dataclass
class LayerWork:
    """Scheduler-facing record of one layer's circuit-computation work."""

    name: str
    kind: str  # "conv" | "fc" | "pool" | "relu" | "bn" | "add"
    num_units: int  # independent work items (dots or elements)
    work_units: int  # total LC-term operations
    wall_time: float
    constraints: int


@dataclass
class GenerateResult:
    """Output of the Generate phase."""

    circuits: Dict[str, object]
    num_mul_gates: int = 0
    num_add_gates: int = 0
    critical_path: int = 0
    wall_time: float = 0.0

    @property
    def num_gates(self) -> int:
        return self.num_mul_gates + self.num_add_gates


@dataclass
class ComputeResult:
    """Output of the Circuit Computation phase."""

    cs: ConstraintSystem
    layer_work: List[LayerWork] = field(default_factory=list)
    gadget_stats: GadgetStats = None
    knit_constraints: int = 0
    knit_expressions: int = 0
    lc_terms: int = 0
    wall_time: float = 0.0
    recipe: Optional[list] = None  # (var, descriptor) witness log
    sparsity: Optional[SparsityReport] = None
    lookup: Optional[LookupReport] = None

    @property
    def num_constraints(self) -> int:
        return self.cs.num_constraints


class CircuitComputer:
    """Drives one program through Generate and Circuit Computation."""

    def __init__(self, program: ZkProgram, options: Optional[ComputeOptions] = None):
        self.program = program
        self.options = options or ComputeOptions()
        self.generated: Optional[GenerateResult] = None
        self._recipe: Optional[list] = None
        self._weight_var_cache: Dict[str, np.ndarray] = {}
        self._row_plan_cache: Dict[bytes, tuple] = {}
        self._sparsity: Optional[SparsityReport] = None
        self._engine: Optional[LookupEngine] = None

    # -- phase 1: Generate -------------------------------------------------------

    def generate(self) -> GenerateResult:
        opts = self.options
        start = time.perf_counter()
        result = GenerateResult(circuits={})
        for op in self.program.ops:
            if isinstance(op, DotLayerOp):
                circuit = (
                    generate_zeno(op) if opts.zeno_circuit else generate_baseline(op)
                )
                result.circuits[op.name] = circuit
                result.num_mul_gates += circuit.num_mul_gates
                result.num_add_gates += circuit.num_add_gates
                result.critical_path = max(result.critical_path, circuit.critical_path)
            elif isinstance(op, MaxPoolOp):
                # One comparison gate per non-first window element.
                result.num_add_gates += op.num_windows * (op.window_size - 1)
            elif isinstance(op, (ReluOp, AddOp, EwiseAffineOp, ActLUTOp)):
                size = int(op.out_values.size)
                result.num_add_gates += size  # one elementwise gate each
            elif isinstance(op, EmbedOp):
                result.num_add_gates += int(op.out_values.size)
            elif isinstance(op, MatMulOp):
                m, k, n = op.dims
                result.num_mul_gates += m * k * n
                result.num_add_gates += m * max(0, k - 1) * n
            elif isinstance(op, RowScaleOp):
                result.num_mul_gates += int(op.out_values.size)
            elif isinstance(op, LayerNormOp):
                rows, d = op.in_values.shape
                result.num_mul_gates += 2 * rows * d  # squares + products
                result.num_add_gates += rows * (3 * d + 2)
        result.wall_time = time.perf_counter() - start
        self.generated = result
        return result

    # -- phase 2: Circuit Computation ------------------------------------------------

    def compute(self) -> ComputeResult:
        if self.generated is None:
            self.generate()
        opts = self.options
        program = self.program
        start = time.perf_counter()
        terms_before = global_counter().lc_term

        cs = ConstraintSystem(name=program.name)
        one_private = (
            program.image_privacy.is_private
            and not program.weights_privacy.is_private
        )
        knit = (
            KnitPacker(
                cs,
                batch_size=opts.knit_batch,
                field_bits=opts.field_bits,
                cache=opts.cache,
                tag=program.name,
            )
            if (opts.knit and one_private)
            else None
        )
        recipe: Optional[list] = [] if opts.record_recipe else None
        self._recipe = recipe
        self._weight_var_cache = {}
        self._row_plan_cache = {}
        sparse_active = opts.sparse and not program.weights_privacy.is_private
        self._sparsity = (
            SparsityReport(enabled=sparse_active) if opts.sparse else None
        )
        emitter = GadgetEmitter(
            cs,
            mode=opts.gadget_mode,
            knit=knit,
            recipe=recipe,
            share=sparse_active and opts.sparse_share,
        )
        self._engine = LookupEngine(cs, mode=opts.gadget_mode, recipe=recipe)

        env: Dict[str, ZkTensor] = {INPUT: self._input_tensor(cs, program)}
        result = ComputeResult(
            cs=cs, gadget_stats=emitter.stats, recipe=recipe,
            sparsity=self._sparsity,
        )

        for op in program.ops:
            layer_start = time.perf_counter()
            constraints_before = cs.num_constraints
            if isinstance(op, DotLayerOp):
                work, units = self._compute_dot(cs, emitter, env, op)
                kind = op.layer_kind
            elif isinstance(op, ReluOp):
                work, units = self._compute_relu(cs, emitter, env, op)
                kind = "relu"
            elif isinstance(op, MaxPoolOp):
                work, units = self._compute_maxpool(cs, emitter, env, op)
                kind = "maxpool"
            elif isinstance(op, EwiseAffineOp):
                work, units = self._compute_affine(cs, emitter, env, op)
                kind = "bn"
            elif isinstance(op, AddOp):
                work, units = self._compute_add(cs, emitter, env, op)
                kind = "add"
            elif isinstance(op, EmbedOp):
                work, units = self._compute_embed(cs, emitter, env, op)
                kind = "embed"
            elif isinstance(op, MatMulOp):
                work, units = self._compute_matmul(cs, emitter, env, op)
                kind = "matmul"
            elif isinstance(op, RowScaleOp):
                work, units = self._compute_rowscale(cs, emitter, env, op)
                kind = "rowscale"
            elif isinstance(op, ActLUTOp):
                work, units = self._compute_lut(cs, emitter, env, op)
                kind = "lut"
            elif isinstance(op, LayerNormOp):
                work, units = self._compute_layernorm(cs, emitter, env, op)
                kind = "ln"
            elif isinstance(op, GatherOp):
                self._compute_gather(env, op)
                continue
            elif isinstance(op, FlattenOp):
                src = env[op.inputs[0]]
                env[op.output] = src.reshaped((src.values.size,))
                continue
            else:
                raise TypeError(f"no circuit computation for {type(op).__name__}")
            if knit is not None:
                knit.flush()  # never pack across layers (per-layer bounds)
            cs.mark_layer(op.name, constraints_before)
            result.layer_work.append(
                LayerWork(
                    name=op.name,
                    kind=kind,
                    num_units=units,
                    work_units=work,
                    wall_time=time.perf_counter() - layer_start,
                    constraints=cs.num_constraints - constraints_before,
                )
            )

        if self._engine.active:
            # The shared per-table columns (multiplicities, sponge, sum
            # checks) land after every layer, each in its own
            # ``lookup:<table>`` pseudo-layer.
            finalize_start = time.perf_counter()
            blocks = self._engine.finalize(mark=cs.mark_layer)
            finalize_time = time.perf_counter() - finalize_start
            for block in blocks:
                span = cs.layer_ranges[f"lookup:{block.table_name}"]
                result.layer_work.append(
                    LayerWork(
                        name=f"lookup:{block.table_name}",
                        kind="lookup",
                        num_units=block.num_lookups,
                        work_units=len(block.packed_entries),
                        wall_time=finalize_time / len(blocks),
                        constraints=len(span),
                    )
                )
            result.lookup = self._engine.report()

        if knit is not None:
            knit.flush()
            result.knit_constraints = knit.constraints_emitted
            result.knit_expressions = knit.expressions_packed
        if self._sparsity is not None:
            self._sparsity.distinct_rows = len(self._row_plan_cache)
            self._sparsity.outputs_shared = emitter.stats.shared_outputs
            self._sparsity.relus_shared = emitter.stats.shared_relus
        result.lc_terms = global_counter().lc_term - terms_before
        result.wall_time = time.perf_counter() - start
        return result

    # -- inputs ------------------------------------------------------------------------

    def _input_tensor(self, cs: ConstraintSystem, program: ZkProgram) -> ZkTensor:
        values = program.input_values
        if program.image_privacy.is_private:
            flat = values.reshape(-1)
            indices = np.empty(flat.size, dtype=np.int64)
            for pos, v in enumerate(flat):
                var = cs.new_private(int(v))
                indices[pos] = var
                if self._recipe is not None:
                    self._recipe.append((var, ("image", pos)))
            indices = indices.reshape(values.shape)
            return ZkTensor(
                values, Privacy.PRIVATE, stage="input", var_indices=indices,
                name="image",
            )
        return ZkTensor.public(values, name="image")

    # -- dot layers ---------------------------------------------------------------------

    def _compute_dot(self, cs, emitter, env, op: DotLayerOp):
        x_tensor = env[op.inputs[0]]
        is_final = op.name == self.program.output_name
        n = op.dot_length
        slot_bits = expression_bits(n)
        circuit = self.generated.circuits[op.name]

        # Without privacy-adaptive generation (§4.1), every multiplication
        # involving a private value is charged a constraint — except pool
        # layers, whose ones-vector taps are additions even in the baseline
        # (Table 3's pool row has zero wires).
        naive_products = (
            not self.options.privacy_adaptive
            and op.layer_kind != "pool"
            and x_tensor.is_private
        )
        if (op.weights_private or naive_products) and x_tensor.is_private:
            out_vars, work = self._dot_both_private(cs, emitter, op, x_tensor, is_final)
        elif op.weights_private:
            out_vars, work = self._dot_private_weights(
                cs, emitter, op, x_tensor, slot_bits, is_final
            )
        else:
            if isinstance(circuit, ZenoLayerCircuit):
                if self._sparsity is not None and self._sparsity.enabled:
                    out_vars, work = self._dot_zeno_sparse(
                        cs, emitter, op, x_tensor, slot_bits, is_final
                    )
                else:
                    out_vars, work = self._dot_zeno(
                        cs, emitter, op, x_tensor, slot_bits, is_final
                    )
            else:
                out_vars, work = self._dot_baseline(
                    cs, emitter, circuit, op, x_tensor, slot_bits, is_final
                )

        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )
        return work, op.num_dots

    def _dot_zeno(self, cs, emitter, op, x_tensor, slot_bits, is_final):
        """ZENO circuit computation: one O(n) pass per dot (§5.1)."""
        x_vars = x_tensor.flat_vars()
        weight_rows = op.weight_rows
        input_cols = op.input_cols
        bias = op.bias
        acc_values = op.acc_values
        p = cs.field.modulus
        counter = global_counter()
        out_vars = []
        work = 0
        # Coefficients live in canonical field form (negative weights map to
        # large residues), as in any real Fr implementation — this is what
        # makes coefficient products λ-bit multiplications the cache service
        # targets (§6.1).  Canonicalize each distinct weight row once.
        canon_rows = [[int(w) % p for w in row] for row in weight_rows.tolist()]
        # Tensor semantics let the whole dot product lower in one vectorized
        # pass: positions within one dot are distinct input taps, so the
        # term map is a straight zip — no merging, O(n) total (Table 3).
        for d in range(op.num_dots):
            r = int(op.row_of_dot[d])
            row = weight_rows[r]
            canon = canon_rows[r]
            positions = input_cols[:, op.col_of_dot[d]]
            valid = (positions > 0) & (row != 0)
            vars_d = x_vars[positions[valid] - 1]
            idx = np.nonzero(valid)[0].tolist()
            terms = dict(zip(vars_d.tolist(), (canon[i] for i in idx)))
            b = int(bias[r])
            if b:
                terms[0] = (terms.get(0, 0) + b) % p
            lc = LinearCombination(cs.field, terms)
            counter.lc_term += len(lc.terms)
            work += len(row)
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(acc_values[d]),
                    op.requant,
                    slot_bits,
                    public=is_final,
                    tag=op.name,
                    index=d,
                )
            )
        return out_vars, work

    def _dot_zeno_sparse(self, cs, emitter, op, x_tensor, slot_bits, is_final):
        """Sparsity-aware §5.1 lowering (public weights only).

        Zero-weight taps are skipped via per-row *nonzero plans* — the
        indices and canonical field coefficients of a row's nonzero
        entries, computed once per distinct row content and shared across
        all rows/layers with identical bytes (pruned-to-zero rows,
        repeated filter blocks).  The term maps produced are exactly those
        of :meth:`_dot_zeno` (which masks zeros per dot), so with gadget
        sharing off the constraint system — and hence the proof — is
        byte-identical to the dense path.
        """
        x_vars = x_tensor.flat_vars()
        weight_rows = op.weight_rows
        input_cols = op.input_cols
        bias = op.bias
        acc_values = op.acc_values
        p = cs.field.modulus
        counter = global_counter()
        report = self._sparsity
        n = weight_rows.shape[1]
        plan_cache = self._row_plan_cache
        plans = []
        for r in range(weight_rows.shape[0]):
            row = weight_rows[r]
            key = row.tobytes()
            plan = plan_cache.get(key)
            if plan is None:
                nz = np.nonzero(row)[0]
                canon = np.array(
                    [int(w) % p for w in row[nz].tolist()], dtype=object
                )
                plan_cache[key] = plan = (nz, canon)
            else:
                report.row_plan_hits += 1
            plans.append(plan)
            report.total_rows += 1
            if plan[0].size == 0:
                report.zero_rows += 1
        out_vars = []
        work = 0
        for d in range(op.num_dots):
            r = int(op.row_of_dot[d])
            nz, canon = plans[r]
            report.weight_terms_total += n
            report.zero_terms_elided += n - int(nz.size)
            if nz.size:
                positions = input_cols[nz, op.col_of_dot[d]]
                valid = positions > 0
                vars_d = x_vars[positions[valid] - 1].tolist()
                coeffs = canon[valid].tolist()
                terms = dict(zip(vars_d, coeffs))
                if len(terms) != len(vars_d):
                    # Upstream gadget sharing can map several taps onto one
                    # variable; merge coefficients instead of overwriting.
                    terms = {}
                    for v, c in zip(vars_d, coeffs):
                        merged = (terms.get(v, 0) + c) % p
                        if merged:
                            terms[v] = merged
                        else:
                            terms.pop(v, None)
                work += int(nz.size)
            else:
                terms = {}
            b = int(bias[r])
            if b:
                terms[0] = (terms.get(0, 0) + b) % p
            lc = LinearCombination(cs.field, terms)
            counter.lc_term += len(lc.terms)
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(acc_values[d]),
                    op.requant,
                    slot_bits,
                    public=is_final,
                    tag=op.name,
                    index=d,
                )
            )
        return out_vars, work

    def _dot_baseline(self, cs, emitter, circuit, op, x_tensor, slot_bits, is_final):
        """Baseline circuit computation: left-deep binary-add expansion.

        Each addition gate merges its children's expanded term lists — the
        O(n^2) recursive expansion of §5.1.  Term lists stay plain Python
        lists so the copying cost is the real, measured cost.
        """
        x_vars = x_tensor.flat_vars()
        acc_values = op.acc_values
        bias = op.bias
        p = cs.field.modulus
        counter = global_counter()
        out_vars = []
        work = 0
        x_pos = circuit.x_pos
        coeff = circuit.coeff
        for d in range(op.num_dots):
            positions = x_pos[d].tolist()
            weights = coeff[d].tolist()
            expanded: list = []
            for pos, w in zip(positions, weights):
                if pos and w:
                    term = (int(x_vars[pos - 1]), w)
                    # Binary addition gate: merge (copy) the expanded LCs.
                    expanded = expanded + [term]
                    work += len(expanded)
                else:
                    expanded = list(expanded)  # zero operand still merges
                    work += len(expanded) + 1
            counter.lc_term += len(expanded)
            terms: dict = {}
            for var, w in expanded:
                prev = terms.get(var)
                terms[var] = w if prev is None else prev + w
            b = int(bias[op.row_of_dot[d]])
            if b:
                terms[0] = terms.get(0, 0) + b
            lc = LinearCombination(cs.field, {v: c % p for v, c in terms.items()})
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(acc_values[d]),
                    op.requant,
                    slot_bits,
                    public=is_final,
                    tag=op.name,
                    index=d,
                )
            )
        return out_vars, work

    def _dot_private_weights(self, cs, emitter, op, x_tensor, slot_bits, is_final):
        """Private weights, public features: Eq. 3 with roles swapped.

        Feature values become the public coefficients; weight variables are
        allocated once per layer and shared across all dots that reuse the
        same weight row (conv weight sharing).
        """
        w_vars = self._weight_vars(cs, op)
        x_values = x_tensor.flat_values()
        out_vars = []
        work = 0
        counter = global_counter()
        for d in range(op.num_dots):
            r = int(op.row_of_dot[d])
            positions = op.input_cols[:, op.col_of_dot[d]]
            row_vars = w_vars[r]
            valid = positions > 0
            x_d = x_values[positions[valid] - 1]
            nonzero = x_d != 0
            # Distinct weight variables per tap: a straight zip suffices.
            terms = dict(
                zip(row_vars[valid][nonzero].tolist(), x_d[nonzero].tolist())
            )
            b = int(op.bias[r])
            if b:
                terms[0] = terms.get(0, 0) + b
            lc = LinearCombination(cs.field, terms)
            counter.lc_term += len(lc.terms)
            work += len(positions)
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(op.acc_values[d]),
                    op.requant,
                    slot_bits,
                    public=is_final,
                    tag=op.name,
                    index=d,
                )
            )
        return out_vars, work

    def _dot_both_private(self, cs, emitter, op, x_tensor, is_final):
        """Both private: Eq. 2 — one constraint per scalar product."""
        w_vars = self._weight_vars(cs, op)
        x_vars = x_tensor.flat_vars()
        out_vars = []
        work = 0
        for d in range(op.num_dots):
            r = int(op.row_of_dot[d])
            positions = op.input_cols[:, op.col_of_dot[d]].tolist()
            row_vars = w_vars[r]
            row_w = op.weight_rows[r]
            lc = cs.lc()
            for i, pos in enumerate(positions):
                if not pos:
                    continue
                w = int(row_w[i])
                if not w:
                    continue
                wire = cs.mul_private(
                    int(x_vars[pos - 1]), int(row_vars[i]), tag=f"{op.name}/mul"
                )
                if self._recipe is not None:
                    self._recipe.append((wire, ("dot_wire", op.name, d, i)))
                lc.add_term(wire, 1)
                work += 1
            b = int(op.bias[r])
            if b:
                lc.add_term(0, b)
            # Knit is inapplicable here (Table 2): plain equality check.
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(op.acc_values[d]),
                    op.requant,
                    expression_bits(op.dot_length),
                    public=is_final,
                    tag=op.name,
                    index=d,
                )
            )
        return out_vars, work

    def _weight_vars(self, cs, op: DotLayerOp) -> np.ndarray:
        """Allocate (once per compilation) the layer's weight variables.

        Cached per-compute (never on the shared op object — a program may
        be compiled into several constraint systems).
        """
        cached = self._weight_var_cache.get(op.name)
        if cached is not None:
            return cached
        rows, n = op.weight_rows.shape
        flat = op.weight_rows.reshape(-1)
        w_vars = np.empty(flat.size, dtype=np.int64)
        for j, v in enumerate(flat):
            var = cs.new_private(int(v))
            w_vars[j] = var
            if self._recipe is not None:
                self._recipe.append((var, ("const", int(v))))
        w_vars = w_vars.reshape(rows, n)
        self._weight_var_cache[op.name] = w_vars
        return w_vars

    # -- elementwise layers -----------------------------------------------------------------

    def _compute_relu(self, cs, emitter, env, op: ReluOp):
        x = env[op.inputs[0]]
        if not x.is_private:
            raise ValueError(f"relu input {op.inputs[0]!r} must be private")
        x_vars = x.flat_vars()
        in_values = op.in_values
        # Lookup mode: membership in the relu8 table replaces the sign
        # proof + select gadget.  A final-layer ReLU keeps the bits path
        # (its outputs must be committed as public instance variables).
        if (
            self.options.relu_mode == "lookup"
            and op.name != self.program.output_name
        ):
            table = get_table("relu")
            out_vars = [
                self._engine.lookup(
                    table, int(v), int(val), tag=op.name, index=i,
                )
                for i, (v, val) in enumerate(
                    zip(x_vars.tolist(), in_values.tolist())
                )
            ]
        else:
            out_vars = [
                emitter.relu(int(v), int(val), bits=op.bits, tag=op.name, index=i)
                for i, (v, val) in enumerate(
                    zip(x_vars.tolist(), in_values.tolist())
                )
            ]
        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )
        return len(out_vars), len(out_vars)

    def _compute_maxpool(self, cs, emitter, env, op: MaxPoolOp):
        """Window maxima via chained ``max(a,b) = a + relu(b - a)`` gadgets.

        Each window costs ``k - 1`` comparison selects plus one equality
        binding the final maximum LC to a committed output wire — the
        "higher cost" pooling the paper contrasts with average pooling.
        """
        x = env[op.inputs[0]]
        if not x.is_private:
            raise ValueError(f"maxpool input {op.inputs[0]!r} must be private")
        x_vars = x.flat_vars()
        in_values = op.in_values
        is_final = op.name == self.program.output_name
        out_vars = []
        work = 0
        for w in range(op.num_windows):
            taps = op.window_positions[:, w]
            first = int(taps[0]) - 1
            cur_lc = cs.lc_variable(int(x_vars[first]))
            cur_val = int(in_values[first])
            for tap in taps[1:]:
                idx = int(tap) - 1
                tap_val = int(in_values[idx])
                diff_lc = cs.lc_variable(int(x_vars[idx])) - cur_lc
                r_var = emitter.relu_lc(
                    diff_lc, tap_val - cur_val, bits=op.bits, tag=op.name
                )
                cur_lc.add_term(r_var, 1)
                cur_val = max(cur_val, tap_val)
                work += 1
            out_vars.append(
                emitter.commit_output(
                    cur_lc,
                    cur_val,
                    0,
                    10,
                    public=is_final,
                    tag=op.name,
                    index=w,
                )
            )
        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )
        return work, op.num_windows

    def _compute_affine(self, cs, emitter, env, op: EwiseAffineOp):
        x = env[op.inputs[0]]
        is_final = op.name == self.program.output_name
        x_vars = x.flat_vars()
        out_vars = []
        work = 0
        slot = 8 + int(op.gamma.max()).bit_length() + 1
        affine_private = op.weights_private or not self.options.privacy_adaptive
        if affine_private:
            gamma_vars = {}
            beta_vars = {}
        for idx in range(op.acc_values.size):
            g = int(op.gamma[idx])
            b = int(op.beta[idx])
            var = int(x_vars[idx])
            if affine_private:
                if g not in gamma_vars:
                    gamma_vars[g] = cs.new_private(g)
                    if self._recipe is not None:
                        self._recipe.append((gamma_vars[g], ("const", g)))
                g_var = gamma_vars[g]
                wire = cs.mul_private(var, g_var, tag=f"{op.name}/mul")
                if self._recipe is not None:
                    self._recipe.append((wire, ("affine_wire", op.name, idx)))
                lc = cs.lc_variable(wire)
                if b not in beta_vars:
                    beta_vars[b] = cs.new_private(b)
                    if self._recipe is not None:
                        self._recipe.append((beta_vars[b], ("const", b)))
                b_var = beta_vars[b]
                lc.add_term(b_var, 1)
                work += 2
            else:
                lc = cs.lc_variable(var, g)
                if b:
                    lc.add_term(0, b)
                work += 1
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(op.acc_values[idx]),
                    op.requant,
                    slot,
                    public=is_final,
                    tag=op.name,
                    index=idx,
                )
            )
        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )
        return work, len(out_vars)

    # -- transformer layers ------------------------------------------------------------

    def _tensor_out(self, env, op, out_vars) -> None:
        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )

    def _lut_onehot(
        self, cs, table, x_var: int, x_val: int, out_val: int,
        tag: str, index: int,
    ) -> int:
        """Bit-decomposition-era table lowering: a one-hot selector.

        One indicator per table row (boolean in strict mode), a
        sum-to-one check, a recomposition binding the indicators to the
        input, and a linear output selection — the per-activation cost
        the shared lookup argument amortizes away.
        """
        j = int(x_val) - table.domain_lo
        table.lookup(x_val)  # raises out-of-domain (reject, don't wrap)
        strict = self.options.gadget_mode == "strict"
        recipe = self._recipe
        one = cs.lc_constant(1)
        sum_lc = cs.lc()
        reco_lc = cs.lc()
        out_lc = cs.lc()
        for v in range(table.size):
            b = cs.new_private(1 if v == j else 0)
            if recipe is not None:
                recipe.append((b, ("sel_bit", tag, index, v)))
            if strict:
                b_lc = cs.lc_variable(b)
                cs.enforce(b_lc, b_lc - one, cs.lc(), tag=f"{tag}/sel_bool")
            sum_lc.add_term(b, 1)
            reco_lc.add_term(b, table.domain_lo + v)
            y = int(table.entries[v])
            if y:
                out_lc.add_term(b, y)
        cs.enforce_equal(sum_lc, one, tag=f"{tag}/sel_one")
        cs.enforce_equal(reco_lc, cs.lc_variable(x_var), tag=f"{tag}/sel_in")
        out_var = cs.new_private(out_val)
        if recipe is not None:
            recipe.append((out_var, ("sel_out", tag, index)))
        cs.enforce_equal(out_lc, cs.lc_variable(out_var), tag=f"{tag}/sel_out")
        return out_var

    def _compute_lut(self, cs, emitter, env, op: ActLUTOp):
        x = env[op.inputs[0]]
        if not x.is_private:
            raise ValueError(f"lut input {op.inputs[0]!r} must be private")
        table = get_table(op.table_name)
        x_vars = x.flat_vars().tolist()
        in_vals = op.in_values.tolist()
        out_vals = op.out_values.reshape(-1).tolist()
        if self.options.relu_mode == "lookup":
            # LUT inputs are committed outputs, already range-proven in
            # strict mode — the pair packing is injective without a
            # per-lookup range proof.
            out_vars = [
                self._engine.lookup(
                    table, int(v), int(val), tag=op.name, index=i,
                )
                for i, (v, val) in enumerate(zip(x_vars, in_vals))
            ]
        else:
            out_vars = [
                self._lut_onehot(
                    cs, table, int(v), int(val), int(out), op.name, i
                )
                for i, (v, val, out) in enumerate(
                    zip(x_vars, in_vals, out_vals)
                )
            ]
        self._tensor_out(env, op, out_vars)
        return len(out_vars), len(out_vars)

    def _compute_embed(self, cs, emitter, env, op: EmbedOp):
        ids_tensor = env[op.inputs[0]]
        if not ids_tensor.is_private:
            raise ValueError(f"embedding ids {op.inputs[0]!r} must be private")
        if self.program.weights_privacy.is_private:
            raise NotImplementedError(
                "private embedding tables are not supported — the table is "
                "folded into public lookup rows / selector coefficients"
            )
        id_vars = ids_tensor.flat_vars().tolist()
        ids = op.ids.tolist()
        vocab, d = op.table.shape
        out_vars = np.empty((len(ids), d), dtype=np.int64)
        if self.options.relu_mode == "lookup":
            # One table per output dimension; the id is a raw input wire,
            # so the engine range-proves it once (shared across all d
            # tables) to keep the packing injective.
            for j in range(d):
                tbl = LookupTable(
                    name=f"{op.name}.d{j}",
                    domain_lo=0,
                    entries=tuple(int(v) for v in op.table[:, j]),
                    y_bias=128,
                )
                for t, (id_var, id_val) in enumerate(zip(id_vars, ids)):
                    out_vars[t, j] = self._engine.lookup(
                        tbl,
                        int(id_var),
                        int(id_val),
                        tag=op.name,
                        index=t * d + j,
                        input_ranged=False,
                        bits_cost=(vocab + 2) // d + 1,
                    )
            work = len(ids) * d
        else:
            # One-hot token selector shared across all d dimensions: the
            # output columns are linear in the indicators.
            recipe = self._recipe
            strict = self.options.gadget_mode == "strict"
            one = cs.lc_constant(1)
            work = 0
            for t, (id_var, id_val) in enumerate(zip(id_vars, ids)):
                sum_lc = cs.lc()
                reco_lc = cs.lc()
                sel = []
                for v in range(vocab):
                    b = cs.new_private(1 if v == id_val else 0)
                    if recipe is not None:
                        recipe.append((b, ("sel_bit", op.name, t, v)))
                    if strict:
                        b_lc = cs.lc_variable(b)
                        cs.enforce(
                            b_lc, b_lc - one, cs.lc(), tag=f"{op.name}/sel_bool"
                        )
                    sum_lc.add_term(b, 1)
                    if v:
                        reco_lc.add_term(b, v)
                    sel.append(b)
                cs.enforce_equal(sum_lc, one, tag=f"{op.name}/sel_one")
                cs.enforce_equal(
                    reco_lc, cs.lc_variable(int(id_var)), tag=f"{op.name}/sel_in"
                )
                for j in range(d):
                    out_lc = cs.lc()
                    for v in range(vocab):
                        w = int(op.table[v, j])
                        if w:
                            out_lc.add_term(sel[v], w)
                    out_var = cs.new_private(int(op.table[id_val, j]))
                    if recipe is not None:
                        recipe.append((out_var, ("sel_out", op.name, t * d + j)))
                    cs.enforce_equal(
                        out_lc, cs.lc_variable(out_var), tag=f"{op.name}/sel_out"
                    )
                    out_vars[t, j] = out_var
                work += vocab + d
        self._tensor_out(env, op, out_vars.reshape(-1).tolist())
        return work, int(op.out_values.size)

    def _compute_matmul(self, cs, emitter, env, op: MatMulOp):
        a = env[op.inputs[0]]
        b = env[op.inputs[1]]
        if not (a.is_private and b.is_private):
            raise ValueError(f"matmul operands of {op.name!r} must be private")
        m, k, n = op.dims
        a_vars = a.flat_vars().reshape(op.a_shape)
        b_vars = b.flat_vars().reshape(op.b_shape)
        is_final = op.name == self.program.output_name
        # Operands are requantized activations (|.| < 2^9), so each
        # product fits 18 bits and the k-term sum 18 + log2(k).
        slot_bits = 18 + max(1, k - 1).bit_length()
        recipe = self._recipe
        out_vars = []
        work = 0
        for i in range(m):
            for jj in range(n):
                d = i * n + jj
                lc = cs.lc()
                for kk in range(k):
                    av = int(a_vars[i, kk])
                    bv = int(
                        b_vars[jj, kk] if op.transpose_b else b_vars[kk, jj]
                    )
                    wire = cs.mul_private(av, bv, tag=f"{op.name}/mul")
                    if recipe is not None:
                        recipe.append((wire, ("mul_wire", op.name, d, kk)))
                    lc.add_term(wire, 1)
                    work += 1
                out_vars.append(
                    emitter.commit_output(
                        lc,
                        int(op.acc_values[d]),
                        op.requant,
                        slot_bits,
                        public=is_final,
                        tag=op.name,
                        index=d,
                    )
                )
        self._tensor_out(env, op, out_vars)
        return work, m * n

    def _compute_rowscale(self, cs, emitter, env, op: RowScaleOp):
        e = env[op.inputs[0]]
        r = env[op.inputs[1]]
        if not (e.is_private and r.is_private):
            raise ValueError(f"rowscale operands of {op.name!r} must be private")
        e_vars = e.flat_vars()
        r_vars = r.flat_vars()
        is_final = op.name == self.program.output_name
        recipe = self._recipe
        n = op.width
        out_vars = []
        for idx in range(op.acc_values.size):
            row = idx // n
            wire = cs.mul_private(
                int(e_vars[idx]), int(r_vars[row]), tag=f"{op.name}/mul"
            )
            if recipe is not None:
                recipe.append((wire, ("mul_wire", op.name, idx, 0)))
            # e is uint8, r a 15-bit fixed-point reciprocal: 23-bit product.
            out_vars.append(
                emitter.commit_output(
                    cs.lc_variable(wire),
                    int(op.acc_values[idx]),
                    op.requant,
                    23,
                    public=is_final,
                    tag=op.name,
                    index=idx,
                )
            )
        self._tensor_out(env, op, out_vars)
        return len(out_vars), len(out_vars)

    def _compute_layernorm(self, cs, emitter, env, op: LayerNormOp):
        x = env[op.inputs[0]]
        if not x.is_private:
            raise ValueError(f"layernorm input {op.inputs[0]!r} must be private")
        rows, d = op.in_values.shape
        x_vars = x.flat_vars().reshape(rows, d)
        x_vals = op.in_values.astype(np.int64)
        rsqrt = get_table("rsqrt")
        is_final = op.name == self.program.output_name
        recipe = self._recipe
        p = cs.field.modulus
        mean_slot = 8 + max(1, d - 1).bit_length() + 1
        var_slot = 20 + max(1, d - 1).bit_length()
        out_vars = np.empty((rows, d), dtype=np.int64)
        work = 0
        for i in range(rows):
            row_vals = x_vals[i].tolist()
            row_vars = x_vars[i].tolist()
            mean_lc = cs.lc()
            for v in row_vars:
                mean_lc.add_term(int(v), 1)
            row_sum = int(sum(row_vals))
            mean_var = emitter.commit_output(
                mean_lc,
                row_sum,
                op.mean_shift,
                mean_slot,
                public=False,
                tag=f"{op.name}#mean",
                index=i,
            )
            mean = row_sum >> op.mean_shift
            # Centered values are LCs (x_j - mean), never materialized as
            # wires; squares and normalized products are.
            c_lcs = []
            c_vals = []
            sq_vars = []
            var_lc = cs.lc()
            var_sum = 0
            for j in range(d):
                c_lc = cs.lc_variable(int(row_vars[j]))
                c_lc.add_term(mean_var, p - 1)
                c = int(row_vals[j]) - mean
                sq = cs.new_private(c * c)
                if recipe is not None:
                    recipe.append((sq, ("ln_sq", op.name, i * d + j)))
                cs.enforce(
                    c_lc, c_lc.copy(), cs.lc_variable(sq), tag=f"{op.name}/sq"
                )
                c_lcs.append(c_lc)
                c_vals.append(c)
                sq_vars.append(sq)
                var_lc.add_term(sq, 1)
                var_sum += c * c
                work += 2
            var_var = emitter.commit_output(
                var_lc,
                var_sum,
                op.var_shift,
                var_slot,
                public=False,
                tag=f"{op.name}#var",
                index=i,
            )
            var_q = var_sum >> op.var_shift
            if self.options.relu_mode == "lookup":
                y_var = self._engine.lookup(
                    rsqrt, var_var, var_q, tag=op.name, index=i,
                )
            else:
                y_var = self._lut_onehot(
                    cs, rsqrt, var_var, var_q, rsqrt.lookup(var_q),
                    f"{op.name}#y", i,
                )
            y = rsqrt.lookup(var_q)
            for j in range(d):
                prod_val = c_vals[j] * y
                prod = cs.new_private(prod_val)
                if recipe is not None:
                    recipe.append((prod, ("ln_prod", op.name, i * d + j)))
                cs.enforce(
                    c_lcs[j],
                    cs.lc_variable(y_var),
                    cs.lc_variable(prod),
                    tag=f"{op.name}/prod",
                )
                out_vars[i, j] = emitter.commit_output(
                    cs.lc_variable(prod),
                    prod_val,
                    op.out_shift,
                    21,
                    public=is_final,
                    tag=f"{op.name}#out",
                    index=i * d + j,
                )
        self._tensor_out(env, op, out_vars.reshape(-1).tolist())
        return work, rows * d

    def _compute_gather(self, env, op: GatherOp) -> None:
        srcs = [env[name] for name in op.inputs]
        if not any(t.is_private for t in srcs):
            env[op.output] = ZkTensor.public(op.out_values, name=op.name)
            return
        flats = [t.flat_vars() for t in srcs]
        out_vars = np.array(
            [int(flats[src][pos]) for src, pos in op.sources], dtype=np.int64
        )
        self._tensor_out(env, op, out_vars.tolist())

    def _compute_add(self, cs, emitter, env, op: AddOp):
        a = env[op.inputs[0]]
        b = env[op.inputs[1]]
        is_final = op.name == self.program.output_name
        a_vars = a.flat_vars()
        b_vars = b.flat_vars()
        out_vars = []
        for idx in range(op.acc_values.size):
            lc = cs.lc_variable(int(a_vars[idx]))
            lc.add_term(int(b_vars[idx]), 1)
            out_vars.append(
                emitter.commit_output(
                    lc,
                    int(op.acc_values[idx]),
                    op.requant,
                    10,
                    public=is_final,
                    tag=op.name,
                    index=idx,
                )
            )
        env[op.output] = ZkTensor(
            op.out_values,
            Privacy.PRIVATE,
            stage="constraint",
            var_indices=np.asarray(out_vars, dtype=np.int64).reshape(
                op.out_values.shape
            ),
            name=op.name,
        )
        return len(out_vars), len(out_vars)
