"""Shared constraint gadgets: requantization, ReLU, booleanity.

These gadgets are identical under both IRs ("on the ReLU layer, ZENO shares
the same circuit as scalar-level zkSNARK frameworks", §5.1) and under every
optimization toggle, so speedup measurements isolate the paper's
contributions.

Two gadget budgets are provided (see DESIGN.md):

* ``"lean"``   — the paper's accounting: each layer output costs one
  equality check (Eq. 2/3), with the power-of-two requantization folded
  into that same linear identity; ReLU costs one multiplication
  constraint with a committed sign bit.  This matches the constraint
  counts the paper's figures are built on.
* ``"strict"`` — additionally emits booleanity and bit-decomposition
  range checks (remainder bits, output range, ReLU sign proof), the way a
  fully sound deployment (ZEN's scheme) would.  Used by soundness tests
  and available to every example via one flag.

When a ``recipe`` list is supplied, every variable allocation is logged as
``(var_index, descriptor)`` so batch-specialized constraint-system sharing
(§6.1) can re-assign the witness for a new image without regenerating a
single constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.privacy.knit import KnitPacker
from repro.r1cs.lc import LinearCombination
from repro.r1cs.system import ConstraintSystem

# Signed activations after requantization stay in [-255, 255] (calibrated);
# the strict range proof shifts by this offset to decompose non-negatively.
RANGE_OFFSET = 256
RANGE_BITS = 10


@dataclass
class GadgetStats:
    """Constraint bookkeeping per gadget class (feeds the figures)."""

    equality_constraints: int = 0
    relu_constraints: int = 0
    range_constraints: int = 0
    committed_wires: int = 0
    shared_outputs: int = 0
    shared_relus: int = 0


# Sharing keys are computed only for LCs at most this many terms wide: the
# shareable shapes (zero-row constants, BN affines, residual adds, ReLU
# inputs) are all 1-3 terms, while full conv dots — which sort-key in
# O(n log n) and essentially never collide — are skipped.
_SHARE_MAX_TERMS = 4


class GadgetEmitter:
    """Emits output-commitment and ReLU gadgets into a constraint system.

    With ``share=True`` (sparsity-aware compilation), structurally
    identical emissions are value-numbered: a second ``commit_output`` or
    ``relu_lc`` whose input LC, requant shift, and slot width match an
    earlier one returns the earlier output variable instead of emitting a
    new sub-circuit.  Identical LCs compute identical witness values for
    *every* assignment, so deduplication preserves soundness; it is what
    collapses the per-position gadget fan-out of a pruned-to-zero filter
    row (and of everything downstream of it) to one wire per channel.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        mode: str = "lean",
        knit: Optional[KnitPacker] = None,
        recipe: Optional[list] = None,
        share: bool = False,
    ) -> None:
        if mode not in ("lean", "strict"):
            raise ValueError(f"gadget mode must be 'lean' or 'strict', not {mode!r}")
        self.cs = cs
        self.mode = mode
        self.knit = knit
        self.recipe = recipe
        self.share = share
        self.stats = GadgetStats()
        self._commit_cache: dict = {}
        self._relu_cache: dict = {}

    def _log(self, var: int, descriptor: tuple) -> None:
        if self.recipe is not None:
            self.recipe.append((var, descriptor))

    # -- low-level helpers ---------------------------------------------------------

    def boolean(self, value: int, tag: str = "bool") -> int:
        """Allocate a bit variable and enforce ``b * (b - 1) = 0``."""
        var = self.cs.new_private(value)
        self.stats.committed_wires += 1
        lc = self.cs.lc_variable(var)
        self.cs.enforce(lc, lc - self.cs.lc_constant(1), self.cs.lc(), tag=tag)
        self.stats.range_constraints += 1
        return var

    def decompose(
        self, value: int, bits: int, tag: str = "decomp"
    ) -> List[int]:
        """Bit-decompose ``value`` into ``bits`` boolean variables."""
        if value < 0 or value >= (1 << bits):
            raise ValueError(f"{value} does not fit in {bits} bits ({tag})")
        return [self.boolean((value >> i) & 1, tag=tag) for i in range(bits)]

    # -- output commitment with folded requantization ----------------------------------

    def commit_output(
        self,
        acc_lc: LinearCombination,
        acc_value: int,
        shift: int,
        slot_bits: int,
        public: bool = False,
        tag: str = "out",
        index: int = -1,
    ) -> int:
        """Bind an accumulator LC to its requantized output variable.

        Emits the single linear identity

            acc_lc - out * 2^shift - rem == 0

        either as its own constraint (Eq. 2/3's equality check) or pushed
        into the knit packer.  Returns the output variable index (public
        for the network's final logits, private otherwise).  ``acc_lc`` is
        consumed (mutated in place).

        In strict mode the remainder is bit-decomposed (booleanity per bit)
        and the output gets an offset range proof covering [-255, 255].
        """
        cs = self.cs
        share_key = None
        if self.share and not public and len(acc_lc.terms) <= _SHARE_MAX_TERMS:
            # Key on the LC *before* it is consumed below.
            share_key = (tuple(sorted(acc_lc.terms.items())), shift, slot_bits)
            cached = self._commit_cache.get(share_key)
            if cached is not None:
                out_var, cached_value = cached
                if cached_value != acc_value:
                    raise ValueError(
                        f"shared output {tag}[{index}]: identical LC with "
                        f"diverging witness values {cached_value} != {acc_value}"
                    )
                self.stats.shared_outputs += 1
                return out_var
        out_value = acc_value >> shift
        rem_value = acc_value - (out_value << shift)

        out_var = cs.new_public(out_value) if public else cs.new_private(out_value)
        self._log(out_var, ("out", tag, index, shift))
        if not public:
            self.stats.committed_wires += 1
        expr = acc_lc  # consumed: callers build a fresh LC per output
        expr.add_term(out_var, cs.field.modulus - (1 << shift))

        if shift:
            if self.mode == "strict":
                for i in range(shift):
                    bit_var = self.boolean((rem_value >> i) & 1, tag=f"{tag}/rem")
                    self._log(bit_var, ("rem_bit", tag, index, shift, i))
                    expr.add_term(bit_var, cs.field.modulus - (1 << i))
            else:
                rem_var = cs.new_private(rem_value)
                self._log(rem_var, ("rem", tag, index, shift))
                self.stats.committed_wires += 1
                expr.add_term(rem_var, cs.field.modulus - 1)

        if self.mode == "strict" and not public:
            # Offset range proof: out + 256 in [0, 1024) covers [-255, 255].
            shifted_out = out_value + RANGE_OFFSET
            recompose = cs.lc()
            for i in range(RANGE_BITS):
                bit_var = self.boolean((shifted_out >> i) & 1, tag=f"{tag}/range")
                self._log(bit_var, ("out_bit", tag, index, shift, i))
                recompose.add_term(bit_var, 1 << i)
            out_plus = cs.lc_variable(out_var) + cs.lc_constant(RANGE_OFFSET)
            cs.enforce_equal(recompose, out_plus, tag=f"{tag}/range_eq")
            self.stats.range_constraints += 1

        if self.knit is not None and not public:
            # Honest-value bound of expr: the accumulator LC (slot_bits),
            # the shifted output (8 + shift bits), and the remainder.
            self.knit.push(expr, max(slot_bits, 8 + shift) + 1)
        else:
            cs.enforce(expr, cs.lc_constant(1), cs.lc(), tag=f"{tag}/eq")
            self.stats.equality_constraints += 1
        if share_key is not None:
            self._commit_cache[share_key] = (out_var, acc_value)
        return out_var

    # -- ReLU -----------------------------------------------------------------------------

    def relu(
        self,
        in_var: int,
        in_value: int,
        bits: int = 16,
        tag: str = "relu",
        index: int = -1,
    ) -> int:
        """``out = max(0, in)`` via a committed sign bit: ``out = b * in``.

        Lean: 1 multiplication constraint.  Strict: adds booleanity of the
        sign bit and the shifted bit-decomposition sign proof (``bits - 1``
        booleanity constraints + 1 recomposition) — the paper's "expensive
        comparison operator" (§6.2).
        """
        return self.relu_lc(
            self.cs.lc_variable(in_var), in_value, bits=bits, tag=tag,
            index=index,
        )

    def relu_lc(
        self,
        in_lc: LinearCombination,
        in_value: int,
        bits: int = 16,
        tag: str = "relu",
        index: int = -1,
    ) -> int:
        """ReLU of a *linear combination* — used by comparison chains.

        ``max(a, b) = a + relu(b - a)`` needs relu over the difference LC;
        R1CS multiplies two full LCs per constraint, so the select gate
        ``sign * in_lc = out`` costs the same one constraint.  ``in_lc`` is
        consumed.
        """
        cs = self.cs
        share_key = None
        if self.share and len(in_lc.terms) <= _SHARE_MAX_TERMS:
            share_key = (tuple(sorted(in_lc.terms.items())), bits)
            cached = self._relu_cache.get(share_key)
            if cached is not None:
                out_var, cached_value = cached
                if cached_value != in_value:
                    raise ValueError(
                        f"shared relu {tag}[{index}]: identical LC with "
                        f"diverging witness values {cached_value} != {in_value}"
                    )
                self.stats.shared_relus += 1
                return out_var
        sign = 1 if in_value >= 0 else 0
        out_value = in_value if in_value > 0 else 0

        if self.mode == "strict":
            sign_var = self.boolean(sign, tag=f"{tag}/sign")
            self._log(sign_var, ("sign", tag, index, bits))
            # Sign proof: in + 2^(bits-1) in [0, 2^bits), top bit == sign.
            shifted = in_value + (1 << (bits - 1))
            if (shifted >> (bits - 1)) & 1 != sign or not 0 <= shifted < (1 << bits):
                raise ValueError(
                    f"relu input {in_value} exceeds {bits}-bit sign gadget range"
                )
            low = shifted & ((1 << (bits - 1)) - 1)
            recompose = cs.lc()
            for i in range(bits - 1):
                bit_var = self.boolean((low >> i) & 1, tag=f"{tag}/bits")
                self._log(bit_var, ("relu_bit", tag, index, bits, i))
                recompose.add_term(bit_var, 1 << i)
            # The top bit *is* the committed sign bit.
            recompose.add_term(sign_var, 1 << (bits - 1))
            shifted_lc = in_lc + cs.lc_constant(1 << (bits - 1))
            cs.enforce_equal(recompose, shifted_lc, tag=f"{tag}/signproof")
            self.stats.range_constraints += 1
        else:
            sign_var = cs.new_private(sign)
            self._log(sign_var, ("sign", tag, index, bits))
            self.stats.committed_wires += 1

        out_var = cs.new_private(out_value)
        self._log(out_var, ("relu_out", tag, index, bits))
        self.stats.committed_wires += 1
        cs.enforce(
            cs.lc_variable(sign_var),
            in_lc,
            cs.lc_variable(out_var),
            tag=f"{tag}/select",
        )
        self.stats.relu_constraints += 1
        if share_key is not None:
            self._relu_cache[share_key] = (out_var, in_value)
        return out_var
