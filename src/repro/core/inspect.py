"""Circuit inspection and diagnostics.

Two developer-facing tools the compiler work made us want constantly:

* :func:`layer_statistics` — a per-layer breakdown of a compiled artifact
  (constraints, committed wires, knit packing, circuit-computation share),
  the table `python -m repro.cli compile --detail` prints;
* :func:`diagnose` — a human-readable report for an unsatisfied constraint
  system: the first violated constraint, its provenance tag and layer, and
  the evaluated A/B/C values with the offending variables listed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE, LinearCombination
from repro.r1cs.system import ConstraintSystem


@dataclass(frozen=True)
class LayerStatistics:
    """One compiled layer's circuit footprint."""

    name: str
    kind: str
    constraints: int
    work_units: int
    num_units: int
    wall_time: float

    @property
    def constraints_per_unit(self) -> float:
        return self.constraints / self.num_units if self.num_units else 0.0


def layer_statistics(artifact) -> List[LayerStatistics]:
    """Per-layer breakdown of a :class:`CompileArtifact`."""
    return [
        LayerStatistics(
            name=work.name,
            kind=work.kind,
            constraints=work.constraints,
            work_units=work.work_units,
            num_units=work.num_units,
            wall_time=work.wall_time,
        )
        for work in artifact.compute.layer_work
    ]


def format_layer_table(artifact) -> str:
    """The `cli compile --detail` table, as a string."""
    stats = layer_statistics(artifact)
    total_constraints = sum(s.constraints for s in stats) or 1
    header = (
        f"{'layer':24s}{'kind':9s}{'units':>8s}{'constraints':>12s}"
        f"{'share':>7s}{'c/unit':>8s}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:24s}{s.kind:9s}{s.num_units:>8d}{s.constraints:>12d}"
            f"{s.constraints / total_constraints:>6.0%} {s.constraints_per_unit:>7.2f}"
        )
    lines.append(
        f"{'total':24s}{'':9s}{sum(s.num_units for s in stats):>8d}"
        f"{sum(s.constraints for s in stats):>12d}"
    )
    return "\n".join(lines)


# -- violation diagnosis -----------------------------------------------------------


def _describe_var(index: int) -> str:
    if index == ONE:
        return "ONE"
    return f"pub{-index}" if index < 0 else f"w{index}"


def _lc_summary(lc: LinearCombination, cs: ConstraintSystem, limit: int = 6):
    parts = []
    for i, (index, coeff) in enumerate(sorted(lc.terms.items())):
        if i >= limit:
            parts.append(f"... (+{len(lc.terms) - limit} terms)")
            break
        value = cs.value_of(index)
        shown = coeff if coeff < cs.field.modulus // 2 else coeff - cs.field.modulus
        parts.append(f"{shown}*{_describe_var(index)}[={value}]")
    return " + ".join(parts) if parts else "0"


def _layer_of(cs: ConstraintSystem, constraint_index: int) -> Optional[str]:
    for tag, layer_range in cs.layer_ranges.items():
        if constraint_index in layer_range:
            return tag
    return None


def diagnose(cs: ConstraintSystem, max_violations: int = 3) -> str:
    """Explain why a constraint system is (un)satisfied.

    Returns "satisfied" for a clean system; otherwise a report covering up
    to ``max_violations`` violated constraints with provenance and values.
    """
    try:
        assignment = cs.assignment()
    except ValueError as exc:
        return f"incomplete witness: {exc}"

    field = cs.field
    reports = []
    for idx, constraint in enumerate(cs.constraints):
        a = constraint.a.evaluate(assignment)
        b = constraint.b.evaluate(assignment)
        c = constraint.c.evaluate(assignment)
        if field.mul(a, b) == c:
            continue
        layer = _layer_of(cs, idx)
        where = f" in layer {layer!r}" if layer else ""
        reports.append(
            "\n".join(
                [
                    f"constraint #{idx}{where}"
                    + (f" [{constraint.tag}]" if constraint.tag else "")
                    + " VIOLATED:",
                    f"  A = {_lc_summary(constraint.a, cs)}  -> {a}",
                    f"  B = {_lc_summary(constraint.b, cs)}  -> {b}",
                    f"  C = {_lc_summary(constraint.c, cs)}  -> {c}",
                    f"  A*B = {field.mul(a, b)} != C",
                ]
            )
        )
        if len(reports) >= max_violations:
            break
    if not reports:
        return "satisfied"
    remaining = sum(
        1
        for constraint in cs.constraints
        if not constraint.is_satisfied(assignment)
    )
    header = f"{remaining} violated constraint(s); showing {len(reports)}:"
    return "\n".join([header, *reports])
