"""Phase-level reports for one proof generation (the Fig. 3 pipeline).

The three paper phases are ``generate``, ``circuit_computation``, and
``security_computation``; compilations run with the soundness auditor on
(``CompilerOptions.audit``) add a fourth ``audit`` phase whose counts are
the finding tallies per severity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PhaseReport:
    """One pipeline phase: Generate, Circuit Computation, or Security."""

    name: str
    wall_time: float = 0.0  # measured Python seconds (0 if modeled only)
    modeled_time: Optional[float] = None  # cost-model seconds (security phase)
    counts: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """The number figures plot: modeled when available, else measured."""
        return self.modeled_time if self.modeled_time is not None else self.wall_time


@dataclass
class ProveReport:
    """Full proof-generation report for one image."""

    model_name: str
    privacy: str
    optimization_profile: str
    phases: Dict[str, PhaseReport] = field(default_factory=dict)
    num_constraints: int = 0
    num_variables: int = 0
    num_gates: int = 0
    verified: Optional[bool] = None

    def phase(self, name: str) -> PhaseReport:
        return self.phases[name]

    @property
    def total_latency(self) -> float:
        """End-to-end latency: the three phases run sequentially (§2.1)."""
        return sum(p.latency for p in self.phases.values())

    def speedup_over(self, baseline: "ProveReport") -> float:
        return baseline.total_latency / self.total_latency

    def phase_speedup_over(self, baseline: "ProveReport", phase: str) -> float:
        return baseline.phase(phase).latency / self.phase(phase).latency

    def summary(self) -> str:
        lines = [
            f"{self.model_name} [{self.privacy}, {self.optimization_profile}]: "
            f"m={self.num_constraints}, n={self.num_variables}, "
            f"gates={self.num_gates}"
        ]
        for name, p in self.phases.items():
            source = "modeled" if p.modeled_time is not None else "measured"
            lines.append(f"  {name:20s} {p.latency:10.4f}s ({source})")
        lines.append(f"  {'total':20s} {self.total_latency:10.4f}s")
        return "\n".join(lines)
