"""Pre-computation-based fusion pass (§6.2).

Folds each fusible BatchNorm into its producing conv / fully-connected
layer by rewriting weights in plaintext *before* circuit generation:

    Y = BN(conv(X))  with  BN(a) = (gamma * a + beta) >> shift

becomes a single conv with ``W' = gamma * W``, ``bias' = gamma * bias +
beta`` and the BN's requantization shift moved onto the conv.  The fused
model computes identical activations (checked by tests), while the
generated circuit drops the BN layer's equality checks and committed
wires entirely — the constraint saving Fig. 7/9 partially attribute to
"zkSNARK-aware NN fusion".
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.fusion.rules import fusible_pairs
from repro.nn.graph import Model
from repro.nn.layers import BatchNorm, Conv2d, Linear


def _fold(producer, bn: BatchNorm):
    """Return a new producer layer with the BN folded in."""
    gamma, beta = bn.gamma, bn.beta
    if isinstance(producer, Conv2d):
        weight = producer.weight * gamma[:, None, None, None]
        fused = Conv2d(
            weight,
            gamma * producer.bias + beta,
            stride=producer.stride,
            padding=producer.padding,
            requant=bn.requant,
        )
    elif isinstance(producer, Linear):
        fused = Linear(
            producer.weight * gamma[:, None],
            gamma * producer.bias + beta,
            requant=bn.requant,
        )
    else:  # pragma: no cover - guarded by fusible_pairs
        raise TypeError(f"cannot fold BatchNorm into {type(producer).__name__}")
    return fused


def fuse_model(model: Model) -> Model:
    """Apply all legal pre-computation fusions; returns a new Model.

    The producer's requant must be 0 (guaranteed by calibration for convs
    feeding BN — BN operates on the raw accumulator) or the fold would not
    be exact; violating producers are skipped defensively.
    """
    pairs = fusible_pairs(model)
    fold_into: Dict[str, str] = {}  # consumer -> producer
    for producer_name, consumer_name in pairs:
        producer = model.node(producer_name).layer
        if getattr(producer, "requant", 0) != 0:
            continue
        fold_into[consumer_name] = producer_name

    fused = Model(model.name, model.input_shape)
    # consumer name -> fused producer output name, for input rewiring
    alias: Dict[str, str] = {}
    for node in model.nodes:
        if node.name in fold_into:
            # Replace the already-added producer with the folded layer.
            producer_name = fold_into[node.name]
            producer_node = fused.node(producer_name)
            producer_node.layer = _fold(producer_node.layer, node.layer)
            alias[node.name] = producer_name
            # Output shape is unchanged (BN is shape-preserving).
            fused._shapes[producer_name] = fused._shapes[producer_name]
            continue
        inputs = tuple(alias.get(src, src) for src in node.inputs)
        fused.add(node.name, node.layer, inputs=inputs)
    return fused


def fusion_summary(model: Model) -> dict:
    """How many layers fusion would remove (for reports/ablations)."""
    pairs = fusible_pairs(model)
    removable = sum(
        1
        for producer_name, _ in pairs
        if getattr(model.node(producer_name).layer, "requant", 0) == 0
    )
    bn_count = sum(
        1 for node in model.nodes if isinstance(node.layer, BatchNorm)
    )
    return {
        "fusible_pairs": len(pairs),
        "fused_layers": removable,
        "total_bn_layers": bn_count,
    }
