"""Fusibility rules for zkSNARK NNs (§6.2).

The fusion objective differs from plaintext NN compilers: plaintext fusion
saves *memory traffic*, zkSNARK fusion saves *constraints*.  The rule set
follows directly:

* **fusible**: injective per-channel affine layers (BatchNorm, scale,
  bias-add) into a preceding conv / fully-connected layer — their effect
  pre-computes into the weights (``W' = g W``, ``b' = g b + beta``),
  deleting the fused layer's equality checks and requantization gadget;
* **not fusible**: ReLU — "relu requires expensive comparison operator with
  hundreds of constraints in zkSNARK"; folding it into the conv would not
  remove those comparisons, so unlike TVM-style compilers we never fuse it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nn.graph import Model
from repro.nn.layers import BatchNorm, Conv2d, Linear, ReLU

#: (producer, consumer) layer-class pairs eligible for pre-computation fusion.
FUSIBLE: Tuple[Tuple[type, type], ...] = (
    (Conv2d, BatchNorm),
    (Linear, BatchNorm),
)


def is_fusible(producer, consumer) -> bool:
    """Can ``consumer`` be folded into ``producer``?

    ReLU is explicitly rejected whatever the producer — the zkSNARK-specific
    rule the paper contrasts with plaintext fusion.
    """
    if isinstance(consumer, ReLU):
        return False
    return any(
        isinstance(producer, prod) and isinstance(consumer, cons)
        for prod, cons in FUSIBLE
    )


def fusible_pairs(model: Model) -> List[Tuple[str, str]]:
    """All (producer, consumer) node-name pairs fusible in ``model``.

    A pair qualifies only when the consumer is the producer's *sole* reader
    (otherwise other readers would observe un-fused values).
    """
    readers = {}
    for node in model.nodes:
        for src in node.inputs:
            readers.setdefault(src, []).append(node.name)
    pairs = []
    for node in model.nodes:
        if len(node.inputs) != 1:
            continue
        src = node.inputs[0]
        if src == "__input__" or len(readers.get(src, [])) != 1:
            continue
        producer = model.node(src).layer
        if is_fusible(producer, node.layer):
            pairs.append((src, node.name))
    return pairs
