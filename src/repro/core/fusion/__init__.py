"""zkSNARK-aware NN fusion (§6.2)."""

from repro.core.fusion.rules import FUSIBLE, fusible_pairs, is_fusible
from repro.core.fusion.fuse import fuse_model

__all__ = ["FUSIBLE", "is_fusible", "fusible_pairs", "fuse_model"]
