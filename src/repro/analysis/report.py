"""Audit findings and the severity-ranked :class:`AuditReport`.

Every auditor in :mod:`repro.analysis` — the structural linter, the
under-constrained-witness detector, and the adversarial witness fuzzer —
speaks the same :class:`Finding` vocabulary, as does the optimizer
(:class:`repro.r1cs.optimize.OptimizeReport`).  A finding names the rule
that fired, a severity, and where in the constraint system it anchors
(constraint index, variable index, layer tag).

:class:`AuditReport` aggregates findings across sections, ranks them by
severity, and serializes to/from JSON so ``zeno audit --json`` output can
be archived, diffed, and gated on in CI.  The JSON document round-trips
bit-for-bit (property under test).

This module is deliberately dependency-light: it imports nothing from
``repro.r1cs`` so the optimizer can emit findings without an import cycle.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """Ranked severity; ERROR findings gate proving and fail CI."""

    ERROR = "error"  # soundness hole: under-constrained var, accepted mutant
    WARNING = "warning"  # suspicious structure worth a human look
    INFO = "info"  # bookkeeping: optimizer removals, coverage notes

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One audit observation, anchored to the constraint system."""

    rule: str  # e.g. "under-constrained", "duplicate-constraint"
    severity: Severity = Severity.WARNING
    message: str = ""
    constraint: Optional[int] = None  # constraint index, if applicable
    variable: Optional[int] = None  # signed variable index, if applicable
    layer: Optional[str] = None  # mark_layer tag, if known
    details: dict = field(default_factory=dict, hash=False, compare=False)

    def to_json(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.constraint is not None:
            doc["constraint"] = self.constraint
        if self.variable is not None:
            doc["variable"] = self.variable
        if self.layer is not None:
            doc["layer"] = self.layer
        if self.details:
            doc["details"] = self.details
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "Finding":
        return cls(
            rule=doc["rule"],
            severity=Severity(doc["severity"]),
            message=doc.get("message", ""),
            constraint=doc.get("constraint"),
            variable=doc.get("variable"),
            layer=doc.get("layer"),
            details=doc.get("details", {}),
        )


@dataclass
class AuditReport:
    """Severity-ranked audit result for one constraint system."""

    system: str = ""
    num_constraints: int = 0
    num_public: int = 0
    num_private: int = 0
    findings: List[Finding] = field(default_factory=list)
    # Which auditors ran and their wall time — "no findings" only means
    # "clean" for the sections that actually executed.
    sections: Dict[str, float] = field(default_factory=dict)

    # -- accumulation ---------------------------------------------------------

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def section(self, name: str, seconds: float) -> None:
        self.sections[name] = self.sections.get(name, 0.0) + seconds

    # -- ranking --------------------------------------------------------------

    def ranked(self) -> List[Finding]:
        """Findings sorted most-severe first (stable within a severity)."""
        return sorted(self.findings, key=lambda f: f.severity.rank)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding is present."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        out = {s.value: 0 for s in Severity}
        for finding in self.findings:
            out[finding.severity.value] += 1
        return out

    # -- serialization --------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "format": "zeno-audit",
                "version": 1,
                "system": self.system,
                "num_constraints": self.num_constraints,
                "num_public": self.num_public,
                "num_private": self.num_private,
                "ok": self.ok,
                "counts": self.counts(),
                "sections": self.sections,
                "findings": [f.to_json() for f in self.ranked()],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "AuditReport":
        doc = json.loads(text)
        if doc.get("format") != "zeno-audit":
            raise ValueError(f"unknown audit format {doc.get('format')!r}")
        report = cls(
            system=doc.get("system", ""),
            num_constraints=doc.get("num_constraints", 0),
            num_public=doc.get("num_public", 0),
            num_private=doc.get("num_private", 0),
            sections=dict(doc.get("sections", {})),
        )
        report.findings = [Finding.from_json(f) for f in doc.get("findings", [])]
        return report

    # -- presentation ---------------------------------------------------------

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"audit {self.system}: m={self.num_constraints}, "
            f"pub={self.num_public}, priv={self.num_private} — "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        ]
        for name, seconds in sorted(self.sections.items()):
            lines.append(f"  section {name:14s} {seconds:8.3f}s")
        for finding in self.ranked():
            where = []
            if finding.layer:
                where.append(finding.layer)
            if finding.constraint is not None:
                where.append(f"#{finding.constraint}")
            if finding.variable is not None:
                where.append(f"var {finding.variable}")
            anchor = f" [{', '.join(where)}]" if where else ""
            lines.append(
                f"  {finding.severity.value.upper():7s} "
                f"{finding.rule}{anchor}: {finding.message}"
            )
        return "\n".join(lines)
