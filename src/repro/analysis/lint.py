"""Structural lints over a compiled :class:`ConstraintSystem`.

Every ZENO rewrite — privacy-adaptive folding (Eq. 2→3), knit packing,
multi-child additions, fusion into weights — deletes or merges
constraints.  These lints catch the structural residue such rewrites
leave behind when they go wrong:

===========================  ========  =====================================
rule                         severity  fires when
===========================  ========  =====================================
``unreferenced-private``     WARNING   a private variable appears in no
                                       constraint (free witness column)
``pruned-input``             INFO      a *declared free input* (``assume``)
                                       appears in no constraint — its taps
                                       were elided as zero-weight by
                                       sparsity-aware compilation
``constant-tautology``       WARNING   a constraint references only the
                                       constant ONE and is always true
``constant-contradiction``   ERROR     a constant-only constraint is always
                                       false (system unsatisfiable)
``duplicate-constraint``     WARNING   two constraints are equal modulo
                                       term order / scalar multiples / A·B
                                       swap (same canonical key as the
                                       optimizer's dedupe pass)
``boolean-unconsumed``       WARNING   a variable is constrained boolean
                                       but never recombined into any other
                                       constraint (dead range check)
``dangling-layer-range``     ERROR     a ``mark_layer`` range points past
                                       the constraint list
``overlapping-layer-ranges`` WARNING   two layer tags claim the same
                                       constraint index
``untagged-constraints``     INFO      constraints covered by no layer tag
===========================  ========  =====================================

All lints are purely structural: they never evaluate the witness, so they
run on unassigned (shared/imported) systems too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.report import Finding, Severity
from repro.r1cs.constraint import Constraint
from repro.r1cs.lc import ONE
from repro.r1cs.optimize import (
    canonical_constraint_key,
    referenced_private_variables,
)
from repro.r1cs.system import ConstraintSystem


def match_boolean(constraint: Constraint) -> Optional[int]:
    """The variable ``x`` if the constraint is ``x * (x - 1) = 0``.

    Accepts scalar multiples and the A/B swap: ``(a·x) * (b·x - b) = 0``
    for nonzero ``a, b`` enforces exactly booleanity of ``x``.  Returns
    ``None`` for any other shape.
    """
    if not constraint.c.is_zero():
        return None
    for lin, aff in ((constraint.a, constraint.b), (constraint.b, constraint.a)):
        if len(lin.terms) != 1 or len(aff.terms) != 2:
            continue
        (x, a) = next(iter(lin.terms.items()))
        if x == ONE or a == 0:
            continue
        b = aff.terms.get(x)
        c = aff.terms.get(ONE)
        if b is None or c is None:
            continue
        # roots of b·x + c are {0, 1} iff c == -b (mod p)
        if (b + c) % lin.field.modulus == 0 and b != 0:
            return x
    return None


def boolean_variables(cs: ConstraintSystem) -> Dict[int, int]:
    """Map of boolean-constrained variable -> its booleanity constraint."""
    out: Dict[int, int] = {}
    for index, constraint in enumerate(cs.constraints):
        var = match_boolean(constraint)
        if var is not None and var not in out:
            out[var] = index
    return out


def _lint_unreferenced(
    cs: ConstraintSystem, assume: Optional[Set[int]] = None
) -> List[Finding]:
    used = referenced_private_variables(cs)
    assume = assume or set()
    findings = []
    for var in range(1, cs.num_private + 1):
        if var in used:
            continue
        if var in assume:
            # A declared free input (image pixel / committed constant)
            # that no constraint touches: sparsity-aware compilation
            # legitimately elides every tap of an input whose downstream
            # weights are all zero.  Provenance known — not a soundness
            # smell, just dead input.
            findings.append(
                Finding(
                    rule="pruned-input",
                    severity=Severity.INFO,
                    message=f"free input w{var} appears in no constraint "
                            "(all referencing terms elided as zero-weight)",
                    variable=var,
                )
            )
        else:
            findings.append(
                Finding(
                    rule="unreferenced-private",
                    severity=Severity.WARNING,
                    message=f"private variable w{var} appears in no constraint "
                            "(free witness column; optimizer would drop it)",
                    variable=var,
                )
            )
    return findings


def _lint_constant_only(cs: ConstraintSystem) -> List[Finding]:
    findings = []
    for index, constraint in enumerate(cs.constraints):
        lcs = (constraint.a, constraint.b, constraint.c)
        if any(any(i != ONE for i in lc.indices()) for lc in lcs):
            continue
        p = cs.field.modulus
        a0 = constraint.a.terms.get(ONE, 0)
        b0 = constraint.b.terms.get(ONE, 0)
        c0 = constraint.c.terms.get(ONE, 0)
        if a0 * b0 % p == c0 % p:
            findings.append(
                Finding(
                    rule="constant-tautology",
                    severity=Severity.WARNING,
                    message=f"constraint #{index} references no variable and "
                            "is always true (proves nothing)",
                    constraint=index,
                    layer=cs.layer_of(index),
                )
            )
        else:
            findings.append(
                Finding(
                    rule="constant-contradiction",
                    severity=Severity.ERROR,
                    message=f"constraint #{index} references no variable and "
                            f"is always false ({a0}*{b0} != {c0}): "
                            "the system is unsatisfiable",
                    constraint=index,
                    layer=cs.layer_of(index),
                )
            )
    return findings


def _lint_duplicates(cs: ConstraintSystem) -> List[Finding]:
    findings = []
    seen: Dict[tuple, int] = {}
    for index, constraint in enumerate(cs.constraints):
        key = canonical_constraint_key(constraint)
        kept = seen.setdefault(key, index)
        if kept != index:
            findings.append(
                Finding(
                    rule="duplicate-constraint",
                    severity=Severity.WARNING,
                    message=f"constraint #{index} duplicates #{kept} modulo "
                            "term order / scalar multiple (proves nothing "
                            "extra)",
                    constraint=index,
                    layer=cs.layer_of(index),
                    details={"duplicate_of": kept},
                )
            )
    return findings


def _lint_boolean_unconsumed(cs: ConstraintSystem) -> List[Finding]:
    booleans = boolean_variables(cs)
    if not booleans:
        return []
    consumers: Set[int] = set()
    for index, constraint in enumerate(cs.constraints):
        for lc in (constraint.a, constraint.b, constraint.c):
            for var in lc.indices():
                if var in booleans and booleans[var] != index:
                    consumers.add(var)
    findings = []
    for var, index in sorted(booleans.items()):
        if var in consumers:
            continue
        findings.append(
            Finding(
                rule="boolean-unconsumed",
                severity=Severity.WARNING,
                message=f"variable w{var} is constrained boolean "
                        f"(constraint #{index}) but never recombined — "
                        "a range check whose result is unused",
                variable=var,
                constraint=index,
                layer=cs.layer_of(index),
            )
        )
    return findings


def _lint_layer_ranges(cs: ConstraintSystem) -> List[Finding]:
    findings = []
    m = cs.num_constraints
    claimed: Dict[int, str] = {}
    reported_pairs = set()
    for tag, rng in cs.layer_ranges.items():
        if rng.start < 0 or rng.stop > m or rng.start > rng.stop:
            findings.append(
                Finding(
                    rule="dangling-layer-range",
                    severity=Severity.ERROR,
                    message=f"layer {tag!r} claims constraints "
                            f"[{rng.start}, {rng.stop}) but the system has "
                            f"only {m} — provenance is stale",
                    layer=tag,
                )
            )
            continue
        for index in rng:
            other = claimed.get(index)
            if other is None:
                claimed[index] = tag
            elif (other, tag) not in reported_pairs:
                reported_pairs.add((other, tag))
                findings.append(
                    Finding(
                        rule="overlapping-layer-ranges",
                        severity=Severity.WARNING,
                        message=f"layers {other!r} and {tag!r} both claim "
                                f"constraint #{index}",
                        constraint=index,
                        layer=tag,
                        details={"other_layer": other},
                    )
                )
    if cs.layer_ranges:
        untagged = m - len(claimed)
        if untagged > 0:
            findings.append(
                Finding(
                    rule="untagged-constraints",
                    severity=Severity.INFO,
                    message=f"{untagged} of {m} constraints are covered by "
                            "no layer tag",
                    details={"untagged": untagged},
                )
            )
    return findings


def lint_system(cs: ConstraintSystem, assume=()) -> List[Finding]:
    """Run every structural lint; returns the combined findings.

    ``assume`` names declared free-input variables (the same set the
    determinism detector is seeded with): unreferenced ones are reported
    as INFO ``pruned-input`` rather than WARNING ``unreferenced-private``,
    since sparsity-aware compilation elides them with known provenance.
    """
    findings: List[Finding] = []
    findings.extend(_lint_unreferenced(cs, assume=set(assume)))
    findings.extend(_lint_constant_only(cs))
    findings.extend(_lint_duplicates(cs))
    findings.extend(_lint_boolean_unconsumed(cs))
    findings.extend(_lint_layer_ranges(cs))
    return findings
