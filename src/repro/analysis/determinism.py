"""Lightweight under-constrained-witness detection (Picus-style).

An R1CS is *under-constrained* when two satisfying assignments agree on
the public inputs (and the prover's declared free inputs) but differ on
some internal wire — the prover can then choose that wire's value, and
any rewrite that introduced the slack (a dropped range check, a knit slot
wide enough to alias) is a soundness hole that ``is_satisfied()`` on the
honest witness will never show.

This detector propagates *uniqueness* through the constraint graph from a
seed set (public variables, the constant ONE, and ``assume``-d inputs such
as the private image and committed weights) to a fixpoint, using three
rules:

1. **Linear solve** — when one product side of ``A·B = C`` is fully
   determined, the constraint becomes a linear equation over the remaining
   unknowns; exactly one unknown with a nonzero net coefficient solves
   exactly (prime field).
2. **Boolean marking** — ``b·(b−1) = 0`` patterns bound ``b`` to ``{0,1}``
   (see :func:`repro.analysis.lint.match_boolean`); more generally a
   linear equation whose other unknowns are bounded *derives* an integer
   bound for its one unbounded unknown (this is how an offset range proof
   ``Σ 2^i·bit = out + 256`` bounds ``out`` to ``[-256, 767]``).
3. **Unique decomposition** — a linear equation whose unknowns are all
   integer-bounded determines *all* of them when the coefficient/bound
   profile is uniquely decodable (mixed-radix condition: sorted by weight,
   every prefix's maximal value stays below the next weight, and the total
   span stays below the field modulus).  This is what discharges bit
   decompositions, ReLU sign proofs, and knit-packed multi-slot equality
   constraints in one step.

4. **One-hot selectors** — ``Σ b_v = 1`` over boolean-bounded variables
   registers an *exactly-one group*: any satisfying assignment sets
   precisely one of them.  A later linear equation over the same group,
   ``Σ c_v·b_v = const``, then determines the entire group when exactly
   one member's coefficient matches ``const`` (members absent from the
   equation count as coefficient 0): the set bit must be that member.
   This discharges the one-hot table selectors and embedding-row
   selectors of the bit-decomposition transformer path, which neither
   the bound rule (all-equal weights are not uniquely decodable) nor
   the decomposition rule can handle.

5. **Lookup-argument grants** — LogUp soundness is a *global,
   probabilistic* property (Schwartz–Zippel over the in-circuit
   Fiat–Shamir challenge), invisible to the local linear rules: the
   membership constraint ``(alpha - x - 2^16·y + c)·h = 1`` alone never
   pins ``y``.  The propagator therefore consults the
   :class:`~repro.lookup.argument.LookupBlock` metadata the engine left
   on the system: a **strict-mode** block whose constraints pass the
   structural check (:func:`~repro.lookup.argument.verify_lookup_block`
   — canonical table column, bound multiplicities, sum check, sponge
   absorbing exactly the recorded pairs and multiplicities) grants all
   of its engine wires (outputs, inverse columns, multiplicities,
   sponge states, challenge, input range bits) once every lookup input
   wire is determined.  Given range-proven inputs the pair packing is
   injective, so table membership uniquely determines each output —
   up to the argument's negligible soundness error, which is the same
   caveat the proof system itself carries.  Lean-mode blocks (fixed
   challenge, documented unsound) and blocks failing the structural
   check grant *nothing*: their wires degrade to under-constrained
   findings, which is how ``zeno audit`` catches a tampered lowering.

The detector is *sound in one direction*: a variable it reports
determined really is uniquely determined (each rule is a valid
implication); a variable it reports under-constrained may be a false
positive (the rules are not complete).  On this repo's strict-mode
gadgets and compiled models the fixpoint determines every wire; lean-mode
circuits are genuinely under-constrained (slack remainders, unproven sign
bits) and are reported as such.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import boolean_variables
from repro.analysis.report import Finding, Severity
from repro.r1cs.lc import ONE
from repro.r1cs.system import ConstraintSystem

# Derived integer bounds wider than this are useless for decomposition
# reasoning; treat the variable as unbounded instead.
_MAX_BOUND_WIDTH = 1 << 64


@dataclass
class DeterminismResult:
    """Outcome of one uniqueness-propagation run."""

    determined: Set[int] = field(default_factory=set)
    assumed: Set[int] = field(default_factory=set)
    bounds: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    undetermined: List[int] = field(default_factory=list)
    rounds: int = 0
    wall_time: float = 0.0
    # (table_name, defect) per lookup block that failed the structural
    # check or is lean-mode (and therefore granted nothing).
    lookup_errors: List[Tuple[str, str]] = field(default_factory=list)
    lookup_blocks_granted: int = 0

    @property
    def ok(self) -> bool:
        return not self.undetermined and not self.lookup_errors

    def findings(self, cs: ConstraintSystem) -> List[Finding]:
        """One ERROR finding per under-constrained private variable,
        plus one per structurally broken lookup block (named defect)."""
        out: List[Finding] = []
        for table_name, defect in self.lookup_errors:
            out.append(
                Finding(
                    rule="lookup-block",
                    severity=Severity.ERROR,
                    message=f"lookup block {table_name!r} is not a sound "
                            f"LogUp lowering: {defect}",
                    layer=f"lookup:{table_name}",
                )
            )
        if not self.undetermined:
            return out
        touching: Dict[int, List[int]] = {v: [] for v in self.undetermined}
        for index, constraint in enumerate(cs.constraints):
            for lc in (constraint.a, constraint.b, constraint.c):
                for var in lc.indices():
                    if var in touching and index not in touching[var]:
                        touching[var].append(index)
        for var in self.undetermined:
            refs = touching[var]
            layer = cs.layer_of(refs[0]) if refs else None
            bound = self.bounds.get(var)
            hint = (
                f"bounded to [{bound[0]}, {bound[1]}] but not unique"
                if bound
                else "no constraint pins its value"
            )
            out.append(
                Finding(
                    rule="under-constrained",
                    severity=Severity.ERROR,
                    message=f"private variable w{var} is not uniquely "
                            f"determined by the public inputs ({hint})",
                    variable=var,
                    constraint=refs[0] if refs else None,
                    layer=layer,
                    details={"constraints": refs[:8]},
                )
            )
        return out


def _signed(value: int, p: int) -> int:
    """Canonical representative of smallest magnitude (negatives allowed)."""
    return value if value <= p // 2 else value - p


def _uniquely_decodable(
    weights: Sequence[int], widths: Sequence[int], p: int
) -> bool:
    """Mixed-radix injectivity: is ``t -> Σ w_j t_j  (0 <= t_j <= width_j)``
    injective mod ``p``?

    Sufficient condition: sorted by ``|w|``, each prefix's maximal absolute
    sum stays strictly below the next weight, and the total stays below
    ``p``.  (Any two distinct digit vectors then differ by a nonzero
    integer of magnitude < p.)
    """
    order = sorted(range(len(weights)), key=lambda j: abs(weights[j]))
    prefix = 0
    for j in order:
        w = abs(weights[j])
        if w == 0 or prefix >= w:
            return False
        prefix += w * widths[j]
    return prefix < p


class _Propagator:
    def __init__(self, cs: ConstraintSystem, assume: Iterable[int]):
        self.cs = cs
        self.p = cs.field.modulus
        self.assignment = cs.assignment()
        self.assumed = {v for v in assume if v > 0}
        self.det: Set[int] = set(self.assumed)
        self.bounds: Dict[int, Tuple[int, int]] = {
            var: (0, 1) for var in boolean_variables(cs)
        }
        self.done = [False] * cs.num_constraints
        # Rule 4 state: exactly-one groups from sum-to-one constraints
        # over booleans, and a member -> group index for fast lookup.
        self.groups: List[frozenset] = []
        self.group_of: Dict[int, int] = {}
        self.lookup_errors: List[Tuple[str, str]] = []
        self.granted_blocks = 0
        # Structurally verified strict lookup blocks, pending their
        # input wires becoming determined (see rule 5 in the module doc).
        self._pending_blocks: List = []
        for block in getattr(cs, "lookup_blocks", ()):
            if block.mode != "strict":
                continue  # lean: unsound challenge, never granted
            from repro.lookup.argument import verify_lookup_block

            defect = verify_lookup_block(cs, block)
            if defect is None:
                self._pending_blocks.append(block)
            else:
                self.lookup_errors.append((block.table_name, defect))

    def is_det(self, var: int) -> bool:
        return var <= 0 or var in self.det

    def _lc_value(self, lc) -> int:
        return lc.evaluate(self.assignment)

    def _grant_lookup_blocks(self) -> bool:
        """Rule 5: verified strict blocks grant their engine wires.

        Two granularities.  Each *output* ``y_i`` is a function of its own
        input — the argument proves ``(x_i, y_i)`` is a table row, and the
        table maps each ``x`` to exactly one ``y`` — so ``y_i`` is granted
        as soon as ``x_i`` is determined (a shared table can span layers
        with data dependencies between them; waiting for the whole block
        would deadlock).  The *column* wires (multiplicities, ``g``,
        sponge states, challenge) depend on the full multiset of lookups
        and are granted only when every input is determined.
        """
        progress = False
        still_pending = []
        for block in self._pending_blocks:
            all_x = True
            for x, y in zip(block.x_vars, block.y_vars):
                if self.is_det(x):
                    if not self.is_det(y):
                        self.det.add(y)
                        progress = True
                else:
                    all_x = False
            if all_x:
                self.det.update(block.engine_vars())
                self.granted_blocks += 1
                progress = True
            else:
                still_pending.append(block)
        self._pending_blocks = still_pending
        return progress

    def run(self) -> Tuple[int, Set[int]]:
        rounds = 0
        progress = True
        while progress:
            progress = False
            rounds += 1
            for index, constraint in enumerate(self.cs.constraints):
                if self.done[index]:
                    continue
                if self._visit(constraint):
                    progress = True
                if all(
                    self.is_det(v)
                    for lc in (constraint.a, constraint.b, constraint.c)
                    for v in lc.indices()
                ):
                    self.done[index] = True
            if self._grant_lookup_blocks():
                progress = True
        return rounds, self.det

    # -- one constraint ------------------------------------------------------

    def _visit(self, constraint) -> bool:
        a, b, c = constraint.a, constraint.b, constraint.c
        a_known = all(self.is_det(v) for v in a.indices())
        b_known = all(self.is_det(v) for v in b.indices())
        if a_known:
            return self._linear(self._lc_value(a), b, c)
        if b_known:
            return self._linear(self._lc_value(b), a, c)
        return False

    def _linear(self, side_val: int, other, c) -> bool:
        """Propagate through ``side_val * other = c`` as a linear equation.

        Builds ``Σ net_v · v = const`` over the undetermined variables and
        applies, in order: exact solve (one unknown), bound derivation
        (one unbounded unknown), unique decomposition (all bounded).
        """
        p = self.p
        net: Dict[int, int] = {}
        for v, coeff in other.terms.items():
            net[v] = net.get(v, 0) + side_val * coeff
        for v, coeff in c.terms.items():
            net[v] = net.get(v, 0) - coeff
        unknowns = {}
        for v, coeff in net.items():
            coeff %= p
            if coeff and not self.is_det(v):
                unknowns[v] = coeff
        if not unknowns:
            return False
        if len(unknowns) == 1:
            var = next(iter(unknowns))
            self.det.add(var)
            return True

        unbounded = [v for v in unknowns if v not in self.bounds]
        if len(unbounded) == 1:
            return self._derive_bound(unbounded[0], unknowns)
        if not unbounded:
            if self._decompose(unknowns):
                return True
            return self._selector(net, unknowns)
        return False

    def _selector(self, net: Dict[int, int], unknowns: Dict[int, int]) -> bool:
        """Rule 4: exactly-one groups and unique-coefficient selection.

        ``Σ_v net_v·v = 0`` restricted to the unknowns reads
        ``Σ_u c_u·u = const`` with ``const`` the negated known part.
        Registers a group when the equation is ``λ·Σ b = λ`` over
        booleans; solves a whole registered group when exactly one
        member's coefficient equals ``const``.
        """
        p = self.p
        const = 0
        for v, coeff in net.items():
            if v not in unknowns:
                const = (const - coeff * self.assignment[v]) % p

        coeffs = set(unknowns.values())
        if (
            len(coeffs) == 1
            and all(self.bounds.get(u) == (0, 1) for u in unknowns)
        ):
            lam = next(iter(coeffs))
            if const == lam and not any(
                u in self.group_of for u in unknowns
            ):
                idx = len(self.groups)
                self.groups.append(frozenset(unknowns))
                for u in unknowns:
                    self.group_of[u] = idx
                # Registration alone is not propagation progress; a later
                # visit of a selecting equation does the determining.
                return False

        gidx = self.group_of.get(next(iter(unknowns)))
        if gidx is None:
            return False
        group = self.groups[gidx]
        if not set(unknowns) <= group:
            return False
        # A member already determined to 1 is the set bit everywhere; the
        # rest of the group is forced to 0.
        if any(
            self.is_det(u) and self.assignment[u] == 1
            for u in group
            if u not in unknowns
        ):
            self.det.update(group)
            return True
        # Exactly one member is 1.  Members absent from this equation have
        # coefficient 0; the set member's coefficient must equal const.
        candidates = [u for u, c in unknowns.items() if c == const]
        if const == 0:
            candidates += [
                u for u in group if u not in unknowns and not self.is_det(u)
            ]
        if len(candidates) == 1:
            self.det.update(group)
            return True
        return False

    def _derive_bound(self, var: int, unknowns: Dict[int, int]) -> bool:
        """Solve the equation for ``var`` as an integer interval.

        Solving gives ``var = k' + Σ d_j u_j``.  The honest witness is one
        solution, and any other solution shifts each ``u_j`` by at most
        its bound width ``w_j``, so every satisfying value of ``var`` lies
        within ``honest ± Σ |d_j|·w_j`` — an integer interval anchored at
        the honest (signed-canonical) value.
        """
        p = self.p
        inv = self.cs.field.inv(unknowns[var])
        span = 0
        for v, coeff in unknowns.items():
            if v == var:
                continue
            d = _signed(-coeff * inv % p, p)
            b_lo, b_hi = self.bounds[v]
            span += abs(d) * (b_hi - b_lo)
            if span > _MAX_BOUND_WIDTH:
                return False
        honest = _signed(self.assignment[var], p)
        new = (honest - span, honest + span)
        old = self.bounds.get(var)
        if old is not None and old[1] - old[0] <= new[1] - new[0]:
            return False
        self.bounds[var] = new
        return True

    def _decompose(self, unknowns: Dict[int, int]) -> bool:
        p = self.p
        weights = []
        widths = []
        for v, coeff in unknowns.items():
            weights.append(_signed(coeff, p))
            widths.append(self.bounds[v][1] - self.bounds[v][0])
        if not _uniquely_decodable(weights, widths, p):
            return False
        self.det.update(unknowns)
        return True


def check_determinism(
    cs: ConstraintSystem, assume: Iterable[int] = ()
) -> DeterminismResult:
    """Propagate uniqueness from publics + ``assume``; report the rest.

    ``assume`` lists private variables the prover legitimately chooses —
    the image pixels and committed weights for a compiled model, a
    gadget's input wires for a gadget-level audit.  Every other private
    variable must be uniquely pinned by the constraints; those that are
    not are returned in ``undetermined`` (sorted).
    """
    start = time.perf_counter()
    prop = _Propagator(cs, assume)
    rounds, det = prop.run()
    undetermined = [
        v
        for v in range(1, cs.num_private + 1)
        if v not in det and v not in prop.assumed
    ]
    return DeterminismResult(
        determined=det,
        assumed=prop.assumed,
        bounds=prop.bounds,
        undetermined=undetermined,
        rounds=rounds,
        wall_time=time.perf_counter() - start,
        lookup_errors=prop.lookup_errors,
        lookup_blocks_granted=prop.granted_blocks,
    )


def assume_from_recipe(recipe) -> List[int]:
    """Free-input variables from a witness recipe: image pixels + weights.

    The recipe (``record_recipe=True`` compilations, and every
    :class:`~repro.core.reuse.batch.BatchProver`) logs each allocation as
    ``(var, descriptor)``; ``image`` and ``const`` descriptors are exactly
    the variables the prover chooses freely.
    """
    return [var for var, desc in recipe if desc[0] in ("image", "const")]
