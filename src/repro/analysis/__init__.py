"""`repro.analysis` — circuit soundness auditing for compiled R1CS.

ZENO's aggressive circuit rewriting (privacy-adaptive constraint
collapsing, knit packing, multi-child additions, fusion into weights)
makes it easy to silently drop a constraint and ship an
*under-constrained* circuit that still passes ``is_satisfied()`` on the
honest witness.  This package audits every compiled
:class:`~repro.r1cs.system.ConstraintSystem` before proving time is spent
on it:

* :mod:`repro.analysis.lint` — structural lints (unreferenced privates,
  constant-only constraints, scalar-multiple duplicates, unconsumed
  booleans, broken layer provenance);
* :mod:`repro.analysis.determinism` — a Picus-style
  under-constrained-witness detector propagating uniqueness from the
  public inputs to a fixpoint;
* :mod:`repro.analysis.fuzz` — an adversarial witness fuzzer asserting
  every mutated witness is rejected, recording accepted mutants as
  minimized soundness counterexamples;
* :mod:`repro.analysis.report` — the severity-ranked
  :class:`~repro.analysis.report.AuditReport` with JSON round-trip.

Entry points: :func:`audit_system` here, the ``zeno audit`` CLI
subcommand, the ``audit=`` knob on :class:`~repro.core.compiler.\
CompilerOptions`, and the pre-prove audit gate in :mod:`repro.serve`.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Optional

from repro.analysis.determinism import (
    DeterminismResult,
    assume_from_recipe,
    check_determinism,
)
from repro.analysis.fuzz import FuzzReport, WitnessFuzzer, fuzz_witness
from repro.analysis.lint import boolean_variables, lint_system, match_boolean
from repro.analysis.report import AuditReport, Finding, Severity
from repro.r1cs.system import ConstraintSystem


class CircuitAuditError(RuntimeError):
    """Raised when an enforced audit finds ERROR-severity problems."""

    def __init__(self, report: AuditReport) -> None:
        errors = report.errors
        preview = "; ".join(f.message for f in errors[:3])
        super().__init__(
            f"circuit audit failed with {len(errors)} error(s): {preview}"
        )
        self.report = report


def audit_system(
    cs: ConstraintSystem,
    assume: Iterable[int] = (),
    lint: bool = True,
    determinism: bool = True,
    fuzz: int = 0,
    rng: Optional[random.Random] = None,
) -> AuditReport:
    """Run the requested auditors over one constraint system.

    ``assume`` seeds the determinism detector (and is forwarded from a
    compilation's witness recipe by the pipeline integrations); ``fuzz``
    is the witness-mutation count (0 disables fuzzing — it needs a fully
    assigned witness and is the most expensive section).
    """
    report = AuditReport(
        system=cs.name,
        num_constraints=cs.num_constraints,
        num_public=cs.num_public,
        num_private=cs.num_private,
    )
    if lint:
        start = time.perf_counter()
        report.extend(lint_system(cs, assume=assume))
        report.section("lint", time.perf_counter() - start)
    if determinism:
        result = check_determinism(cs, assume=assume)
        report.extend(result.findings(cs))
        report.section("determinism", result.wall_time)
    if fuzz:
        fuzz_report = fuzz_witness(cs, mutations=fuzz, rng=rng)
        report.extend(fuzz_report.findings(cs))
        report.section("fuzz", fuzz_report.wall_time)
    return report


__all__ = [
    "AuditReport",
    "CircuitAuditError",
    "DeterminismResult",
    "Finding",
    "FuzzReport",
    "Severity",
    "WitnessFuzzer",
    "assume_from_recipe",
    "audit_system",
    "boolean_variables",
    "check_determinism",
    "fuzz_witness",
    "lint_system",
    "match_boolean",
]
