"""Adversarial witness fuzzing: every mutant must be rejected.

A sound circuit admits exactly one witness per (public input, free input)
choice, so *any* perturbation of a satisfied witness must violate at
least one constraint.  The fuzzer mutates the honest private assignment
and asserts rejection; an **accepted mutant** — a perturbed witness the
whole system still satisfies — is a concrete soundness counterexample
(the prover could have proven a different computation), recorded with a
minimized reproducer.

Mutation catalog:

* ``perturb``  — add a uniform random nonzero field delta to one private
  variable (the baseline probe);
* ``bitflip``  — flip a variable whose honest value is 0/1 (targets
  committed sign bits and booleanity bits);
* ``overflow`` — add a power of two ``2^k`` to one variable (targets knit
  slot boundaries: an under-width slot lets a high bit of one expression
  alias into the next slot);
* ``bleed``    — perturb two variables of one constraint with deltas
  chosen to cancel inside that constraint's A side (``d2 = -d1·c1/c2``),
  so the mutation survives the packed equality and must be caught by a
  *different* constraint (range checks, downstream layers).

Rejection checking is incremental: only constraints touching a mutated
variable can change value, so each trial costs ``O(touching constraints)``
rather than a full-system scan.  Private variables referenced by no
constraint are never mutated — perturbing them is trivially accepted and
is already reported by the ``unreferenced-private`` lint.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import Finding, Severity
from repro.r1cs.lc import Assignment
from repro.r1cs.system import ConstraintSystem

STRATEGIES = ("perturb", "bitflip", "overflow", "bleed")


@dataclass(frozen=True)
class Counterexample:
    """An accepted mutant: deltas (var -> field delta) the system allows."""

    strategy: str
    deltas: Dict[int, int]
    minimized: Dict[int, int]

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "deltas": {str(v): str(d) for v, d in self.deltas.items()},
            "minimized": {str(v): str(d) for v, d in self.minimized.items()},
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session against a satisfied system."""

    trials: int = 0
    rejected: int = 0
    by_strategy: Dict[str, int] = field(default_factory=dict)
    accepted: List[Counterexample] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.accepted

    def findings(self, cs: ConstraintSystem) -> List[Finding]:
        out = []
        for ce in self.accepted:
            var = next(iter(ce.minimized), None)
            refs: List[int] = []
            if var is not None:
                for index, constraint in enumerate(cs.constraints):
                    if any(
                        var in lc.terms
                        for lc in (constraint.a, constraint.b, constraint.c)
                    ):
                        refs.append(index)
            out.append(
                Finding(
                    rule="accepted-mutant",
                    severity=Severity.ERROR,
                    message=(
                        f"witness mutation ({ce.strategy}) accepted: "
                        f"perturbing {{{', '.join(f'w{v}' for v in ce.minimized)}}} "
                        "leaves every constraint satisfied — soundness "
                        "counterexample"
                    ),
                    variable=var,
                    constraint=refs[0] if refs else None,
                    layer=cs.layer_of(refs[0]) if refs else None,
                    details={"counterexample": ce.to_json()},
                )
            )
        return out


class WitnessFuzzer:
    """Mutates one system's honest witness and checks rejection."""

    def __init__(
        self,
        cs: ConstraintSystem,
        rng: Optional[random.Random] = None,
        strategies: Sequence[str] = STRATEGIES,
    ) -> None:
        if not cs.is_satisfied():
            raise ValueError(
                "fuzzing needs a satisfied honest witness; this system has "
                f"{len(cs.violations(limit=3))}+ violations already"
            )
        self.cs = cs
        self.p = cs.field.modulus
        self.rng = rng or random.Random(0xF022)
        self.strategies = tuple(strategies)
        self._assignment = cs.assignment()
        # var -> indices of constraints referencing it (the incremental
        # rejection check) — also the referenced-variable filter.
        self.touching: Dict[int, List[int]] = {}
        for index, constraint in enumerate(cs.constraints):
            for lc in (constraint.a, constraint.b, constraint.c):
                for var in lc.indices():
                    if var > 0:
                        self.touching.setdefault(var, []).append(index)
        self.candidates = sorted(self.touching)
        self.bit_valued = [
            v for v in self.candidates if self._assignment[v] in (0, 1)
        ]

    # -- mutation application --------------------------------------------------

    def _accepted(self, deltas: Dict[int, int]) -> bool:
        """Apply deltas in place, check touched constraints, revert."""
        private = self._assignment.private
        affected = set()
        for var, delta in deltas.items():
            private[var - 1] = (private[var - 1] + delta) % self.p
            affected.update(self.touching.get(var, ()))
        try:
            return all(
                self.cs.constraints[i].is_satisfied(self._assignment)
                for i in affected
            )
        finally:
            for var, delta in deltas.items():
                private[var - 1] = (private[var - 1] - delta) % self.p

    def _minimize(self, deltas: Dict[int, int]) -> Dict[int, int]:
        """Greedy reproducer shrinking: drop variables, then shrink deltas."""
        current = dict(deltas)
        for var in list(current):
            if len(current) == 1:
                break
            trial = {v: d for v, d in current.items() if v != var}
            if self._accepted(trial):
                current = trial
        for var in list(current):
            for small in (1, self.p - 1):
                if current[var] in (1, self.p - 1):
                    break
                trial = dict(current)
                trial[var] = small
                if self._accepted(trial):
                    current = trial
                    break
        return current

    # -- strategies ------------------------------------------------------------

    def _mutate_perturb(self) -> Dict[int, int]:
        var = self.rng.choice(self.candidates)
        return {var: self.rng.randrange(1, self.p)}

    def _mutate_bitflip(self) -> Dict[int, int]:
        if not self.bit_valued:
            return self._mutate_perturb()
        var = self.rng.choice(self.bit_valued)
        # 0 -> 1 or 1 -> 0
        delta = 1 if self._assignment[var] == 0 else self.p - 1
        return {var: delta}

    def _mutate_overflow(self) -> Dict[int, int]:
        var = self.rng.choice(self.candidates)
        exp = self.rng.randrange(1, self.p.bit_length() - 1)
        delta = pow(2, exp, self.p)
        if self.rng.random() < 0.5:
            delta = self.p - delta
        return {var: delta}

    def _mutate_bleed(self) -> Dict[int, int]:
        for _ in range(8):
            constraint = self.rng.choice(self.cs.constraints)
            side = constraint.a if len(constraint.a) >= 2 else constraint.c
            pair = [v for v in side.indices() if v > 0 and v in self.touching]
            if len(pair) < 2:
                continue
            v1, v2 = self.rng.sample(pair, 2)
            d1 = pow(2, self.rng.randrange(0, 16), self.p)
            c1 = side.terms[v1]
            c2 = side.terms[v2]
            d2 = (-d1 * c1 * self.cs.field.inv(c2)) % self.p
            if d2 == 0:
                continue
            return {v1: d1, v2: d2}
        return self._mutate_perturb()

    # -- driver ----------------------------------------------------------------

    def run(self, mutations: int = 200) -> FuzzReport:
        report = FuzzReport()
        start = time.perf_counter()
        if not self.candidates:
            report.wall_time = time.perf_counter() - start
            return report
        mutators = {
            "perturb": self._mutate_perturb,
            "bitflip": self._mutate_bitflip,
            "overflow": self._mutate_overflow,
            "bleed": self._mutate_bleed,
        }
        for trial in range(mutations):
            strategy = self.strategies[trial % len(self.strategies)]
            deltas = mutators[strategy]()
            report.trials += 1
            report.by_strategy[strategy] = report.by_strategy.get(strategy, 0) + 1
            if self._accepted(deltas):
                report.accepted.append(
                    Counterexample(
                        strategy=strategy,
                        deltas=dict(deltas),
                        minimized=self._minimize(deltas),
                    )
                )
            else:
                report.rejected += 1
        report.wall_time = time.perf_counter() - start
        return report


def fuzz_witness(
    cs: ConstraintSystem,
    mutations: int = 200,
    rng: Optional[random.Random] = None,
    strategies: Sequence[str] = STRATEGIES,
) -> FuzzReport:
    """Run ``mutations`` adversarial witness mutations against ``cs``."""
    return WitnessFuzzer(cs, rng=rng, strategies=strategies).run(mutations)
