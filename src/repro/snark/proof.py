"""The Groth16 proof object: exactly three group elements.

The paper's "fixed-size proof (e.g., 192 bytes)" (§2.1) is this object:
A in G1, B in G2, C in G1 — 2 G1 points + 1 G2 point = 192 bytes compressed
on BN254.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

GroupElement = Any

# Compressed sizes on BN254: G1 = 32 bytes, G2 = 64 bytes.
G1_COMPRESSED_BYTES = 32
G2_COMPRESSED_BYTES = 64
PROOF_BYTES = 2 * G1_COMPRESSED_BYTES + G2_COMPRESSED_BYTES  # 128 on BN254
# (the paper's 192-byte figure is BLS12-381's 48/96-byte points)


@dataclass
class Proof:
    a: GroupElement
    b: GroupElement
    c: GroupElement

    def size_bytes(self) -> int:
        """Nominal compressed wire size on BN254."""
        return PROOF_BYTES
