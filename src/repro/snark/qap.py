"""Quadratic Arithmetic Program machinery: NTT domains and QAP evaluation.

Groth16 reduces an R1CS with ``m`` constraints to a QAP over an evaluation
domain of size ``d = next_pow2(m)`` with vanishing polynomial
``Z(x) = x^d - 1``.  BN254's scalar field has 2-adicity 28, so radix-2
domains up to ``2^28`` exist; roots of unity are derived from the
multiplicative generator 5 (the arkworks/bellman convention).

Two jobs live here:

* **setup side** — evaluate the Lagrange basis at the toxic-waste point
  ``tau`` to obtain per-variable ``A_i(tau), B_i(tau), C_i(tau)``;
* **prover side** — compute the quotient ``h(x) = (A_w B_w - C_w) / Z`` via
  the standard coset-NTT trick: on the coset ``g * H`` the vanishing
  polynomial is the constant ``g^d - 1``, so the division is pointwise.

A :class:`Domain` precomputes everything that is witness-independent at
construction — omega/coset power tables, per-stage butterfly twiddles, the
bit-reversal permutation — so repeated proving (batch sharing, the serve
loop) never rebuilds an O(d) power chain; :meth:`Domain.for_size` memoizes
whole domains per ``(size, modulus)``.

The prover-side entry points accept an optional CSR snapshot
(:meth:`repro.r1cs.system.ConstraintSystem.to_csr`) and a ``parallelism``
degree: witness rows evaluate through the §5.2 schedule executor
(:mod:`repro.core.schedule.executor`) and the three independent
INTT → coset-NTT chains of the quotient dispatch to worker processes.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.field.fp import BN254_FR, Field
from repro.field.vector import batch_inverse
from repro.r1cs.lc import ONE
from repro.r1cs.system import ConstraintSystem

# Multiplicative generator of BN254 Fr (smallest generator, used by arkworks).
FR_GENERATOR = 5
FR_TWO_ADICITY = 28


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


# Domains memoized per (size, modulus): the power/twiddle tables are pure
# functions of the domain, so every prove over the same circuit size —
# including the QAP chain workers — shares one instance.
#
# The cache is a bounded LRU: long-running serve/gateway processes see an
# unbounded variety of circuit sizes (one entry per (size, modulus), each
# holding O(d) tables), so an unbounded dict is a slow leak.  Eviction
# drops the least-recently-proved domain; rebuilding one is O(d) and rare.
# Fork-inherited copies in worker pools are independent after the fork —
# each process evicts only its own copy, so a worker churning through
# sizes never invalidates the parent's hot domains (regression-tested in
# tests/test_field_backend.py).
_DOMAIN_CACHE: "OrderedDict[Tuple[int, int], Domain]" = OrderedDict()
_DOMAIN_CACHE_LOCK = threading.Lock()
_DOMAIN_CACHE_MAX = max(2, int(os.environ.get("ZENO_DOMAIN_CACHE_MAX", "8")))


def domain_cache_info() -> Tuple[int, int]:
    """``(entries, capacity)`` of the process-wide domain LRU."""
    return len(_DOMAIN_CACHE), _DOMAIN_CACHE_MAX


# Below this domain size the per-call numpy dispatch overhead beats the
# vectorized butterfly win; the scalar lazy-reduction path stays faster.
_VECTOR_NTT_MIN = int(os.environ.get("ZENO_VECTOR_NTT_MIN", "256"))


class Domain:
    """A radix-2 evaluation domain ``H = {w^0, ..., w^(d-1)}`` in Fr."""

    def __init__(self, size: int, field: Field = BN254_FR) -> None:
        d = _next_pow2(max(size, 2))
        if d.bit_length() - 1 > FR_TWO_ADICITY:
            raise ValueError(f"domain size {d} exceeds Fr 2-adicity")
        self.field = field
        self.size = d
        p = field.modulus
        exponent = (p - 1) >> (d.bit_length() - 1)
        self.omega = pow(FR_GENERATOR, exponent, p)
        self.omega_inv = pow(self.omega, -1, p)
        self.size_inv = pow(d, -1, p)
        self.coset_shift = FR_GENERATOR
        self.coset_shift_inv = pow(FR_GENERATOR, -1, p)
        # Witness-independent tables, built once per domain:
        self.omega_powers = self._power_table(self.omega)
        self.coset_powers = self._power_table(self.coset_shift)
        self.coset_inv_powers = self._power_table(self.coset_shift_inv)
        self._bitrev = self._bitrev_table()
        self._stage_twiddle_cache: Dict[int, List[List[int]]] = {}
        # Fused post-NTT scale tables: INTT's 1/d folded into the coset
        # shift (and its inverse), so each INTT -> coset hop costs one
        # pointwise pass instead of two.
        self._intt_coset_scale = [
            (g * self.size_inv) % p for g in self.coset_powers
        ]
        self._coset_intt_scale = [
            (g * self.size_inv) % p for g in self.coset_inv_powers
        ]
        # Limb-resident twiddle/scale tables for the vectorized backend,
        # built lazily on first vector-path transform.
        self._vec: Optional["_VectorTables"] = None

    @classmethod
    def for_size(cls, size: int, field: Field = BN254_FR) -> "Domain":
        """Memoized domain lookup — one table build per ``(size, modulus)``,
        bounded LRU with least-recently-used eviction."""
        d = _next_pow2(max(size, 2))
        key = (d, field.modulus)
        with _DOMAIN_CACHE_LOCK:
            domain = _DOMAIN_CACHE.get(key)
            if domain is not None:
                _DOMAIN_CACHE.move_to_end(key)
                return domain
        # Build outside the lock (O(d) table construction); racing builders
        # may duplicate work but the cache stays consistent.
        domain = cls(d, field)
        with _DOMAIN_CACHE_LOCK:
            existing = _DOMAIN_CACHE.get(key)
            if existing is not None:
                _DOMAIN_CACHE.move_to_end(key)
                return existing
            _DOMAIN_CACHE[key] = domain
            while len(_DOMAIN_CACHE) > _DOMAIN_CACHE_MAX:
                _DOMAIN_CACHE.popitem(last=False)
        return domain

    # -- cached tables -----------------------------------------------------------

    def _power_table(self, base: int) -> List[int]:
        """``[base^0, ..., base^(d-1)] mod p``."""
        p = self.field.modulus
        table = [1] * self.size
        for j in range(1, self.size):
            table[j] = (table[j - 1] * base) % p
        return table

    def _bitrev_table(self) -> List[int]:
        """The bit-reversal permutation of ``range(d)``."""
        d = self.size
        log2d = d.bit_length() - 1
        table = [0] * d
        for i in range(1, d):
            table[i] = (table[i >> 1] >> 1) | ((i & 1) << (log2d - 1))
        return table

    def _stage_twiddles(self, root: int) -> List[List[int]]:
        """Per-stage butterfly twiddle tables for ``root`` (omega or its
        inverse), cached so no NTT pays the per-butterfly ``w *= step``
        update chain."""
        stages = self._stage_twiddle_cache.get(root)
        if stages is None:
            p = self.field.modulus
            d = self.size
            stages = []
            length = 2
            while length <= d:
                step = pow(root, d // length, p)
                half = length >> 1
                twiddles = [1] * half
                for i in range(1, half):
                    twiddles[i] = (twiddles[i - 1] * step) % p
                stages.append(twiddles)
                length <<= 1
            self._stage_twiddle_cache[root] = stages
        return stages

    # -- vectorized backend plumbing ---------------------------------------------

    def _vector_tables(self) -> Optional["_VectorTables"]:
        """The limb-resident table bundle, or ``None`` when the active
        backend is scalar / the domain is below the vector threshold."""
        if self.size < _VECTOR_NTT_MIN:
            return None
        from repro.field.backend import get_backend

        if not getattr(get_backend(), "supports_ntt", False):
            return None
        vec = self._vec
        if vec is None:
            vec = _VectorTables(self)
            self._vec = vec
        return vec

    @staticmethod
    def _all_canonical(values: List[int], p: int) -> bool:
        return not values or (min(values) >= 0 and max(values) < p)

    def _bump_ntt_counters(self, transforms: int) -> None:
        """Charge the cost-model counters for ``transforms`` NTT passes —
        identical totals to the scalar butterfly loop, so backends are
        indistinguishable to the op-count benchmarks."""
        from repro.field.counters import global_counter

        counter = global_counter()
        log2d = self.size.bit_length() - 1
        counter.field_mul += (self.size >> 1) * log2d * transforms
        counter.field_add += self.size * log2d * transforms

    def _vec_transform(
        self,
        vectors: List[List[int]],
        root: int,
        pre_scale=None,
        post_scale=None,
    ) -> List[List[int]]:
        """Batched NTT of ``vectors`` through the limb backend.

        ``pre_scale``/``post_scale`` are canonical mont-form pointwise
        tables (the coset shift and fused INTT scales), applied in natural
        order before bit-reversal / after the butterflies — mirroring the
        scalar methods exactly, including which passes the cost model
        counts (only the butterflies)."""
        from repro.field import backend as fb

        vec = self._vec
        plan = vec.plan
        d = self.size
        C = len(vectors)
        flat = [x for v in vectors for x in v]
        arr = fb.to_limbs(plan, flat).reshape(plan.limbs, C, d)
        bound = 1
        if pre_scale is not None:
            arr = fb.pointwise_mont(plan, arr, pre_scale)
            bound = 2
        arr = fb.bit_reverse_gather(arr, vec.bitrev)
        fb.ntt_stages(plan, arr, vec.tiled_stages(root, C), bound)
        if post_scale is not None:
            arr = fb.pointwise_mont(plan, arr, post_scale)
        fb.canonicalize(plan, arr)
        out = fb.from_limbs(plan, arr)
        self._bump_ntt_counters(C)
        return [out[c * d : (c + 1) * d] for c in range(C)]

    # -- NTT core ----------------------------------------------------------------

    def _ntt(self, values: List[int], omega: int) -> List[int]:
        """Iterative Cooley-Tukey NTT over cached tables (values copied).

        Butterfly sums are *lazily reduced*: the twiddle product is taken
        mod p every stage (so the odd branch stays canonical), while the
        add/sub results are left unreduced — magnitudes grow by at most p
        per stage, staying tiny for Python's bignums — and one cleanup
        pass canonicalizes the output.

        Cost accounting (Table 3-style): one ``field_mul`` and two
        ``field_add`` per butterfly, ``(d/2) * log2(d)`` butterflies.
        """
        p = self.field.modulus
        d = self.size
        if len(values) != d:
            raise ValueError(f"expected {d} values, got {len(values)}")
        out = list(values)
        for i, j in enumerate(self._bitrev):
            if i < j:
                out[i], out[j] = out[j], out[i]
        length = 2
        for twiddles in self._stage_twiddles(omega):
            half = length >> 1
            for start in range(0, d, length):
                k = start
                for w in twiddles:
                    u = out[k]
                    v = (out[k + half] * w) % p
                    out[k] = u + v
                    out[k + half] = u - v
                    k += 1
            length <<= 1
        from repro.field.counters import global_counter

        counter = global_counter()
        log2d = d.bit_length() - 1
        counter.field_mul += (d >> 1) * log2d
        counter.field_add += d * log2d
        return [v % p for v in out]

    def ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over H (zero-padded to domain size)."""
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        vec = self._vector_tables()
        if vec is not None and self._all_canonical(padded, self.field.modulus):
            return self._vec_transform([padded], self.omega)[0]
        return self._ntt(padded, self.omega)

    def intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over H -> coefficients."""
        p = self.field.modulus
        values = list(evals)
        vec = self._vector_tables()
        if vec is not None and self._all_canonical(values, p):
            return self._vec_transform(
                [values], self.omega_inv, post_scale=vec.size_inv_mont
            )[0]
        out = self._ntt(values, self.omega_inv)
        size_inv = self.size_inv
        return [(v * size_inv) % p for v in out]

    def coset_ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over the coset ``g * H``."""
        p = self.field.modulus
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        vec = self._vector_tables()
        if vec is not None and self._all_canonical(padded, p):
            return self._vec_transform(
                [padded], self.omega, pre_scale=vec.coset_mont
            )[0]
        shifted = [(c * g) % p for c, g in zip(padded, self.coset_powers)]
        return self._ntt(shifted, self.omega)

    def coset_intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over ``g * H`` -> coefficients (1/d and the inverse
        coset shift applied in one fused pass)."""
        p = self.field.modulus
        values = list(evals)
        vec = self._vector_tables()
        if vec is not None and self._all_canonical(values, p):
            return self._vec_transform(
                [values], self.omega_inv, post_scale=vec.coset_intt_mont
            )[0]
        out = self._ntt(values, self.omega_inv)
        return [(v * s) % p for v, s in zip(out, self._coset_intt_scale)]

    def chain_to_coset(self, evals: Sequence[int]) -> List[int]:
        """One quotient chain: H-evaluations -> coset evaluations.

        Equivalent to ``coset_ntt(intt(evals))`` with the INTT's ``1/d``
        and the coset shift fused into a single cached pointwise table —
        the unit of work the parallel quotient dispatches per polynomial.
        On the vector backend both transforms run limb-resident with one
        fused mont-form scale pass between them.
        """
        p = self.field.modulus
        values = list(evals)
        vec = self._vector_tables()
        if vec is not None and self._all_canonical(values, p):
            from repro.field import backend as fb

            plan = vec.plan
            arr = fb.to_limbs(plan, values).reshape(plan.limbs, 1, self.size)
            arr, _ = self._vec_intt_to_coset(arr)
            fb.canonicalize(plan, arr)
            self._bump_ntt_counters(2)
            return fb.from_limbs(plan, arr)
        coeffs = self._ntt(values, self.omega_inv)
        shifted = [
            (c * s) % p for c, s in zip(coeffs, self._intt_coset_scale)
        ]
        return self._ntt(shifted, self.omega)

    def _vec_intt_to_coset(self, arr, scale=None):
        """Limb-resident INTT -> fused scale -> coset NTT (lazy output).

        ``arr`` is canonical ``(L, C, d)``; ``scale`` defaults to the
        mont-form fused table (per-chain tables may mix in a plain-form
        column — the quotient's ``1/R`` trick).  Returns the un-canonical
        coset evaluations and their lazy value bound (in multiples of p);
        callers canonicalize (or feed the pointwise quotient step, which
        tolerates the bound) and charge the 2-NTT counter cost."""
        from repro.field import backend as fb

        vec = self._vec
        plan = vec.plan
        batch = arr.shape[1] if arr.ndim == 3 else 1
        arr = fb.bit_reverse_gather(arr, vec.bitrev)
        fb.ntt_stages(plan, arr, vec.tiled_stages(self.omega_inv, batch), 1)
        arr = fb.pointwise_mont(
            plan, arr, vec.intt_coset_mont if scale is None else scale
        )
        arr = fb.bit_reverse_gather(arr, vec.bitrev)
        bound = fb.ntt_stages(
            plan, arr, vec.tiled_stages(self.omega, batch), 2
        )
        return arr, bound

    # -- vanishing polynomial -------------------------------------------------------

    def vanishing_at(self, x: int) -> int:
        return (pow(x, self.size, self.field.modulus) - 1) % self.field.modulus

    def coset_vanishing_constant(self) -> int:
        """``Z(g * w^j) = g^d - 1`` — constant over the whole coset."""
        return self.vanishing_at(self.coset_shift)

    # -- Lagrange basis at a point ------------------------------------------------------

    def lagrange_at(self, tau: int) -> List[int]:
        """``[L_0(tau), ..., L_{d-1}(tau)]`` in O(d) with batch inversion.

        ``L_j(tau) = Z(tau) * w^j / (d * (tau - w^j))``.
        """
        field = self.field
        p = field.modulus
        z_tau = self.vanishing_at(tau)
        if z_tau == 0:
            raise ValueError("tau lies inside the evaluation domain")
        omegas = self.omega_powers
        denominators = [(tau - w) % p for w in omegas]
        inverses = batch_inverse(field, denominators)
        scale = (z_tau * self.size_inv) % p
        return [(scale * w * inv) % p for w, inv in zip(omegas, inverses)]


class _VectorTables:
    """Per-domain limb-resident tables for the vectorized NTT backend.

    Twiddles and fused scale tables are stored as canonical Montgomery-form
    ``(L, n)`` int64 arrays so every butterfly/scale pass is a single
    ``mont_mul`` with plain data — no per-transform Montgomery conversion.
    Built once per (domain, process) and cached on the Domain, so they
    ride the domain LRU and fork into worker pools for free.
    """

    __slots__ = (
        "plan", "bitrev", "stages", "coset_mont", "intt_coset_mont",
        "intt_coset_plain", "coset_intt_mont", "size_inv_mont",
        "_tiled", "size",
    )

    def __init__(self, domain: "Domain") -> None:
        import numpy as np

        from repro.field import backend as fb

        plan = fb.plan_for(domain.field)
        p = domain.field.modulus
        rm = plan.R_mod_p
        self.plan = plan
        self.bitrev = np.array(domain._bitrev, dtype=np.int64)
        self.size = domain.size
        self.stages = {}
        self._tiled = {}
        for root in (domain.omega, domain.omega_inv):
            scalar_stages = domain._stage_twiddles(root)
            tables = [None]  # stage 0 twiddle is 1: pure add/sub butterfly
            for s in range(1, len(scalar_stages)):
                tables.append(
                    fb.to_limbs(
                        plan, [w * rm % p for w in scalar_stages[s]]
                    )
                )
            self.stages[root] = tables
        self.coset_mont = fb.to_limbs(
            plan, [v * rm % p for v in domain.coset_powers]
        )
        self.intt_coset_mont = fb.to_limbs(
            plan, [v * rm % p for v in domain._intt_coset_scale]
        )
        # Plain-form variant: multiplying by it through mont_mul leaves an
        # extra 1/R on the chain — the quotient pipeline runs its C chain
        # through this table so (A*B - C) needs no Montgomery conversion.
        self.intt_coset_plain = fb.to_limbs(plan, domain._intt_coset_scale)
        self.coset_intt_mont = fb.to_limbs(
            plan, [v * rm % p for v in domain._coset_intt_scale]
        )
        self.size_inv_mont = fb.to_limbs(plan, [domain.size_inv * rm % p])

    def tiled_stages(self, root: int, batch: int):
        """Stage twiddles pre-tiled to the full ``(L, batch * d/2)`` lane
        width, memoized per (root, batch).

        Tiling once per domain (a few MB per batch width, riding the
        domain LRU) lets every butterfly stage feed the Montgomery kernel
        a single contiguous operand instead of materializing a broadcast
        copy on each of the ~log2(d) stages of every transform.
        """
        import numpy as np

        key = (root, batch)
        cached = self._tiled.get(key)
        if cached is not None:
            return cached
        lanes = batch * (self.size // 2)
        tables = [None]
        for s, base in enumerate(self.stages[root]):
            if s == 0:
                continue
            reps = lanes // base.shape[1]
            tables.append(
                np.ascontiguousarray(np.tile(base, reps))
                if reps > 1
                else base
            )
        self._tiled[key] = tables
        return tables


def _vector_quotient(
    domain: Domain,
    a_evals: List[int],
    b_evals: List[int],
    c_evals: List[int],
) -> List[int]:
    """Array-resident quotient: all three chains batched as ``(L, 3, d)``.

    The A/B chains run through the mont-form fused scale table, the C
    chain through the plain-form one, so on the coset the stored values
    are ``A``, ``B`` and ``C/R``; then ``mont_mul(A, B) - C/R`` is
    ``(AB - C)/R`` with zero conversion passes, and one final multiply by
    the canonical constant ``z_inv * R^2`` yields ``(AB - C) * z_inv``
    exactly.  Counter totals equal the scalar path's seven NTTs.
    """
    import numpy as np

    from repro.field import backend as fb

    vec = domain._vector_tables()
    plan = vec.plan
    p = domain.field.modulus
    d = domain.size
    L = plan.limbs
    flat = list(a_evals) + list(b_evals) + list(c_evals)
    arr = fb.to_limbs(plan, flat).reshape(L, 3, d)
    scale = np.stack(
        [vec.intt_coset_mont, vec.intt_coset_mont, vec.intt_coset_plain],
        axis=1,
    )
    arr, bound = domain._vec_intt_to_coset(arr, scale=scale)
    a_c = np.ascontiguousarray(arr[:, 0])
    b_c = np.ascontiguousarray(arr[:, 1])
    c_c = np.ascontiguousarray(arr[:, 2])
    fb.canonicalize(plan, b_c)  # the mont-multiply's B operand
    u = fb.mont_mul(plan, a_c, b_c)  # stored: A*B/R, value < 2p
    if bound + 2 >= len(plan.kp_cols):
        fb.canonicalize(plan, c_c)
        bound = 1
    u -= c_c
    u += plan.kp_cols[bound]  # keep the subtraction nonnegative
    fb._ripple_norm(u)
    z_inv = pow(domain.coset_vanishing_constant(), -1, p)
    z_col = fb.to_limbs(plan, [z_inv * plan.R2 % p])
    h = fb.mont_mul(plan, u, z_col).reshape(L, 1, d)
    h = fb.bit_reverse_gather(h, vec.bitrev)
    fb.ntt_stages(plan, h, vec.tiled_stages(domain.omega_inv, 1), 2)
    h = fb.pointwise_mont(plan, h, vec.coset_intt_mont)
    fb.canonicalize(plan, h)
    h_coeffs = fb.from_limbs(plan, h)
    domain._bump_ntt_counters(7)
    if h_coeffs[-1] != 0:
        raise ValueError("witness does not satisfy the constraint system")
    return h_coeffs[:-1]


# -- QAP over a constraint system --------------------------------------------------------


def variable_order(cs: ConstraintSystem) -> List[int]:
    """Groth16 variable ordering: ``[ONE, publics..., privates...]``."""
    publics = [-(i + 1) for i in range(cs.num_public)]
    privates = [i + 1 for i in range(cs.num_private)]
    return [ONE] + publics + privates


def qap_evaluations_at(
    cs: ConstraintSystem, domain: Domain, tau: int
) -> Tuple[List[int], List[int], List[int]]:
    """Per-variable ``(A_i(tau), B_i(tau), C_i(tau))`` in variable order.

    Used by the (trapdoor-simulated) trusted setup: iterate the sparse
    constraint matrices once, accumulating ``a_{j,i} * L_j(tau)``.
    """
    p = domain.field.modulus
    lagrange = domain.lagrange_at(tau)
    order = variable_order(cs)
    position: Dict[int, int] = {v: k for k, v in enumerate(order)}
    n = len(order)
    a_at = [0] * n
    b_at = [0] * n
    c_at = [0] * n
    for j, constraint in enumerate(cs.constraints):
        lj = lagrange[j]
        for index, coeff in constraint.a:
            a_at[position[index]] = (a_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.b:
            b_at[position[index]] = (b_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.c:
            c_at[position[index]] = (c_at[position[index]] + coeff * lj) % p
    return a_at, b_at, c_at


def witness_polynomial_evals(
    cs: ConstraintSystem,
    domain: Domain,
    csr=None,
    parallelism: Optional[int] = None,
    schedule=None,
) -> Tuple[List[int], List[int], List[int]]:
    """Evaluations of ``A_w, B_w, C_w`` over H (one value per constraint row).

    Runs over the CSR snapshot (built on demand; pass ``csr`` to reuse a
    batch-shared structure).  With ``parallelism > 1`` the rows evaluate in
    real worker processes via the §5.2 schedule executor, partitioned by
    the constraint system's layer ranges (and ``schedule``'s per-worker
    unit assignment when given).
    """
    from repro.r1cs.csr import evaluate_rows

    if csr is None:
        csr = cs.to_csr()
    elif csr.z is None:
        csr.z = cs.dense_assignment()
    if parallelism is not None and parallelism > 1:
        from repro.core.schedule.executor import ScheduleExecutor

        executor = ScheduleExecutor(num_workers=parallelism)
        evaluation = executor.evaluate_witness(
            csr, cs.layer_ranges, schedule=schedule
        )
        rows = (evaluation.a_rows, evaluation.b_rows, evaluation.c_rows)
    else:
        rows = evaluate_rows(csr)
    a_evals = [0] * domain.size
    b_evals = [0] * domain.size
    c_evals = [0] * domain.size
    m = csr.num_rows
    a_evals[:m], b_evals[:m], c_evals[:m] = rows[0], rows[1], rows[2]
    return a_evals, b_evals, c_evals


def witness_polynomial_evals_lc(
    cs: ConstraintSystem, domain: Domain
) -> Tuple[List[int], List[int], List[int]]:
    """Legacy per-LC reference path (dict walk per constraint term).

    Kept as the equivalence oracle for the CSR/executor paths — the
    property tests assert identical output, and ``prove_bench`` uses it as
    the pre-CSR sequential baseline.
    """
    assignment = cs.assignment()
    a_evals = [0] * domain.size
    b_evals = [0] * domain.size
    c_evals = [0] * domain.size
    for j, constraint in enumerate(cs.constraints):
        a_evals[j] = constraint.a.evaluate(assignment)
        b_evals[j] = constraint.b.evaluate(assignment)
        c_evals[j] = constraint.c.evaluate(assignment)
    return a_evals, b_evals, c_evals


def _coset_chain(payload: Tuple[int, int, List[int]]):
    """Worker entry for one INTT -> coset-NTT chain.

    Self-contained payload (domain size, modulus, H-evaluations) so it
    pickles to any pool; the worker-side :meth:`Domain.for_size` cache
    amortizes table builds across the three chains and across proves.
    Returns the coset evaluations plus the worker's op tally.
    """
    size, modulus, evals = payload
    field = BN254_FR if modulus == BN254_FR.modulus else Field(modulus)
    domain = Domain.for_size(size, field)
    from repro.field.counters import count_ops

    with count_ops() as ops:
        coset = domain.chain_to_coset(evals)
    return coset, {"field_mul": ops.field_mul, "field_add": ops.field_add}


def quotient_coefficients(
    cs: ConstraintSystem,
    domain: Domain,
    csr=None,
    parallelism: Optional[int] = None,
    schedule=None,
    evals: Optional[Tuple[List[int], List[int], List[int]]] = None,
) -> List[int]:
    """Coefficients of ``h(x) = (A_w(x) B_w(x) - C_w(x)) / Z(x)``.

    Standard coset trick: interpolate A_w/B_w/C_w from their H-evaluations,
    re-evaluate on the coset ``g*H`` where Z is the nonzero constant
    ``g^d - 1``, divide pointwise, and interpolate back.  Raises if the
    witness does not satisfy the R1CS (remainder nonzero).

    With ``parallelism > 1`` the witness rows evaluate through the
    schedule executor and the three independent INTT -> coset-NTT chains
    dispatch to worker processes (tallies merged into this process's
    counter so the cost model matches the sequential path).
    """
    p = domain.field.modulus
    if evals is None:
        evals = witness_polynomial_evals(
            cs, domain, csr=csr, parallelism=parallelism, schedule=schedule
        )
    a_evals, b_evals, c_evals = evals
    vec = domain._vector_tables()
    if vec is not None and all(
        Domain._all_canonical(list(v), p)
        for v in (a_evals, b_evals, c_evals)
    ):
        # Vectorized backend: all three chains batch through one
        # limb-resident pipeline — faster than forking the chain workers,
        # so the pool is bypassed (witness rows still parallelize
        # upstream).  Counter totals match the scalar path exactly.
        return _vector_quotient(
            domain, list(a_evals), list(b_evals), list(c_evals)
        )
    if parallelism is not None and parallelism > 1:
        from repro.core.schedule.executor import worker_pool
        from repro.field.counters import global_counter

        # Two chains go to workers; the parent computes the third itself
        # instead of idling on the gather.
        pool = worker_pool(min(parallelism, 2))
        futures = [
            pool.submit(_coset_chain, (domain.size, p, evals))
            for evals in (a_evals, b_evals)
        ]
        c_coset = domain.chain_to_coset(c_evals)
        counter = global_counter()
        cosets = []
        for future in futures:
            coset, tally = future.result()
            cosets.append(coset)
            counter.field_mul += tally["field_mul"]
            counter.field_add += tally["field_add"]
        a_coset, b_coset = cosets
    else:
        a_coset = domain.chain_to_coset(a_evals)
        b_coset = domain.chain_to_coset(b_evals)
        c_coset = domain.chain_to_coset(c_evals)
    z_inv = pow(domain.coset_vanishing_constant(), -1, p)
    h_coset = [
        ((a * b - c) % p) * z_inv % p
        for a, b, c in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = domain.coset_intt(h_coset)
    # deg(h) <= d - 2: the top coefficient must vanish for a valid witness.
    if h_coeffs[-1] != 0:
        raise ValueError("witness does not satisfy the constraint system")
    return h_coeffs[:-1]
