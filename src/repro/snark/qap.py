"""Quadratic Arithmetic Program machinery: NTT domains and QAP evaluation.

Groth16 reduces an R1CS with ``m`` constraints to a QAP over an evaluation
domain of size ``d = next_pow2(m)`` with vanishing polynomial
``Z(x) = x^d - 1``.  BN254's scalar field has 2-adicity 28, so radix-2
domains up to ``2^28`` exist; roots of unity are derived from the
multiplicative generator 5 (the arkworks/bellman convention).

Two jobs live here:

* **setup side** — evaluate the Lagrange basis at the toxic-waste point
  ``tau`` to obtain per-variable ``A_i(tau), B_i(tau), C_i(tau)``;
* **prover side** — compute the quotient ``h(x) = (A_w B_w - C_w) / Z`` via
  the standard coset-NTT trick: on the coset ``g * H`` the vanishing
  polynomial is the constant ``g^d - 1``, so the division is pointwise.

A :class:`Domain` precomputes everything that is witness-independent at
construction — omega/coset power tables, per-stage butterfly twiddles, the
bit-reversal permutation — so repeated proving (batch sharing, the serve
loop) never rebuilds an O(d) power chain; :meth:`Domain.for_size` memoizes
whole domains per ``(size, modulus)``.

The prover-side entry points accept an optional CSR snapshot
(:meth:`repro.r1cs.system.ConstraintSystem.to_csr`) and a ``parallelism``
degree: witness rows evaluate through the §5.2 schedule executor
(:mod:`repro.core.schedule.executor`) and the three independent
INTT → coset-NTT chains of the quotient dispatch to worker processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.field.fp import BN254_FR, Field
from repro.field.vector import batch_inverse
from repro.r1cs.lc import ONE
from repro.r1cs.system import ConstraintSystem

# Multiplicative generator of BN254 Fr (smallest generator, used by arkworks).
FR_GENERATOR = 5
FR_TWO_ADICITY = 28


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


# Domains memoized per (size, modulus): the power/twiddle tables are pure
# functions of the domain, so every prove over the same circuit size —
# including the QAP chain workers — shares one instance.
_DOMAIN_CACHE: Dict[Tuple[int, int], "Domain"] = {}


class Domain:
    """A radix-2 evaluation domain ``H = {w^0, ..., w^(d-1)}`` in Fr."""

    def __init__(self, size: int, field: Field = BN254_FR) -> None:
        d = _next_pow2(max(size, 2))
        if d.bit_length() - 1 > FR_TWO_ADICITY:
            raise ValueError(f"domain size {d} exceeds Fr 2-adicity")
        self.field = field
        self.size = d
        p = field.modulus
        exponent = (p - 1) >> (d.bit_length() - 1)
        self.omega = pow(FR_GENERATOR, exponent, p)
        self.omega_inv = pow(self.omega, -1, p)
        self.size_inv = pow(d, -1, p)
        self.coset_shift = FR_GENERATOR
        self.coset_shift_inv = pow(FR_GENERATOR, -1, p)
        # Witness-independent tables, built once per domain:
        self.omega_powers = self._power_table(self.omega)
        self.coset_powers = self._power_table(self.coset_shift)
        self.coset_inv_powers = self._power_table(self.coset_shift_inv)
        self._bitrev = self._bitrev_table()
        self._stage_twiddle_cache: Dict[int, List[List[int]]] = {}
        # Fused post-NTT scale tables: INTT's 1/d folded into the coset
        # shift (and its inverse), so each INTT -> coset hop costs one
        # pointwise pass instead of two.
        self._intt_coset_scale = [
            (g * self.size_inv) % p for g in self.coset_powers
        ]
        self._coset_intt_scale = [
            (g * self.size_inv) % p for g in self.coset_inv_powers
        ]

    @classmethod
    def for_size(cls, size: int, field: Field = BN254_FR) -> "Domain":
        """Memoized domain lookup — one table build per ``(size, modulus)``."""
        d = _next_pow2(max(size, 2))
        key = (d, field.modulus)
        domain = _DOMAIN_CACHE.get(key)
        if domain is None:
            domain = cls(d, field)
            _DOMAIN_CACHE[key] = domain
        return domain

    # -- cached tables -----------------------------------------------------------

    def _power_table(self, base: int) -> List[int]:
        """``[base^0, ..., base^(d-1)] mod p``."""
        p = self.field.modulus
        table = [1] * self.size
        for j in range(1, self.size):
            table[j] = (table[j - 1] * base) % p
        return table

    def _bitrev_table(self) -> List[int]:
        """The bit-reversal permutation of ``range(d)``."""
        d = self.size
        log2d = d.bit_length() - 1
        table = [0] * d
        for i in range(1, d):
            table[i] = (table[i >> 1] >> 1) | ((i & 1) << (log2d - 1))
        return table

    def _stage_twiddles(self, root: int) -> List[List[int]]:
        """Per-stage butterfly twiddle tables for ``root`` (omega or its
        inverse), cached so no NTT pays the per-butterfly ``w *= step``
        update chain."""
        stages = self._stage_twiddle_cache.get(root)
        if stages is None:
            p = self.field.modulus
            d = self.size
            stages = []
            length = 2
            while length <= d:
                step = pow(root, d // length, p)
                half = length >> 1
                twiddles = [1] * half
                for i in range(1, half):
                    twiddles[i] = (twiddles[i - 1] * step) % p
                stages.append(twiddles)
                length <<= 1
            self._stage_twiddle_cache[root] = stages
        return stages

    # -- NTT core ----------------------------------------------------------------

    def _ntt(self, values: List[int], omega: int) -> List[int]:
        """Iterative Cooley-Tukey NTT over cached tables (values copied).

        Butterfly sums are *lazily reduced*: the twiddle product is taken
        mod p every stage (so the odd branch stays canonical), while the
        add/sub results are left unreduced — magnitudes grow by at most p
        per stage, staying tiny for Python's bignums — and one cleanup
        pass canonicalizes the output.

        Cost accounting (Table 3-style): one ``field_mul`` and two
        ``field_add`` per butterfly, ``(d/2) * log2(d)`` butterflies.
        """
        p = self.field.modulus
        d = self.size
        if len(values) != d:
            raise ValueError(f"expected {d} values, got {len(values)}")
        out = list(values)
        for i, j in enumerate(self._bitrev):
            if i < j:
                out[i], out[j] = out[j], out[i]
        length = 2
        for twiddles in self._stage_twiddles(omega):
            half = length >> 1
            for start in range(0, d, length):
                k = start
                for w in twiddles:
                    u = out[k]
                    v = (out[k + half] * w) % p
                    out[k] = u + v
                    out[k + half] = u - v
                    k += 1
            length <<= 1
        from repro.field.counters import global_counter

        counter = global_counter()
        log2d = d.bit_length() - 1
        counter.field_mul += (d >> 1) * log2d
        counter.field_add += d * log2d
        return [v % p for v in out]

    def ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over H (zero-padded to domain size)."""
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        return self._ntt(padded, self.omega)

    def intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over H -> coefficients."""
        p = self.field.modulus
        out = self._ntt(list(evals), self.omega_inv)
        size_inv = self.size_inv
        return [(v * size_inv) % p for v in out]

    def coset_ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over the coset ``g * H``."""
        p = self.field.modulus
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        shifted = [(c * g) % p for c, g in zip(padded, self.coset_powers)]
        return self._ntt(shifted, self.omega)

    def coset_intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over ``g * H`` -> coefficients (1/d and the inverse
        coset shift applied in one fused pass)."""
        p = self.field.modulus
        out = self._ntt(list(evals), self.omega_inv)
        return [(v * s) % p for v, s in zip(out, self._coset_intt_scale)]

    def chain_to_coset(self, evals: Sequence[int]) -> List[int]:
        """One quotient chain: H-evaluations -> coset evaluations.

        Equivalent to ``coset_ntt(intt(evals))`` with the INTT's ``1/d``
        and the coset shift fused into a single cached pointwise table —
        the unit of work the parallel quotient dispatches per polynomial.
        """
        p = self.field.modulus
        coeffs = self._ntt(list(evals), self.omega_inv)
        shifted = [
            (c * s) % p for c, s in zip(coeffs, self._intt_coset_scale)
        ]
        return self._ntt(shifted, self.omega)

    # -- vanishing polynomial -------------------------------------------------------

    def vanishing_at(self, x: int) -> int:
        return (pow(x, self.size, self.field.modulus) - 1) % self.field.modulus

    def coset_vanishing_constant(self) -> int:
        """``Z(g * w^j) = g^d - 1`` — constant over the whole coset."""
        return self.vanishing_at(self.coset_shift)

    # -- Lagrange basis at a point ------------------------------------------------------

    def lagrange_at(self, tau: int) -> List[int]:
        """``[L_0(tau), ..., L_{d-1}(tau)]`` in O(d) with batch inversion.

        ``L_j(tau) = Z(tau) * w^j / (d * (tau - w^j))``.
        """
        field = self.field
        p = field.modulus
        z_tau = self.vanishing_at(tau)
        if z_tau == 0:
            raise ValueError("tau lies inside the evaluation domain")
        omegas = self.omega_powers
        denominators = [(tau - w) % p for w in omegas]
        inverses = batch_inverse(field, denominators)
        scale = (z_tau * self.size_inv) % p
        return [(scale * w * inv) % p for w, inv in zip(omegas, inverses)]


# -- QAP over a constraint system --------------------------------------------------------


def variable_order(cs: ConstraintSystem) -> List[int]:
    """Groth16 variable ordering: ``[ONE, publics..., privates...]``."""
    publics = [-(i + 1) for i in range(cs.num_public)]
    privates = [i + 1 for i in range(cs.num_private)]
    return [ONE] + publics + privates


def qap_evaluations_at(
    cs: ConstraintSystem, domain: Domain, tau: int
) -> Tuple[List[int], List[int], List[int]]:
    """Per-variable ``(A_i(tau), B_i(tau), C_i(tau))`` in variable order.

    Used by the (trapdoor-simulated) trusted setup: iterate the sparse
    constraint matrices once, accumulating ``a_{j,i} * L_j(tau)``.
    """
    p = domain.field.modulus
    lagrange = domain.lagrange_at(tau)
    order = variable_order(cs)
    position: Dict[int, int] = {v: k for k, v in enumerate(order)}
    n = len(order)
    a_at = [0] * n
    b_at = [0] * n
    c_at = [0] * n
    for j, constraint in enumerate(cs.constraints):
        lj = lagrange[j]
        for index, coeff in constraint.a:
            a_at[position[index]] = (a_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.b:
            b_at[position[index]] = (b_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.c:
            c_at[position[index]] = (c_at[position[index]] + coeff * lj) % p
    return a_at, b_at, c_at


def witness_polynomial_evals(
    cs: ConstraintSystem,
    domain: Domain,
    csr=None,
    parallelism: Optional[int] = None,
    schedule=None,
) -> Tuple[List[int], List[int], List[int]]:
    """Evaluations of ``A_w, B_w, C_w`` over H (one value per constraint row).

    Runs over the CSR snapshot (built on demand; pass ``csr`` to reuse a
    batch-shared structure).  With ``parallelism > 1`` the rows evaluate in
    real worker processes via the §5.2 schedule executor, partitioned by
    the constraint system's layer ranges (and ``schedule``'s per-worker
    unit assignment when given).
    """
    from repro.r1cs.csr import evaluate_rows

    if csr is None:
        csr = cs.to_csr()
    elif csr.z is None:
        csr.z = cs.dense_assignment()
    if parallelism is not None and parallelism > 1:
        from repro.core.schedule.executor import ScheduleExecutor

        executor = ScheduleExecutor(num_workers=parallelism)
        evaluation = executor.evaluate_witness(
            csr, cs.layer_ranges, schedule=schedule
        )
        rows = (evaluation.a_rows, evaluation.b_rows, evaluation.c_rows)
    else:
        rows = evaluate_rows(csr)
    a_evals = [0] * domain.size
    b_evals = [0] * domain.size
    c_evals = [0] * domain.size
    m = csr.num_rows
    a_evals[:m], b_evals[:m], c_evals[:m] = rows[0], rows[1], rows[2]
    return a_evals, b_evals, c_evals


def witness_polynomial_evals_lc(
    cs: ConstraintSystem, domain: Domain
) -> Tuple[List[int], List[int], List[int]]:
    """Legacy per-LC reference path (dict walk per constraint term).

    Kept as the equivalence oracle for the CSR/executor paths — the
    property tests assert identical output, and ``prove_bench`` uses it as
    the pre-CSR sequential baseline.
    """
    assignment = cs.assignment()
    a_evals = [0] * domain.size
    b_evals = [0] * domain.size
    c_evals = [0] * domain.size
    for j, constraint in enumerate(cs.constraints):
        a_evals[j] = constraint.a.evaluate(assignment)
        b_evals[j] = constraint.b.evaluate(assignment)
        c_evals[j] = constraint.c.evaluate(assignment)
    return a_evals, b_evals, c_evals


def _coset_chain(payload: Tuple[int, int, List[int]]):
    """Worker entry for one INTT -> coset-NTT chain.

    Self-contained payload (domain size, modulus, H-evaluations) so it
    pickles to any pool; the worker-side :meth:`Domain.for_size` cache
    amortizes table builds across the three chains and across proves.
    Returns the coset evaluations plus the worker's op tally.
    """
    size, modulus, evals = payload
    field = BN254_FR if modulus == BN254_FR.modulus else Field(modulus)
    domain = Domain.for_size(size, field)
    from repro.field.counters import count_ops

    with count_ops() as ops:
        coset = domain.chain_to_coset(evals)
    return coset, {"field_mul": ops.field_mul, "field_add": ops.field_add}


def quotient_coefficients(
    cs: ConstraintSystem,
    domain: Domain,
    csr=None,
    parallelism: Optional[int] = None,
    schedule=None,
    evals: Optional[Tuple[List[int], List[int], List[int]]] = None,
) -> List[int]:
    """Coefficients of ``h(x) = (A_w(x) B_w(x) - C_w(x)) / Z(x)``.

    Standard coset trick: interpolate A_w/B_w/C_w from their H-evaluations,
    re-evaluate on the coset ``g*H`` where Z is the nonzero constant
    ``g^d - 1``, divide pointwise, and interpolate back.  Raises if the
    witness does not satisfy the R1CS (remainder nonzero).

    With ``parallelism > 1`` the witness rows evaluate through the
    schedule executor and the three independent INTT -> coset-NTT chains
    dispatch to worker processes (tallies merged into this process's
    counter so the cost model matches the sequential path).
    """
    p = domain.field.modulus
    if evals is None:
        evals = witness_polynomial_evals(
            cs, domain, csr=csr, parallelism=parallelism, schedule=schedule
        )
    a_evals, b_evals, c_evals = evals
    if parallelism is not None and parallelism > 1:
        from repro.core.schedule.executor import worker_pool
        from repro.field.counters import global_counter

        # Two chains go to workers; the parent computes the third itself
        # instead of idling on the gather.
        pool = worker_pool(min(parallelism, 2))
        futures = [
            pool.submit(_coset_chain, (domain.size, p, evals))
            for evals in (a_evals, b_evals)
        ]
        c_coset = domain.chain_to_coset(c_evals)
        counter = global_counter()
        cosets = []
        for future in futures:
            coset, tally = future.result()
            cosets.append(coset)
            counter.field_mul += tally["field_mul"]
            counter.field_add += tally["field_add"]
        a_coset, b_coset = cosets
    else:
        a_coset = domain.chain_to_coset(a_evals)
        b_coset = domain.chain_to_coset(b_evals)
        c_coset = domain.chain_to_coset(c_evals)
    z_inv = pow(domain.coset_vanishing_constant(), -1, p)
    h_coset = [
        ((a * b - c) % p) * z_inv % p
        for a, b, c in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = domain.coset_intt(h_coset)
    # deg(h) <= d - 2: the top coefficient must vanish for a valid witness.
    if h_coeffs[-1] != 0:
        raise ValueError("witness does not satisfy the constraint system")
    return h_coeffs[:-1]
