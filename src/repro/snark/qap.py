"""Quadratic Arithmetic Program machinery: NTT domains and QAP evaluation.

Groth16 reduces an R1CS with ``m`` constraints to a QAP over an evaluation
domain of size ``d = next_pow2(m)`` with vanishing polynomial
``Z(x) = x^d - 1``.  BN254's scalar field has 2-adicity 28, so radix-2
domains up to ``2^28`` exist; roots of unity are derived from the
multiplicative generator 5 (the arkworks/bellman convention).

Two jobs live here:

* **setup side** — evaluate the Lagrange basis at the toxic-waste point
  ``tau`` to obtain per-variable ``A_i(tau), B_i(tau), C_i(tau)``;
* **prover side** — compute the quotient ``h(x) = (A_w B_w - C_w) / Z`` via
  the standard coset-NTT trick: on the coset ``g * H`` the vanishing
  polynomial is the constant ``g^d - 1``, so the division is pointwise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.field.fp import BN254_FR, Field
from repro.field.vector import batch_inverse
from repro.r1cs.lc import ONE
from repro.r1cs.system import ConstraintSystem

# Multiplicative generator of BN254 Fr (smallest generator, used by arkworks).
FR_GENERATOR = 5
FR_TWO_ADICITY = 28


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class Domain:
    """A radix-2 evaluation domain ``H = {w^0, ..., w^(d-1)}`` in Fr."""

    def __init__(self, size: int, field: Field = BN254_FR) -> None:
        d = _next_pow2(max(size, 2))
        if d.bit_length() - 1 > FR_TWO_ADICITY:
            raise ValueError(f"domain size {d} exceeds Fr 2-adicity")
        self.field = field
        self.size = d
        exponent = (field.modulus - 1) >> (d.bit_length() - 1)
        self.omega = pow(FR_GENERATOR, exponent, field.modulus)
        self.omega_inv = pow(self.omega, -1, field.modulus)
        self.size_inv = pow(d, -1, field.modulus)
        self.coset_shift = FR_GENERATOR
        self.coset_shift_inv = pow(FR_GENERATOR, -1, field.modulus)

    # -- NTT core ----------------------------------------------------------------

    def _ntt(self, values: List[int], omega: int) -> List[int]:
        """In-place iterative Cooley-Tukey NTT (values copied first)."""
        field = self.field
        p = field.modulus
        d = self.size
        if len(values) != d:
            raise ValueError(f"expected {d} values, got {len(values)}")
        out = list(values)
        # bit-reversal permutation
        j = 0
        for i in range(1, d):
            bit = d >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                out[i], out[j] = out[j], out[i]
        length = 2
        while length <= d:
            step = pow(omega, d // length, p)
            for start in range(0, d, length):
                w = 1
                half = length >> 1
                for k in range(start, start + half):
                    u = out[k]
                    v = (out[k + half] * w) % p
                    out[k] = (u + v) % p
                    out[k + half] = (u - v) % p
                    w = (w * step) % p
            length <<= 1
        from repro.field.counters import global_counter

        counter = global_counter()
        counter.field_mul += d * (d.bit_length() - 1)
        return out

    def ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over H (zero-padded to domain size)."""
        padded = list(coeffs) + [0] * (self.size - len(coeffs))
        return self._ntt(padded, self.omega)

    def intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over H -> coefficients."""
        p = self.field.modulus
        out = self._ntt(list(evals), self.omega_inv)
        return [(v * self.size_inv) % p for v in out]

    def coset_ntt(self, coeffs: Sequence[int]) -> List[int]:
        """Coefficients -> evaluations over the coset ``g * H``."""
        p = self.field.modulus
        shifted = []
        power = 1
        for c in list(coeffs) + [0] * (self.size - len(coeffs)):
            shifted.append((c * power) % p)
            power = (power * self.coset_shift) % p
        return self._ntt(shifted, self.omega)

    def coset_intt(self, evals: Sequence[int]) -> List[int]:
        """Evaluations over ``g * H`` -> coefficients."""
        p = self.field.modulus
        coeffs = self.intt(evals)
        out = []
        power = 1
        for c in coeffs:
            out.append((c * power) % p)
            power = (power * self.coset_shift_inv) % p
        return out

    # -- vanishing polynomial -------------------------------------------------------

    def vanishing_at(self, x: int) -> int:
        return (pow(x, self.size, self.field.modulus) - 1) % self.field.modulus

    def coset_vanishing_constant(self) -> int:
        """``Z(g * w^j) = g^d - 1`` — constant over the whole coset."""
        return self.vanishing_at(self.coset_shift)

    # -- Lagrange basis at a point ------------------------------------------------------

    def lagrange_at(self, tau: int) -> List[int]:
        """``[L_0(tau), ..., L_{d-1}(tau)]`` in O(d) with batch inversion.

        ``L_j(tau) = Z(tau) * w^j / (d * (tau - w^j))``.
        """
        field = self.field
        p = field.modulus
        z_tau = self.vanishing_at(tau)
        if z_tau == 0:
            raise ValueError("tau lies inside the evaluation domain")
        omegas = [1] * self.size
        for j in range(1, self.size):
            omegas[j] = (omegas[j - 1] * self.omega) % p
        denominators = [(tau - w) % p for w in omegas]
        inverses = batch_inverse(field, denominators)
        scale = (z_tau * self.size_inv) % p
        return [(scale * w * inv) % p for w, inv in zip(omegas, inverses)]


# -- QAP over a constraint system --------------------------------------------------------


def variable_order(cs: ConstraintSystem) -> List[int]:
    """Groth16 variable ordering: ``[ONE, publics..., privates...]``."""
    publics = [-(i + 1) for i in range(cs.num_public)]
    privates = [i + 1 for i in range(cs.num_private)]
    return [ONE] + publics + privates


def qap_evaluations_at(
    cs: ConstraintSystem, domain: Domain, tau: int
) -> Tuple[List[int], List[int], List[int]]:
    """Per-variable ``(A_i(tau), B_i(tau), C_i(tau))`` in variable order.

    Used by the (trapdoor-simulated) trusted setup: iterate the sparse
    constraint matrices once, accumulating ``a_{j,i} * L_j(tau)``.
    """
    p = domain.field.modulus
    lagrange = domain.lagrange_at(tau)
    order = variable_order(cs)
    position: Dict[int, int] = {v: k for k, v in enumerate(order)}
    n = len(order)
    a_at = [0] * n
    b_at = [0] * n
    c_at = [0] * n
    for j, constraint in enumerate(cs.constraints):
        lj = lagrange[j]
        for index, coeff in constraint.a:
            a_at[position[index]] = (a_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.b:
            b_at[position[index]] = (b_at[position[index]] + coeff * lj) % p
        for index, coeff in constraint.c:
            c_at[position[index]] = (c_at[position[index]] + coeff * lj) % p
    return a_at, b_at, c_at


def witness_polynomial_evals(
    cs: ConstraintSystem, domain: Domain
) -> Tuple[List[int], List[int], List[int]]:
    """Evaluations of ``A_w, B_w, C_w`` over H (one value per constraint row)."""
    assignment = cs.assignment()
    a_evals = [0] * domain.size
    b_evals = [0] * domain.size
    c_evals = [0] * domain.size
    for j, constraint in enumerate(cs.constraints):
        a_evals[j] = constraint.a.evaluate(assignment)
        b_evals[j] = constraint.b.evaluate(assignment)
        c_evals[j] = constraint.c.evaluate(assignment)
    return a_evals, b_evals, c_evals


def quotient_coefficients(
    cs: ConstraintSystem, domain: Domain
) -> List[int]:
    """Coefficients of ``h(x) = (A_w(x) B_w(x) - C_w(x)) / Z(x)``.

    Standard coset trick: interpolate A_w/B_w/C_w from their H-evaluations,
    re-evaluate on the coset ``g*H`` where Z is the nonzero constant
    ``g^d - 1``, divide pointwise, and interpolate back.  Raises if the
    witness does not satisfy the R1CS (remainder nonzero).
    """
    p = domain.field.modulus
    a_evals, b_evals, c_evals = witness_polynomial_evals(cs, domain)
    a_coeffs = domain.intt(a_evals)
    b_coeffs = domain.intt(b_evals)
    c_coeffs = domain.intt(c_evals)
    a_coset = domain.coset_ntt(a_coeffs)
    b_coset = domain.coset_ntt(b_coeffs)
    c_coset = domain.coset_ntt(c_coeffs)
    z_inv = pow(domain.coset_vanishing_constant(), -1, p)
    h_coset = [
        ((a * b - c) % p) * z_inv % p
        for a, b, c in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = domain.coset_intt(h_coset)
    # deg(h) <= d - 2: the top coefficient must vanish for a valid witness.
    if h_coeffs[-1] != 0:
        raise ValueError("witness does not satisfy the constraint system")
    return h_coeffs[:-1]
