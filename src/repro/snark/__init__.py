"""Groth16-style zkSNARK — the "security computation" phase (§2.1).

Implements the full pipeline on top of :mod:`repro.r1cs` and a pluggable
:class:`~repro.ec.backend.GroupBackend`:

* :mod:`repro.snark.qap` — radix-2 NTT over BN254 Fr, evaluation domains,
  QAP instantiation and quotient-polynomial computation;
* :mod:`repro.snark.groth16` — trusted setup, prove, verify;
* :mod:`repro.snark.backends` — named security-computation profiles
  (``arkworks``/``zeno``/``bellman``/``ginger``) used by Fig. 15.
"""

from repro.snark.groth16 import Groth16, batch_verify, setup, prove, verify
from repro.snark.keys import ProvingKey, VerifyingKey
from repro.snark.proof import Proof
from repro.snark.qap import Domain
from repro.snark.backends import SECURITY_BACKENDS, SecurityBackendProfile

__all__ = [
    "Groth16",
    "batch_verify",
    "setup",
    "prove",
    "verify",
    "ProvingKey",
    "VerifyingKey",
    "Proof",
    "Domain",
    "SECURITY_BACKENDS",
    "SecurityBackendProfile",
]
