"""Named security-computation profiles for cross-framework comparison.

Fig. 15 of the paper compares ZENO's security computation against Bellman
[62] and Ginger [33].  Those are closed Rust codebases we cannot run here,
so — per the substitution rule in DESIGN.md — we model each framework as a
:class:`SecurityBackendProfile`: the same Groth16 algebra on the simulated
group, differing in

* ``msm_style``    — Bellman/Ginger-era code uses chunked double-and-add
  ("naive") MSMs, while arkworks/ZENO use bucketed Pippenger; this is the
  dominant measured gap between the frameworks;
* ``op_overhead``  — a per-group-op multiplier capturing allocation and
  representation overheads reported for these codebases.

The *constraint systems fed in* also differ, exactly as in the paper's
methodology ("we manually port compiled constraints from ZENO into Bellman
and Ginger"): ZENO proves its knit-encoded systems, the baselines prove the
naively encoded ones.  Most of Fig. 15's gap comes from that input-size
difference, which is fully real in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass(frozen=True)
class SecurityBackendProfile:
    """Cost profile of one zkSNARK framework's security computation."""

    name: str
    msm_style: str  # "pippenger" | "naive"
    op_overhead: float  # multiplier on per-group-op cost

    def msm_group_adds(self, n: int, bits: int = 254) -> float:
        """Group additions a size-``n`` MSM costs under this profile."""
        if n <= 0:
            return 0.0
        if self.msm_style == "pippenger":
            window = max(2, min(16, n.bit_length() - 2))
            adds = (bits / window) * (n + 2**window)
        else:
            # double-and-add: ~bits doublings shared + bits/2 adds per term
            adds = bits * 1.5 * n
        return adds * self.op_overhead

    # Phase weights calibrated so modeled phase proportions match the
    # paper's measurements: §4.2 states security-computation latency "is
    # proportional to the number of constraints" (the R1CS->QAP reduction,
    # the FFTs, and the quotient MSM all scale with the domain), while the
    # witness MSMs parallelize across the prover's cores and contribute the
    # smaller share.  Fig. 13's knit speedups are the observable these
    # weights are validated against (see EXPERIMENTS.md).
    CONSTRAINT_WEIGHT = 5.0
    WITNESS_WEIGHT = 0.5

    def security_cost(
        self, num_variables: int, num_constraints: int
    ) -> float:
        """Modeled security-computation cost (in G1-addition units)."""
        witness = self.msm_group_adds(num_variables)
        quotient = self.msm_group_adds(max(num_constraints, 1))
        return witness * self.WITNESS_WEIGHT + quotient * self.CONSTRAINT_WEIGHT


SECURITY_BACKENDS = {
    "zeno": SecurityBackendProfile("zeno", "pippenger", 1.0),
    # Arkworks is ZENO's host framework: same MSM, same per-op cost.
    "arkworks": SecurityBackendProfile("arkworks", "pippenger", 1.0),
    # Bellman: per-op overhead measured ~1.15x arkworks in public zk bench
    # suites of the era; chunked non-bucketed MSM.
    "bellman": SecurityBackendProfile("bellman", "naive", 1.15),
    # Ginger: forked older zexe codebase, slightly heavier field backend.
    "ginger": SecurityBackendProfile("ginger", "naive", 1.45),
}
