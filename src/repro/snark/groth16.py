"""Groth16 setup / prove / verify over a pluggable group backend.

This is the textbook Groth16 [30 in the paper: Groth, EUROCRYPT'16]
construction:

* **setup** samples toxic waste ``(tau, alpha, beta, gamma, delta)``,
  evaluates the QAP polynomials at ``tau`` and publishes everything in the
  exponent.  (A production deployment replaces this with an MPC ceremony;
  evaluating at a known ``tau`` is the standard shortcut every reference
  implementation takes and changes nothing downstream.)
* **prove** costs three witness-sized MSMs plus one quotient-sized MSM —
  this is the paper's claim that security-computation latency is
  proportional to the number of private values ``n`` and constraints ``m``.
* **verify** is one product of four pairings.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ec.backend import GroupBackend, SimulatedBackend
from repro.r1cs.system import ConstraintSystem
from repro.snark.keys import (
    ProvingKey,
    ProvingKeyTables,
    SetupResult,
    VerifyingKey,
)
from repro.snark.proof import Proof
from repro.snark.qap import (
    Domain,
    qap_evaluations_at,
    quotient_coefficients,
    witness_polynomial_evals,
)


def setup(
    cs: ConstraintSystem,
    backend: Optional[GroupBackend] = None,
    rng: Optional[random.Random] = None,
    store=None,
    chunk_bytes: Optional[int] = None,
) -> SetupResult:
    """Run the (simulated-ceremony) trusted setup for ``cs``.

    With ``store`` (a :class:`repro.serve.ArtifactStore`), the five query
    vectors are emitted as content-addressed chunks of ``chunk_bytes``
    (default ``ZENO_MSM_CHUNK_BYTES`` or 1 MiB) instead of in-memory
    lists: the returned proving key holds lazy
    :class:`~repro.snark.chunked.ChunkedQuery` views, the manifest key
    lands in ``stats["pk_manifest_key"]``, and proving streams one chunk
    at a time — proofs are byte-identical to the dense-key path.
    """
    backend = backend or SimulatedBackend()
    rng = rng or random.Random(0x5E70)  # deterministic by default: reproducibility
    field = backend.scalar_field
    p = field.modulus

    tau = rng.randrange(1, p)
    alpha = rng.randrange(1, p)
    beta = rng.randrange(1, p)
    gamma = rng.randrange(1, p)
    delta = rng.randrange(1, p)
    gamma_inv = pow(gamma, -1, p)
    delta_inv = pow(delta, -1, p)

    domain = Domain.for_size(max(cs.num_constraints, 2), field)
    # Re-draw tau in the (probability ~d/p) event it hits the domain.
    while domain.vanishing_at(tau) == 0:
        tau = rng.randrange(1, p)

    a_at, b_at, c_at = qap_evaluations_at(cs, domain, tau)
    num_vars = len(a_at)
    num_instance = 1 + cs.num_public  # ONE + publics

    g1 = backend.g1_generator()
    g2 = backend.g2_generator()

    if store is not None:
        from repro.snark.chunked import ChunkWriter, chunk_bytes_from_env

        sim = backend.name == "simulated"
        kind1 = "sim" if sim else "g1"
        kind2 = "sim" if sim else "g2"
        size = chunk_bytes or chunk_bytes_from_env()
        writers = {
            "a": ChunkWriter(store, kind1, size),
            "b1": ChunkWriter(store, kind1, size),
            "b2": ChunkWriter(store, kind2, size),
            "l": ChunkWriter(store, kind1, size),
            "h": ChunkWriter(store, kind1, size),
        }

        def emit_query(writer, values):
            for v in values:
                writer.append(backend.scalar_mul(g1, v))
            return writer.finish()
    else:
        writers = None

    if writers is not None:
        a_query = emit_query(writers["a"], a_at)
        b_query_g1 = emit_query(writers["b1"], b_at)
        for v in b_at:
            writers["b2"].append(backend.scalar_mul(g2, v))
        b_query_g2 = writers["b2"].finish()
    else:
        a_query = [backend.scalar_mul(g1, v) for v in a_at]
        b_query_g1 = [backend.scalar_mul(g1, v) for v in b_at]
        b_query_g2 = [backend.scalar_mul(g2, v) for v in b_at]

    ic: List = []
    l_query: List = []
    for i in range(num_vars):
        combined = (beta * a_at[i] + alpha * b_at[i] + c_at[i]) % p
        if i < num_instance:
            ic.append(backend.scalar_mul(g1, (combined * gamma_inv) % p))
        elif writers is not None:
            writers["l"].append(
                backend.scalar_mul(g1, (combined * delta_inv) % p)
            )
        else:
            l_query.append(backend.scalar_mul(g1, (combined * delta_inv) % p))
    if writers is not None:
        l_query = writers["l"].finish()

    z_tau = domain.vanishing_at(tau)
    h_query: List = []
    power = 1
    for _ in range(domain.size - 1):
        point = backend.scalar_mul(g1, (power * z_tau % p) * delta_inv % p)
        if writers is not None:
            writers["h"].append(point)
        else:
            h_query.append(point)
        power = (power * tau) % p
    if writers is not None:
        h_query = writers["h"].finish()

    pk = ProvingKey(
        alpha_g1=backend.scalar_mul(g1, alpha),
        beta_g1=backend.scalar_mul(g1, beta),
        beta_g2=backend.scalar_mul(g2, beta),
        delta_g1=backend.scalar_mul(g1, delta),
        delta_g2=backend.scalar_mul(g2, delta),
        a_query_g1=a_query,
        b_query_g1=b_query_g1,
        b_query_g2=b_query_g2,
        l_query_g1=l_query,
        h_query_g1=h_query,
        domain_size=domain.size,
        num_public=cs.num_public,
    )
    vk = VerifyingKey(
        alpha_g1=pk.alpha_g1,
        beta_g2=pk.beta_g2,
        gamma_g2=backend.scalar_mul(g2, gamma),
        delta_g2=pk.delta_g2,
        ic_g1=ic,
        backend_name=backend.name,
    )
    stats = {
        "num_constraints": cs.num_constraints,
        "num_variables": num_vars,
        "domain_size": domain.size,
        "num_public": cs.num_public,
    }
    if store is not None:
        from repro.snark.chunked import put_manifest

        stats["pk_chunks"] = sum(
            len(q.keys)
            for q in (a_query, b_query_g1, b_query_g2, l_query, h_query)
        )
        stats["pk_manifest_key"] = put_manifest(store, pk, stats=dict(stats))
    return SetupResult(proving_key=pk, verifying_key=vk, stats=stats)


def prove(
    pk: ProvingKey,
    cs: ConstraintSystem,
    backend: Optional[GroupBackend] = None,
    rng: Optional[random.Random] = None,
    tables: Optional["ProvingKeyTables"] = None,
    parallelism: Optional[int] = None,
    schedule=None,
    phase_sink: Optional[Dict[str, float]] = None,
) -> Proof:
    """Generate a proof for the (fully assigned) constraint system.

    ``tables`` (from :func:`repro.snark.keys.precompute_proving_tables`)
    routes the four proving MSMs through fixed-base precomputation — the
    serving path, where one CRS is queried by many proofs.  ``parallelism``
    drives the whole engine: executor-parallel witness-row evaluation over
    the CSR snapshot (partitioned per ``schedule`` when given), worker
    dispatch of the QAP coset-NTT chains, and the chunked-MSM knob on
    :meth:`GroupBackend.msm`.  ``phase_sink``, if given, receives wall
    seconds per prover phase (``witness`` / ``quotient`` / ``msm``) —
    accumulated, so the serve telemetry can hand the same dict to every
    proof in a batch.
    """
    backend = backend or SimulatedBackend()
    rng = rng or random.Random()
    field = backend.scalar_field
    p = field.modulus

    def query_msm(points, scalars, table):
        if table is not None:
            return table.msm(scalars)
        return backend.msm(points, scalars, parallelism=parallelism)

    def tick(phase: str, since: float) -> float:
        now = time.perf_counter()
        if phase_sink is not None:
            phase_sink[phase] = phase_sink.get(phase, 0.0) + (now - since)
        return now

    began = time.perf_counter()
    # The CSR snapshot's dense z vector *is* the Groth16 variable order
    # [ONE, publics..., privates...] (see repro.r1cs.csr).
    csr = cs.to_csr()
    z = csr.z
    if len(z) != pk.num_variables():
        raise ValueError(
            f"witness has {len(z)} variables but key expects "
            f"{pk.num_variables()} — was the system modified after setup?"
        )

    domain = Domain.for_size(max(cs.num_constraints, 2), field)
    if domain.size != pk.domain_size:
        raise ValueError("constraint count changed since setup")
    evals = witness_polynomial_evals(
        cs, domain, csr=csr, parallelism=parallelism, schedule=schedule
    )
    began = tick("witness", began)
    h_coeffs = quotient_coefficients(
        cs, domain, csr=csr, parallelism=parallelism, evals=evals
    )
    began = tick("quotient", began)

    r = rng.randrange(p)
    s = rng.randrange(p)

    # A = alpha + sum z_i A_i(tau) + r * delta        (in G1)
    a_acc = query_msm(pk.a_query_g1, z, tables.a_query_g1 if tables else None)
    proof_a = backend.add(
        backend.add(pk.alpha_g1, a_acc), backend.scalar_mul(pk.delta_g1, r)
    )

    # B = beta + sum z_i B_i(tau) + s * delta         (in G2, mirrored in G1)
    b_acc_g2 = query_msm(
        pk.b_query_g2, z, tables.b_query_g2 if tables else None
    )
    proof_b = backend.add(
        backend.add(pk.beta_g2, b_acc_g2), backend.scalar_mul(pk.delta_g2, s)
    )
    b_acc_g1 = query_msm(
        pk.b_query_g1, z, tables.b_query_g1 if tables else None
    )
    b_g1 = backend.add(
        backend.add(pk.beta_g1, b_acc_g1), backend.scalar_mul(pk.delta_g1, s)
    )

    # C = sum_priv z_i L_i + sum h_k [tau^k Z/delta] + s*A + r*B1 - rs*delta
    # (empty MSMs — no private variables, an all-zero quotient — return the
    # identity, so no call-site guards are needed.)
    num_instance = 1 + pk.num_public
    private_z = z[num_instance:]
    c_acc = query_msm(
        pk.l_query_g1, private_z, tables.l_query_g1 if tables else None
    )
    h_acc = query_msm(
        pk.h_query_g1[: len(h_coeffs)],
        h_coeffs,
        tables.h_query_g1 if tables else None,
    )
    c_acc = backend.add(c_acc, h_acc)
    c_acc = backend.add(c_acc, backend.scalar_mul(proof_a, s))
    c_acc = backend.add(c_acc, backend.scalar_mul(b_g1, r))
    c_acc = backend.sub(c_acc, backend.scalar_mul(pk.delta_g1, (r * s) % p))
    tick("msm", began)

    return Proof(a=proof_a, b=proof_b, c=c_acc)


def verify(
    vk: VerifyingKey,
    public_inputs: Sequence[int],
    proof: Proof,
    backend: Optional[GroupBackend] = None,
) -> bool:
    """Check ``e(A,B) == e(alpha,beta) * e(IC(pub),gamma) * e(C,delta)``."""
    backend = backend or SimulatedBackend()
    if len(public_inputs) != vk.num_public:
        raise ValueError(
            f"expected {vk.num_public} public inputs, got {len(public_inputs)}"
        )
    # The empty MSM (zero public inputs) is the identity, so this needs no
    # guard — a no-public-input circuit verifies like any other.
    acc = backend.add(
        vk.ic_g1[0], backend.msm(vk.ic_g1[1:], [v for v in public_inputs])
    )
    return backend.pairing_product_is_one(
        [
            (backend.neg(proof.a), proof.b),
            (vk.alpha_g1, vk.beta_g2),
            (acc, vk.gamma_g2),
            (proof.c, vk.delta_g2),
        ]
    )


_FS_DOMAIN = b"zeno.groth16.batch-verify.v1"


def _fs_transcript(
    groups: Sequence[Tuple[VerifyingKey, Sequence[Tuple[Sequence[int], Proof]]]],
) -> bytes:
    """Canonical transcript bytes binding every key, claim, and proof.

    Built from the library's canonical serializations, so any byte that
    matters to verification (VK elements, public inputs, proof points)
    perturbs every derived coefficient.
    """
    from repro.snark.serialize import (
        serialize_proof,
        serialize_verifying_key,
    )

    h = hashlib.sha256(_FS_DOMAIN)
    h.update(len(groups).to_bytes(4, "big"))
    for vk, claims in groups:
        vk_bytes = serialize_verifying_key(vk)
        h.update(len(vk_bytes).to_bytes(4, "big"))
        h.update(vk_bytes)
        h.update(len(claims).to_bytes(4, "big"))
        for public_inputs, proof in claims:
            h.update(len(public_inputs).to_bytes(4, "big"))
            for value in public_inputs:
                h.update(int(value).to_bytes(32, "big"))
            h.update(serialize_proof(proof))
    return h.digest()


def _fs_coefficients(seed: bytes, count: int, modulus: int) -> List[int]:
    """``count`` Fiat–Shamir scalars in ``[1, modulus)`` from ``seed``."""
    out: List[int] = []
    counter = 0
    while len(out) < count:
        digest = hashlib.sha256(
            seed + counter.to_bytes(8, "big")
        ).digest()
        out.append(int.from_bytes(digest, "big") % (modulus - 1) + 1)
        counter += 1
    return out


def batch_verify_multi(
    groups: Sequence[Tuple[VerifyingKey, Sequence[Tuple[Sequence[int], Proof]]]],
    backend: Optional[GroupBackend] = None,
    rng: Optional[random.Random] = None,
) -> bool:
    """Verify proofs under several keys with one multi-pairing check.

    Each group is ``(vk, claims)``; per-proof cost is one pairing
    (``e(t_i A_i, B_i)``) and each *key* adds three shared pairings, so
    ``k`` proofs spread over ``v`` keys cost ``k + 3v`` pairings instead
    of ``4k`` — the aggregation primitive behind
    :mod:`repro.aggregate`'s single-artifact verification.

    Coefficients ``t_i`` are Fiat–Shamir-derived from the canonical bytes
    of every key, public-input vector, and proof in the batch (so the
    check is deterministic and replayable, and any flipped byte re-keys
    the whole combination); pass ``rng`` to sample them instead.
    """
    backend = backend or SimulatedBackend()
    total = sum(len(claims) for _, claims in groups)
    if total == 0:
        return True
    p = backend.scalar_field.modulus
    if rng is not None:
        coefficients = [rng.randrange(1, p) for _ in range(total)]
    else:
        coefficients = _fs_coefficients(_fs_transcript(groups), total, p)
    pairs = []
    shared = []
    cursor = 0
    for vk, claims in groups:
        if not claims:
            continue
        t_sum = 0
        acc_sum = backend.g1_zero()
        c_sum = backend.g1_zero()
        for public_inputs, proof in claims:
            if len(public_inputs) != vk.num_public:
                raise ValueError(
                    f"expected {vk.num_public} public inputs, "
                    f"got {len(public_inputs)}"
                )
            t = coefficients[cursor]
            cursor += 1
            t_sum = (t_sum + t) % p
            # e(-t*A, B) term — per-proof pairing.
            pairs.append(
                (backend.scalar_mul(backend.neg(proof.a), t), proof.b)
            )
            # Accumulate the per-key shared right-hand sides, scaled by t.
            acc = backend.add(
                vk.ic_g1[0], backend.msm(vk.ic_g1[1:], list(public_inputs))
            )
            acc_sum = backend.add(acc_sum, backend.scalar_mul(acc, t))
            c_sum = backend.add(c_sum, backend.scalar_mul(proof.c, t))
        shared.append((backend.scalar_mul(vk.alpha_g1, t_sum), vk.beta_g2))
        shared.append((acc_sum, vk.gamma_g2))
        shared.append((c_sum, vk.delta_g2))
    return backend.pairing_product_is_one(pairs + shared)


def batch_verify(
    vk: VerifyingKey,
    claims: Sequence[Tuple[Sequence[int], Proof]],
    backend: Optional[GroupBackend] = None,
    rng: Optional[random.Random] = None,
) -> bool:
    """Verify many proofs under one key with a random linear combination.

    The standard Groth16 batching trick (an extension beyond the paper —
    natural for its n=100 batch workload, Fig. 14): scale each proof's
    pairing equation by a coefficient ``t_i`` and check the *sum* of
    equations.  Per proof this costs one pairing (``e(t_i A_i, B_i)``)
    plus scalar muls, and the three right-hand pairings are shared across
    the whole batch — ``k + 3`` pairings instead of ``4k``.

    The ``t_i`` default to Fiat–Shamir derivation from the canonical
    VK/public-input/proof bytes (deterministic: two runs over the same
    claims agree bit-for-bit, so batch decisions are replayable); pass an
    explicit ``rng`` to sample them instead.  Either way a batch
    containing any invalid proof passes only if the coefficients hit a
    cancellation — probability ``~k/r`` for sampled ``t_i``, and
    infeasible-to-target for hash-derived ones (the proof bytes are
    committed before the coefficients exist).
    """
    return batch_verify_multi([(vk, claims)], backend, rng=rng)


class Groth16:
    """Object-style façade bundling a backend with setup/prove/verify."""

    def __init__(self, backend: Optional[GroupBackend] = None) -> None:
        self.backend = backend or SimulatedBackend()

    def setup(self, cs: ConstraintSystem, rng=None) -> SetupResult:
        return setup(cs, self.backend, rng)

    def prove(
        self,
        pk: ProvingKey,
        cs: ConstraintSystem,
        rng=None,
        tables: Optional[ProvingKeyTables] = None,
        parallelism: Optional[int] = None,
        schedule=None,
        phase_sink: Optional[Dict[str, float]] = None,
    ) -> Proof:
        return prove(
            pk,
            cs,
            self.backend,
            rng,
            tables=tables,
            parallelism=parallelism,
            schedule=schedule,
            phase_sink=phase_sink,
        )

    def verify(self, vk: VerifyingKey, public_inputs, proof: Proof) -> bool:
        return verify(vk, public_inputs, proof, self.backend)
