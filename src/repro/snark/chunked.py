"""Content-addressed chunked proving keys with lazy, streaming views.

A full-scale CRS no longer fits comfortably in one process image: the five
Groth16 query vectors grow with the witness/domain size, and the dense
``ProvingKey`` materializes all of them.  This module stores each query as
a sequence of fixed-size *chunks* pushed through the serve
:class:`~repro.serve.store.ArtifactStore` (content-addressed, so identical
chunks — e.g. runs of identity points — dedupe for free), plus one small
JSON *manifest* binding the chunk keys together.

:class:`ChunkedQuery` is the lazy read view: a ``Sequence`` of group
points that decodes at most one chunk at a time.  The MSM engines iterate
it via :meth:`ChunkedQuery.iter_chunks`, so the prover's peak working set
is one chunk (``ZENO_MSM_CHUNK_BYTES``) instead of the whole query — and
since MSM is linear in the points, per-chunk partial sums combine to the
exact same group element the one-shot engines produce: proofs from a
chunked key are byte-identical to proofs from a dense key.

Chunk blob layout: ``kind_byte || u32(count) || count fixed-size point
encodings`` (the canonical encodings of :mod:`repro.snark.serialize`).
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.snark.serialize import (
    SerializationError,
    deserialize_g1,
    deserialize_g2,
    deserialize_sim,
    serialize_g1,
    serialize_g2,
    serialize_sim,
)

#: Working-set knob: target chunk size in bytes for CRS chunks and the
#: streamed MSM/CSR paths.  Read dynamically so tests and the CLI's
#: ``--max-rss`` can adjust it per run.
CHUNK_BYTES_ENV = "ZENO_MSM_CHUNK_BYTES"
DEFAULT_CHUNK_BYTES = 1 << 20

#: Artifact-store kind tag for proving-key chunks.
CHUNK_KIND = "pkc"
MANIFEST_KIND = "pkm"

_KIND_SIM = 0x01
_KIND_G1 = 0x02
_KIND_G2 = 0x03

# kind name -> (tag byte, encoded point size, encoder, decoder)
_KINDS = {
    "sim": (_KIND_SIM, 33, serialize_sim, deserialize_sim),
    "g1": (_KIND_G1, 33, serialize_g1, deserialize_g1),
    "g2": (_KIND_G2, 65, serialize_g2, deserialize_g2),
}


def chunk_bytes_from_env(default: int = DEFAULT_CHUNK_BYTES) -> int:
    """The configured chunk size (``ZENO_MSM_CHUNK_BYTES``), or ``default``."""
    raw = os.environ.get(CHUNK_BYTES_ENV)
    if not raw:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"{CHUNK_BYTES_ENV} must be positive, got {value}")
    return value


def encode_chunk(kind: str, points: Sequence) -> bytes:
    tag, _, enc, _ = _KINDS[kind]
    parts = [bytes([tag]), len(points).to_bytes(4, "big")]
    parts.extend(enc(p) for p in points)
    return b"".join(parts)


def decode_chunk(data: bytes) -> Tuple[str, List]:
    if len(data) < 5:
        raise SerializationError("proving-key chunk too short")
    tag = data[0]
    for kind, (t, size, _, dec) in _KINDS.items():
        if t == tag:
            count = int.from_bytes(data[1:5], "big")
            if len(data) != 5 + count * size:
                raise SerializationError(
                    f"proving-key chunk length mismatch: "
                    f"{len(data)} != {5 + count * size}"
                )
            return kind, [
                dec(data[5 + i * size : 5 + (i + 1) * size])
                for i in range(count)
            ]
    raise SerializationError(f"unknown proving-key chunk kind {tag:#x}")


class ChunkedQuery(Sequence):
    """Lazy Sequence of group points backed by store chunks.

    Random access (``query[i]``) decodes the owning chunk through a tiny
    LRU (two chunks), so scans stay O(1) in memory; ``iter_chunks()`` is
    the bulk path the MSM engines use.  Prefix slices (``query[:n]``)
    return a trimmed view without decoding anything — the shape
    ``prove()`` needs for ``h_query_g1[: len(h_coeffs)]``.
    """

    _CACHE_CHUNKS = 2

    def __init__(
        self,
        store,
        kind: str,
        keys: List[str],
        counts: List[int],
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown chunk kind {kind!r}")
        if len(keys) != len(counts):
            raise ValueError("chunk keys/counts length mismatch")
        self.store = store
        self.kind = kind
        self.keys = list(keys)
        self.counts = list(counts)
        self.offsets: List[int] = []
        total = 0
        for c in self.counts:
            self.offsets.append(total)
            total += c
        self.total = total
        self._cache: "OrderedDict[int, List]" = OrderedDict()

    def __len__(self) -> int:
        return self.total

    def _chunk(self, index: int) -> List:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        kind, points = decode_chunk(self.store.get(self.keys[index]))
        if kind != self.kind or len(points) != self.counts[index]:
            raise SerializationError(
                f"chunk {self.keys[index]} does not match its manifest entry"
            )
        self._cache[index] = points
        while len(self._cache) > self._CACHE_CHUNKS:
            self._cache.popitem(last=False)
        return points

    def iter_chunks(self) -> Iterator[Tuple[int, List]]:
        """Yield ``(offset, points)`` one decoded chunk at a time."""
        for index in range(len(self.keys)):
            yield self.offsets[index], self._chunk(index)

    def __iter__(self):
        for _, points in self.iter_chunks():
            yield from points

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.total)
            if start == 0 and step == 1:
                return _PrefixView(self, stop)
            raise TypeError(
                "ChunkedQuery supports only prefix slices ([:n]); "
                f"got [{index.start}:{index.stop}:{index.step}]"
            )
        if index < 0:
            index += self.total
        if not 0 <= index < self.total:
            raise IndexError(index)
        ci = bisect_right(self.offsets, index) - 1
        return self._chunk(ci)[index - self.offsets[ci]]


class _PrefixView(Sequence):
    """``query[:stop]`` without decoding: trims the last covered chunk."""

    def __init__(self, base: ChunkedQuery, stop: int) -> None:
        self.base = base
        self.stop = stop
        self.kind = base.kind

    def __len__(self) -> int:
        return self.stop

    def iter_chunks(self) -> Iterator[Tuple[int, List]]:
        for offset, points in self.base.iter_chunks():
            if offset >= self.stop:
                return
            if offset + len(points) > self.stop:
                yield offset, points[: self.stop - offset]
                return
            yield offset, points

    def __iter__(self):
        for _, points in self.iter_chunks():
            yield from points

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.stop)
            if start == 0 and step == 1:
                return _PrefixView(self.base, stop)
            raise TypeError("ChunkedQuery supports only prefix slices ([:n])")
        if index < 0:
            index += self.stop
        if not 0 <= index < self.stop:
            raise IndexError(index)
        return self.base[index]


class ChunkWriter:
    """Accumulates point encodings, flushing ~``chunk_bytes`` blobs."""

    def __init__(self, store, kind: str, chunk_bytes: int) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown chunk kind {kind!r}")
        self.store = store
        self.kind = kind
        _, self.point_size, self.encode, _ = _KINDS[kind]
        self.points_per_chunk = max(1, chunk_bytes // self.point_size)
        self.keys: List[str] = []
        self.counts: List[int] = []
        self._buffer: List[bytes] = []

    def append(self, point) -> None:
        self._buffer.append(self.encode(point))
        if len(self._buffer) >= self.points_per_chunk:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        tag, _, _, _ = _KINDS[self.kind]
        blob = b"".join(
            [bytes([tag]), len(self._buffer).to_bytes(4, "big")] + self._buffer
        )
        self.keys.append(self.store.put(CHUNK_KIND, blob))
        self.counts.append(len(self._buffer))
        self._buffer = []

    def finish(self) -> ChunkedQuery:
        self._flush()
        return ChunkedQuery(self.store, self.kind, self.keys, self.counts)


# -- manifest ---------------------------------------------------------------------


def put_manifest(store, pk, stats: Optional[dict] = None) -> str:
    """Store the manifest binding a chunked proving key's chunks; returns its key.

    Every query field of ``pk`` must be a :class:`ChunkedQuery` (the shape
    :func:`repro.snark.groth16.setup` produces when given a store).
    """
    sim = pk.a_query_g1.kind == "sim" if isinstance(
        pk.a_query_g1, ChunkedQuery
    ) else None
    if sim is None:
        raise TypeError("put_manifest needs a chunked proving key")
    enc1 = serialize_sim if sim else serialize_g1
    enc2 = serialize_sim if sim else serialize_g2
    queries: Dict[str, dict] = {}
    for name in (
        "a_query_g1", "b_query_g1", "b_query_g2", "l_query_g1", "h_query_g1"
    ):
        query = getattr(pk, name)
        if not isinstance(query, ChunkedQuery):
            raise TypeError(f"proving-key query {name} is not chunked")
        queries[name] = {
            "kind": query.kind,
            "total": query.total,
            "counts": query.counts,
            "keys": query.keys,
        }
    manifest = {
        "format": "chunked-pk-v1",
        "domain_size": pk.domain_size,
        "num_public": pk.num_public,
        "alpha_g1": enc1(pk.alpha_g1).hex(),
        "beta_g1": enc1(pk.beta_g1).hex(),
        "beta_g2": enc2(pk.beta_g2).hex(),
        "delta_g1": enc1(pk.delta_g1).hex(),
        "delta_g2": enc2(pk.delta_g2).hex(),
        "sim": sim,
        "queries": queries,
        "stats": stats or {},
    }
    return store.put(MANIFEST_KIND, json.dumps(manifest).encode("utf-8"))


def load_chunked_proving_key(store, manifest_key: str):
    """Rebuild a lazy ProvingKey from its manifest; chunks stay on disk."""
    from repro.snark.keys import ProvingKey

    manifest = json.loads(store.get(manifest_key).decode("utf-8"))
    if manifest.get("format") != "chunked-pk-v1":
        raise SerializationError(
            f"unknown chunked proving-key format {manifest.get('format')!r}"
        )
    sim = manifest["sim"]
    dec1 = deserialize_sim if sim else deserialize_g1
    dec2 = deserialize_sim if sim else deserialize_g2

    def query(name: str) -> ChunkedQuery:
        q = manifest["queries"][name]
        return ChunkedQuery(store, q["kind"], q["keys"], q["counts"])

    return ProvingKey(
        alpha_g1=dec1(bytes.fromhex(manifest["alpha_g1"])),
        beta_g1=dec1(bytes.fromhex(manifest["beta_g1"])),
        beta_g2=dec2(bytes.fromhex(manifest["beta_g2"])),
        delta_g1=dec1(bytes.fromhex(manifest["delta_g1"])),
        delta_g2=dec2(bytes.fromhex(manifest["delta_g2"])),
        a_query_g1=query("a_query_g1"),
        b_query_g1=query("b_query_g1"),
        b_query_g2=query("b_query_g2"),
        l_query_g1=query("l_query_g1"),
        h_query_g1=query("h_query_g1"),
        domain_size=manifest["domain_size"],
        num_public=manifest["num_public"],
    )
