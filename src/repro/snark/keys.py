"""Proving and verifying key containers for Groth16."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

GroupElement = Any


@dataclass
class ProvingKey:
    """CRS elements the prover consumes.

    Element lists are in QAP variable order ``[ONE, publics..., privates...]``
    (see :func:`repro.snark.qap.variable_order`).
    """

    alpha_g1: GroupElement
    beta_g1: GroupElement
    beta_g2: GroupElement
    delta_g1: GroupElement
    delta_g2: GroupElement
    a_query_g1: List[GroupElement]  # [A_i(tau)]_1 for every variable
    b_query_g1: List[GroupElement]  # [B_i(tau)]_1 for every variable
    b_query_g2: List[GroupElement]  # [B_i(tau)]_2 for every variable
    l_query_g1: List[GroupElement]  # [(beta A_i + alpha B_i + C_i)/delta]_1, private vars
    h_query_g1: List[GroupElement]  # [tau^k Z(tau)/delta]_1, k in 0..d-2
    domain_size: int
    num_public: int = 0

    def num_variables(self) -> int:
        return len(self.a_query_g1)


@dataclass
class VerifyingKey:
    """CRS elements the verifier consumes."""

    alpha_g1: GroupElement
    beta_g2: GroupElement
    gamma_g2: GroupElement
    delta_g2: GroupElement
    ic_g1: List[GroupElement]  # [(beta A_i + alpha B_i + C_i)/gamma]_1, ONE + publics
    backend_name: str = ""

    @property
    def num_public(self) -> int:
        return len(self.ic_g1) - 1


@dataclass
class SetupResult:
    proving_key: ProvingKey
    verifying_key: VerifyingKey
    # Sizes recorded for the cost model / EXPERIMENTS.md bookkeeping.
    stats: dict = field(default_factory=dict)


@dataclass
class ProvingKeyTables:
    """Fixed-base MSM tables over every CRS query vector of a proving key.

    Built once per (key, backend) via :func:`precompute_proving_tables` and
    reused across every proof in a serving session — each entry exposes
    ``msm(scalars)`` plus a ``uses`` counter (see
    :meth:`repro.ec.backend.GroupBackend.precompute_msm`).
    """

    a_query_g1: Any
    b_query_g1: Any
    b_query_g2: Any
    l_query_g1: Any
    h_query_g1: Any

    def uses(self) -> int:
        """Total table queries served (telemetry: proof = 5 table MSMs)."""
        return (
            self.a_query_g1.uses
            + self.b_query_g1.uses
            + self.b_query_g2.uses
            + self.l_query_g1.uses
            + self.h_query_g1.uses
        )


def precompute_proving_tables(pk: ProvingKey, backend) -> ProvingKeyTables:
    """Precompute fixed-base tables for all five CRS query vectors."""
    g1_zero = backend.g1_zero()
    g2_zero = backend.g2_zero()
    return ProvingKeyTables(
        a_query_g1=backend.precompute_msm(pk.a_query_g1, zero=g1_zero),
        b_query_g1=backend.precompute_msm(pk.b_query_g1, zero=g1_zero),
        b_query_g2=backend.precompute_msm(pk.b_query_g2, zero=g2_zero),
        l_query_g1=backend.precompute_msm(pk.l_query_g1, zero=g1_zero),
        h_query_g1=backend.precompute_msm(pk.h_query_g1, zero=g1_zero),
    )
