"""Proof and key serialization: compressed point encodings.

A deployed verifier (the paper's door lock, the World ID server) receives
proofs over the wire, so the library ships canonical byte encodings:

* **G1** — 32-byte big-endian x-coordinate plus a flag byte (y parity /
  infinity), 33 bytes total; y is recovered as a square root of
  ``x^3 + 3`` (BN254's base prime is 3 mod 4, so ``sqrt(a) = a^((q+1)/4)``).
* **G2** — 64-byte Fq2 x-coordinate plus a flag byte, 65 bytes total; the
  Fq2 square root uses the standard two-step norm method.
* **Proof** — ``A || B || C`` = 33 + 65 + 33 = 131 bytes (the "fixed-size
  proof" of §2.1; the paper's 192-byte figure is BLS12-381's point sizes).
* **SimPoint** — tag byte plus the 32-byte exponent (simulated backend).

All encodings round-trip exactly and reject off-curve inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.ec.bn254 import BN254_G1, BN254_G2
from repro.ec.curve import Point
from repro.ec.simulated import G1_TAG, G2_TAG, GT_TAG, SimPoint
from repro.ec.tower import FQ2
from repro.field.fp import BN254_FQ, BN254_FQ_MODULUS, BN254_FR_MODULUS
from repro.snark.proof import Proof

_Q = BN254_FQ_MODULUS
_R = BN254_FR_MODULUS

FLAG_INFINITY = 0x40
FLAG_Y_ODD = 0x01

_SIM_TAGS = {G1_TAG: 0x01, G2_TAG: 0x02, GT_TAG: 0x03}
_SIM_TAGS_REV = {v: k for k, v in _SIM_TAGS.items()}


class SerializationError(ValueError):
    """Raised on malformed, off-curve, or non-canonical encodings."""


def _check_flag(flag: int, what: str) -> None:
    # Encodings are canonical: decode-success implies the re-serialized
    # bytes are identical.  Stray flag bits would survive a round trip as
    # a second encoding of the same point, so they are rejected outright.
    if flag & ~(FLAG_INFINITY | FLAG_Y_ODD):
        raise SerializationError(f"{what} flag byte has unknown bits set")
    if flag & FLAG_INFINITY and flag & FLAG_Y_ODD:
        raise SerializationError(f"{what} infinity flag with parity bit set")


# -- square roots ------------------------------------------------------------------


def sqrt_fq(a: int) -> Optional[int]:
    """Square root in Fq (q = 3 mod 4): ``a^((q+1)/4)``, or None."""
    a %= _Q
    root = pow(a, (_Q + 1) // 4, _Q)
    return root if (root * root) % _Q == a else None


def sqrt_fq2(a: FQ2) -> Optional[FQ2]:
    """Square root in Fq2 via the norm method.

    For ``a = x + y*u`` with ``u^2 = -1``: the norm ``N = x^2 + y^2`` must
    be a square in Fq; then ``c = sqrt((x + sqrt(N)) / 2)`` (trying both
    signs of sqrt(N)) gives ``sqrt(a) = c + (y / 2c) u``.
    """
    if not a:
        return FQ2.zero()
    x, y = a.coeffs
    if y == 0:
        # Purely real: either sqrt(x) exists in Fq, or sqrt(-x)*u works.
        root = sqrt_fq(x)
        if root is not None:
            return FQ2([root, 0])
        root = sqrt_fq(-x % _Q)
        if root is not None:
            return FQ2([0, root])
        return None
    norm_root = sqrt_fq((x * x + y * y) % _Q)
    if norm_root is None:
        return None
    inv2 = pow(2, -1, _Q)
    for sign in (norm_root, (-norm_root) % _Q):
        c_sq = ((x + sign) * inv2) % _Q
        c = sqrt_fq(c_sq)
        if c is None or c == 0:
            continue
        d = (y * pow(2 * c, -1, _Q)) % _Q
        candidate = FQ2([c, d])
        if candidate * candidate == a:
            return candidate
    return None


# -- G1 ---------------------------------------------------------------------------


def serialize_g1(p: Point) -> bytes:
    if p.inf:
        return bytes([FLAG_INFINITY]) + b"\x00" * 32
    flag = FLAG_Y_ODD if p.y.value & 1 else 0
    return bytes([flag]) + p.x.value.to_bytes(32, "big")


def deserialize_g1(data: bytes) -> Point:
    if len(data) != 33:
        raise SerializationError(f"G1 encoding must be 33 bytes, got {len(data)}")
    flag = data[0]
    _check_flag(flag, "G1")
    if flag & FLAG_INFINITY:
        if any(data[1:]):
            raise SerializationError("G1 infinity with nonzero coordinate")
        return BN254_G1.infinity()
    x = int.from_bytes(data[1:], "big")
    if x >= _Q:
        raise SerializationError("G1 x-coordinate out of field range")
    y = sqrt_fq((pow(x, 3, _Q) + 3) % _Q)
    if y is None:
        raise SerializationError("G1 x-coordinate not on curve")
    if (y & 1) != (flag & FLAG_Y_ODD):
        y = (-y) % _Q
    return BN254_G1.point(BN254_FQ(x), BN254_FQ(y))


# -- G2 ---------------------------------------------------------------------------


def serialize_g2(p: Point) -> bytes:
    if p.inf:
        return bytes([FLAG_INFINITY]) + b"\x00" * 64
    c0, c1 = p.y.coeffs
    parity = (c0 if c0 else c1) & 1
    flag = FLAG_Y_ODD if parity else 0
    x0, x1 = p.x.coeffs
    return bytes([flag]) + x0.to_bytes(32, "big") + x1.to_bytes(32, "big")


def deserialize_g2(data: bytes) -> Point:
    if len(data) != 65:
        raise SerializationError(f"G2 encoding must be 65 bytes, got {len(data)}")
    flag = data[0]
    _check_flag(flag, "G2")
    if flag & FLAG_INFINITY:
        if any(data[1:]):
            raise SerializationError("G2 infinity with nonzero coordinate")
        return BN254_G2.infinity()
    x0 = int.from_bytes(data[1:33], "big")
    x1 = int.from_bytes(data[33:], "big")
    if x0 >= _Q or x1 >= _Q:
        raise SerializationError("G2 x-coordinate out of field range")
    x = FQ2([x0, x1])
    y = sqrt_fq2(x * x * x + BN254_G2.b)
    if y is None:
        raise SerializationError("G2 x-coordinate not on curve")
    c0, c1 = y.coeffs
    parity = (c0 if c0 else c1) & 1
    if parity != (flag & FLAG_Y_ODD):
        y = -y
    return BN254_G2.point(x, y)


# -- simulated points ----------------------------------------------------------------


def serialize_sim(p: SimPoint) -> bytes:
    return bytes([_SIM_TAGS[p.tag]]) + p.log.to_bytes(32, "big")


def deserialize_sim(data: bytes) -> SimPoint:
    if len(data) != 33:
        raise SerializationError(f"SimPoint encoding must be 33 bytes")
    tag = _SIM_TAGS_REV.get(data[0])
    if tag is None:
        raise SerializationError(f"unknown simulated group tag {data[0]:#x}")
    log = int.from_bytes(data[1:], "big")
    if log >= _R:
        # SimPoint reduces its exponent mod r on construction, so a log
        # >= r would decode fine but re-serialize to different bytes —
        # a non-canonical second encoding of the same point.
        raise SerializationError("SimPoint exponent out of scalar-field range")
    return SimPoint(tag, log)


# -- proofs ---------------------------------------------------------------------------


def serialize_proof(proof: Proof) -> bytes:
    """``A || B || C``; dispatches on the element type."""
    if isinstance(proof.a, SimPoint):
        return (
            serialize_sim(proof.a)
            + serialize_sim(proof.b)
            + serialize_sim(proof.c)
        )
    return (
        serialize_g1(proof.a) + serialize_g2(proof.b) + serialize_g1(proof.c)
    )


def serialize_verifying_key(vk) -> bytes:
    """Canonical verifying-key encoding (real-curve backend).

    Layout: ``alpha_G1 || beta_G2 || gamma_G2 || delta_G2 || u32(len(IC))
    || IC...`` — everything the verifier needs, 196 + 33*len(IC) bytes.
    """
    if isinstance(vk.alpha_g1, SimPoint):
        parts = [
            serialize_sim(vk.alpha_g1),
            serialize_sim(vk.beta_g2),
            serialize_sim(vk.gamma_g2),
            serialize_sim(vk.delta_g2),
            len(vk.ic_g1).to_bytes(4, "big"),
        ]
        parts.extend(serialize_sim(p) for p in vk.ic_g1)
        return b"".join(parts)
    parts = [
        serialize_g1(vk.alpha_g1),
        serialize_g2(vk.beta_g2),
        serialize_g2(vk.gamma_g2),
        serialize_g2(vk.delta_g2),
        len(vk.ic_g1).to_bytes(4, "big"),
    ]
    parts.extend(serialize_g1(p) for p in vk.ic_g1)
    return b"".join(parts)


def deserialize_verifying_key(data: bytes):
    """Inverse of :func:`serialize_verifying_key` (dispatches on length)."""
    from repro.snark.keys import VerifyingKey

    sim_header = 4 * 33 + 4
    real_header = 33 + 3 * 65 + 4

    # Dispatch on exact layout consistency, not the first byte alone: a
    # real-curve alpha with an odd y serializes with flag 0x01, which
    # collides with the sim G1 tag.  The recorded IC count pins the total
    # length (136 + 33k vs 232 + 33k differ mod 33), so at most one
    # layout can match.
    def _sim_layout() -> bool:
        if len(data) < sim_header or data[0] not in _SIM_TAGS_REV:
            return False
        count = int.from_bytes(data[132:136], "big")
        return len(data) == sim_header + 33 * count

    if _sim_layout():
        alpha = deserialize_sim(data[:33])
        beta = deserialize_sim(data[33:66])
        gamma = deserialize_sim(data[66:99])
        delta = deserialize_sim(data[99:132])
        count = int.from_bytes(data[132:136], "big")
        offset = 136
        ic = []
        for _ in range(count):
            ic.append(deserialize_sim(data[offset : offset + 33]))
            offset += 33
        if offset != len(data):
            raise SerializationError("trailing bytes in verifying key")
        return VerifyingKey(
            alpha_g1=alpha, beta_g2=beta, gamma_g2=gamma, delta_g2=delta,
            ic_g1=ic, backend_name="simulated",
        )
    if len(data) < real_header:
        raise SerializationError("verifying key too short")
    alpha = deserialize_g1(data[:33])
    beta = deserialize_g2(data[33:98])
    gamma = deserialize_g2(data[98:163])
    delta = deserialize_g2(data[163:228])
    count = int.from_bytes(data[228:232], "big")
    offset = 232
    ic = []
    for _ in range(count):
        ic.append(deserialize_g1(data[offset : offset + 33]))
        offset += 33
    if offset != len(data):
        raise SerializationError("trailing bytes in verifying key")
    return VerifyingKey(
        alpha_g1=alpha, beta_g2=beta, gamma_g2=gamma, delta_g2=delta,
        ic_g1=ic, backend_name="bn254",
    )


_PK_SIM = 0x01
_PK_REAL = 0x02


def serialize_proving_key(pk) -> bytes:
    """Canonical proving-key encoding (both backends).

    Layout: ``format_byte || u32(domain_size) || u32(num_public) ||
    alpha_G1 || beta_G1 || beta_G2 || delta_G1 || delta_G2`` followed by
    the five query lists (a/b_G1/b_G2/l/h), each ``u32(len) || points...``.
    The artifact store uses this so a restarted serving worker can reload
    a CRS instead of re-running trusted setup.
    """
    sim = isinstance(pk.alpha_g1, SimPoint)
    enc1 = serialize_sim if sim else serialize_g1
    enc2 = serialize_sim if sim else serialize_g2
    parts = [
        bytes([_PK_SIM if sim else _PK_REAL]),
        pk.domain_size.to_bytes(4, "big"),
        pk.num_public.to_bytes(4, "big"),
        enc1(pk.alpha_g1),
        enc1(pk.beta_g1),
        enc2(pk.beta_g2),
        enc1(pk.delta_g1),
        enc2(pk.delta_g2),
    ]
    for query, enc in (
        (pk.a_query_g1, enc1),
        (pk.b_query_g1, enc1),
        (pk.b_query_g2, enc2),
        (pk.l_query_g1, enc1),
        (pk.h_query_g1, enc1),
    ):
        parts.append(len(query).to_bytes(4, "big"))
        parts.extend(enc(p) for p in query)
    return b"".join(parts)


def deserialize_proving_key(data: bytes):
    """Inverse of :func:`serialize_proving_key`."""
    from repro.snark.keys import ProvingKey

    if len(data) < 9:
        raise SerializationError("proving key too short")
    fmt = data[0]
    if fmt == _PK_SIM:
        dec1 = dec2 = deserialize_sim
        size1 = size2 = 33
    elif fmt == _PK_REAL:
        dec1, dec2 = deserialize_g1, deserialize_g2
        size1, size2 = 33, 65
    else:
        raise SerializationError(f"unknown proving-key format {fmt:#x}")
    domain_size = int.from_bytes(data[1:5], "big")
    num_public = int.from_bytes(data[5:9], "big")
    offset = 9

    def take(n: int) -> bytes:
        nonlocal offset
        if offset + n > len(data):
            raise SerializationError("proving key truncated")
        chunk = data[offset : offset + n]
        offset += n
        return chunk

    def take_list(dec, size):
        count = int.from_bytes(take(4), "big")
        return [dec(take(size)) for _ in range(count)]

    alpha = dec1(take(size1))
    beta_g1 = dec1(take(size1))
    beta_g2 = dec2(take(size2))
    delta_g1 = dec1(take(size1))
    delta_g2 = dec2(take(size2))
    a_query = take_list(dec1, size1)
    b_query_g1 = take_list(dec1, size1)
    b_query_g2 = take_list(dec2, size2)
    l_query = take_list(dec1, size1)
    h_query = take_list(dec1, size1)
    if offset != len(data):
        raise SerializationError("trailing bytes in proving key")
    return ProvingKey(
        alpha_g1=alpha,
        beta_g1=beta_g1,
        beta_g2=beta_g2,
        delta_g1=delta_g1,
        delta_g2=delta_g2,
        a_query_g1=a_query,
        b_query_g1=b_query_g1,
        b_query_g2=b_query_g2,
        l_query_g1=l_query,
        h_query_g1=h_query,
        domain_size=domain_size,
        num_public=num_public,
    )


def deserialize_proof(data: bytes) -> Proof:
    if len(data) == 33 + 65 + 33:
        return Proof(
            a=deserialize_g1(data[:33]),
            b=deserialize_g2(data[33:98]),
            c=deserialize_g1(data[98:]),
        )
    if len(data) == 3 * 33:
        return Proof(
            a=deserialize_sim(data[:33]),
            b=deserialize_sim(data[33:66]),
            c=deserialize_sim(data[66:]),
        )
    raise SerializationError(f"unrecognized proof length {len(data)}")
