"""Batch field utilities shared by the curve, QAP, and compiler layers."""

from __future__ import annotations

from typing import List, Sequence

from repro.field.fp import Field


def batch_inverse(field: Field, values: Sequence[int]) -> List[int]:
    """Invert many field elements with one modular inversion.

    Montgomery's trick: prefix products, a single inversion of the total
    product, then a backwards sweep.  Cost is ``3(n-1)`` multiplications plus
    one inversion instead of ``n`` inversions — the standard optimization in
    MSM affine-coordinate batching and QAP Lagrange evaluation.

    Raises ``ZeroDivisionError`` if any input is zero (callers filter zeros).

    This sits on the batch-affine MSM hot path (one call per reduction
    round, thousands of elements), so the loops run on raw ints and the
    multiplication counters are charged in bulk afterwards.
    """
    n = len(values)
    if n == 0:
        return []
    p = field.modulus
    prefix = [0] * n
    running = 1
    for i, v in enumerate(values):
        if v == 0:
            raise ZeroDivisionError("batch_inverse received a zero element")
        running = running * v % p
        prefix[i] = running
    inv_running = field.inv(running)  # the single inversion (counted)
    out = [0] * n
    for i in range(n - 1, 0, -1):
        out[i] = inv_running * prefix[i - 1] % p
        inv_running = inv_running * values[i] % p
    out[0] = inv_running
    from repro.field.counters import global_counter

    global_counter().field_mul += 3 * (n - 1)
    return out


def field_dot(field: Field, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Dot product of two raw-int vectors over ``field``."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    acc = 0
    for x, y in zip(xs, ys):
        acc += x * y
    # A single reduction keeps the loop allocation-light; counters record the
    # equivalent per-term multiplications for the cost model.
    from repro.field.counters import global_counter

    counter = global_counter()
    counter.field_mul += len(xs)
    counter.field_add += max(len(xs) - 1, 0)
    return acc % field.modulus


def powers(field: Field, base: int, count: int) -> List[int]:
    """``[1, base, base^2, ..., base^(count-1)]`` as raw ints."""
    out = [1] * count if count > 0 else []
    for i in range(1, count):
        out[i] = field.mul(out[i - 1], base)
    return out
