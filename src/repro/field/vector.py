"""Batch field utilities shared by the curve, QAP, and compiler layers.

These entry points dispatch to the active field backend
(:mod:`repro.field.backend`): the scalar reference, the vectorized
limb-Montgomery numpy backend, or the gmpy2 big-int fast path, selected
via ``ZENO_FIELD_BACKEND``.  All backends are bit-identical on canonical
inputs and charge identical op-counter totals, so callers (and the cost
model) never observe which one ran.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.field.fp import Field

# Reduce the dot-product accumulator every CHUNK terms.  A fully unreduced
# sum over a long CSR row balloons to thousands of bits (each product is
# ~508 bits; CPython addition over such bignums goes quadratic-ish in the
# limb count and the final ``%`` pays for the whole width).  64 terms keeps
# the accumulator under ~514 bits — one extra limb — while still amortizing
# the reduction cost to 1/64 of a mulmod per term.
DOT_CHUNK = 64


def batch_inverse(
    field: Field, values: Sequence[int], zero_ok: bool = False
) -> List[int]:
    """Invert many field elements with one modular inversion.

    Montgomery's trick: prefix products, a single inversion of the total
    product, then a backwards sweep.  Cost is ``3(n-1)`` multiplications plus
    one inversion instead of ``n`` inversions — the standard optimization in
    MSM affine-coordinate batching and QAP Lagrange evaluation.

    With ``zero_ok`` zero inputs map to zero outputs (the convention the
    vectorized batch-affine fold relies on: cancelled point pairs become
    masked zero-denominator lanes instead of a fragile caller-side
    pre-filter).  Without it any zero raises ``ZeroDivisionError``.

    This sits on the batch-affine MSM hot path (one call per reduction
    round, thousands of elements), so the work runs through the active
    field backend and the multiplication counters are charged in bulk.
    """
    from repro.field.backend import get_backend

    return get_backend().inv_list(field, list(values), zero_ok=zero_ok)


def field_dot(field: Field, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Dot product of two raw-int vectors over ``field``.

    The accumulator is reduced every :data:`DOT_CHUNK` terms so its width
    stays bounded regardless of row length (an unreduced sum over a
    thousand-term CSR row used to balloon to ~500k bits of intermediate).
    Counter totals are identical to the single-reduction version: the cost
    model records one ``field_mul`` per term and ``n - 1`` adds.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    p = field.modulus
    acc = 0
    pending = 0
    for x, y in zip(xs, ys):
        acc += x * y
        pending += 1
        if pending == DOT_CHUNK:
            acc %= p
            pending = 0
    from repro.field.counters import global_counter

    counter = global_counter()
    counter.field_mul += len(xs)
    counter.field_add += max(len(xs) - 1, 0)
    return acc % p


def powers(field: Field, base: int, count: int) -> List[int]:
    """``[1, base, base^2, ..., base^(count-1)]`` as raw ints.

    Sequential by nature (each term feeds the next); the resident
    limb-domain variant used for twiddle/scale table construction lives in
    :func:`repro.field.backend.powers_limbs`.
    """
    out = [1] * count if count > 0 else []
    for i in range(1, count):
        out[i] = field.mul(out[i - 1], base)
    return out
