"""Finite-field arithmetic substrate.

zkSNARKs compute over large prime fields (~254-bit for BN254, §2.1 of the
paper).  This package provides:

* :class:`~repro.field.fp.Field` — a prime-field descriptor with raw ``int``
  arithmetic used in hot loops (MSM, QAP evaluation).
* :class:`~repro.field.fp.FieldElement` — an ergonomic wrapper element type.
* BN254 scalar field (``BN254_FR``) and base field (``BN254_FQ``) instances.
* Batch utilities (:mod:`repro.field.vector`) such as Montgomery batch
  inversion and field dot products.
* Operation counters (:mod:`repro.field.counters`) used by the benchmark
  harness to attribute cost to pipeline phases.
"""

from repro.field.fp import (
    BN254_FQ,
    BN254_FR,
    BN254_FQ_MODULUS,
    BN254_FR_MODULUS,
    Field,
    FieldElement,
)
from repro.field.counters import OpCounter, global_counter, count_ops
from repro.field.vector import batch_inverse, field_dot, powers

__all__ = [
    "Field",
    "FieldElement",
    "BN254_FR",
    "BN254_FQ",
    "BN254_FR_MODULUS",
    "BN254_FQ_MODULUS",
    "OpCounter",
    "global_counter",
    "count_ops",
    "batch_inverse",
    "field_dot",
    "powers",
]
