"""Prime-field arithmetic.

The paper's zkSNARK backend (Groth16 over BN254, §2.1) operates on two prime
fields:

* ``Fr`` — the *scalar field* (group order of G1/G2).  All circuit values,
  witnesses, and constraint coefficients live here.  This is the "254-bit
  finite field" the paper's knit encoding packs uint8 values into (§4.2).
* ``Fq`` — the *base field* over which the curve points' coordinates live.

Two representations are provided.  :class:`Field` exposes raw ``int``
arithmetic (no object allocation) for hot loops; :class:`FieldElement` wraps
an ``int`` with operator overloading for readable code in the compiler and
tests.  Both reduce modulo the field prime.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.field.counters import global_counter

# BN254 (alt_bn128) parameters -- the curve used by Arkworks/Groth16 in the
# paper's artifact and by Ethereum precompiles.
BN254_FQ_MODULUS = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)
BN254_FR_MODULUS = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)

IntoInt = Union[int, "FieldElement"]


class Field:
    """A prime field descriptor: modulus plus raw-``int`` arithmetic.

    Methods operate on plain Python integers in ``[0, modulus)`` so hot loops
    avoid per-element object allocation.  Every multiplication and inversion
    is recorded in the global :class:`~repro.field.counters.OpCounter`, which
    is how the benchmark harness attributes latency to pipeline phases.
    """

    __slots__ = ("modulus", "name", "bits")

    def __init__(self, modulus: int, name: str = "Fp") -> None:
        if modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {modulus}")
        self.modulus = modulus
        self.name = name
        self.bits = modulus.bit_length()

    # -- raw arithmetic ----------------------------------------------------

    def reduce(self, value: int) -> int:
        """Map an arbitrary integer into canonical ``[0, modulus)`` form."""
        return value % self.modulus

    def add(self, a: int, b: int) -> int:
        global_counter().field_add += 1
        s = a + b
        if s >= self.modulus:
            s -= self.modulus
        return s

    def sub(self, a: int, b: int) -> int:
        global_counter().field_add += 1
        d = a - b
        if d < 0:
            d += self.modulus
        return d

    def neg(self, a: int) -> int:
        return self.modulus - a if a else 0

    def mul(self, a: int, b: int) -> int:
        global_counter().field_mul += 1
        return (a * b) % self.modulus

    def square(self, a: int) -> int:
        global_counter().field_mul += 1
        return (a * a) % self.modulus

    def inv(self, a: int) -> int:
        """Modular inverse via Python's built-in extended-gcd ``pow``."""
        if a == 0:
            raise ZeroDivisionError(f"inverse of 0 in {self.name}")
        global_counter().field_inv += 1
        return pow(a, -1, self.modulus)

    def exp(self, base: int, exponent: int) -> int:
        global_counter().field_exp += 1
        if exponent < 0:
            base = self.inv(base)
            exponent = -exponent
        return pow(base, exponent, self.modulus)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- element construction ----------------------------------------------

    def __call__(self, value: IntoInt) -> "FieldElement":
        """Build a :class:`FieldElement` of this field from an int."""
        return FieldElement(self, int(value))

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, 1)

    def random(self, rng) -> "FieldElement":
        """A uniform element drawn from ``rng`` (a ``random.Random``)."""
        return FieldElement(self, rng.randrange(self.modulus))

    def elements(self, values: Iterable[IntoInt]) -> List["FieldElement"]:
        return [self(v) for v in values]

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Field) and self.modulus == other.modulus

    def __hash__(self) -> int:
        return hash(("Field", self.modulus))

    def __repr__(self) -> str:
        return f"Field({self.name}, {self.bits} bits)"


class FieldElement:
    """An element of a prime :class:`Field` with operator overloading.

    Values are stored in canonical form ``0 <= value < field.modulus``.
    Mixed ``int`` operands are accepted and reduced.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: Field, value: int) -> None:
        self.field = field
        self.value = value % field.modulus

    # -- helpers -------------------------------------------------------------

    def _coerce(self, other: IntoInt) -> int:
        if isinstance(other, FieldElement):
            if other.field.modulus != self.field.modulus:
                raise ValueError(
                    f"cannot mix {self.field.name} and {other.field.name}"
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.add(self.value, v))

    __radd__ = __add__

    def __sub__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(self.value, v))

    def __rsub__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(v, self.value))

    def __mul__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.mul(self.value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.div(self.value, v))

    def __rtruediv__(self, other: IntoInt) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.div(v, self.value))

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.exp(self.value, exponent))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, self.field.neg(self.value))

    def inverse(self) -> "FieldElement":
        return FieldElement(self.field, self.field.inv(self.value))

    # -- comparisons -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return (
                self.field.modulus == other.field.modulus
                and self.value == other.value
            )
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.field.name}({self.value})"

    # -- signed interpretation ---------------------------------------------------

    def signed(self) -> int:
        """Interpret as a signed integer centered at zero.

        Quantized NN values are small signed integers embedded in the field;
        a value above ``modulus // 2`` represents the negative
        ``value - modulus``.  Used when decoding circuit outputs back to NN
        space.
        """
        half = self.field.modulus // 2
        return self.value - self.field.modulus if self.value > half else self.value


BN254_FR = Field(BN254_FR_MODULUS, name="Fr")
BN254_FQ = Field(BN254_FQ_MODULUS, name="Fq")
