"""Operation counters for cost attribution.

The paper's figures report latency per proof-generation phase (Fig. 4) and
speedups of individual optimizations (Fig. 9/10).  In a pure-Python
reproduction wall-clock numbers carry interpreter noise, so the benchmark
harness *also* attributes cost by counting the dominant operations: field
multiplications/inversions, field exponentiations, and group operations.
These counts are deterministic and map directly onto the paper's cost model
(latency proportional to constraint count ``m`` and witness size ``n``,
§2.1).

A single process-global :class:`OpCounter` is active at any time; scopes are
managed with :func:`count_ops` so concurrent phases do not double count.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator


@dataclass
class OpCounter:
    """Mutable tally of expensive primitive operations."""

    field_add: int = 0
    field_mul: int = 0
    field_inv: int = 0
    field_exp: int = 0
    group_add: int = 0
    group_scalar_mul: int = 0
    pairing: int = 0
    lc_term: int = 0  # linear-combination terms materialized (circuit comp.)
    cache_hit: int = 0
    cache_miss: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters (including ``extra`` keys)."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "extra"
        }
        out.update(self.extra)
        return out

    def reset(self) -> None:
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            else:
                setattr(self, f.name, 0)

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def merge(self, other: "OpCounter") -> None:
        for f in fields(self):
            if f.name == "extra":
                for key, val in other.extra.items():
                    self.extra[key] = self.extra.get(key, 0) + val
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def total_field_ops(self) -> int:
        """Weighted total used by the latency cost model.

        Inversions and exponentiations cost ~``bits`` multiplications each;
        we use a fixed weight of 256 reflecting the 254-bit fields in play.
        """
        return (
            self.field_mul
            + self.field_add // 4
            + 256 * (self.field_inv + self.field_exp)
        )


_local = threading.local()


def global_counter() -> OpCounter:
    """The counter currently active on this thread."""
    counter = getattr(_local, "counter", None)
    if counter is None:
        counter = OpCounter()
        _local.counter = counter
    return counter


@contextmanager
def count_ops() -> Iterator[OpCounter]:
    """Scope with a fresh counter; restores the previous one on exit.

    >>> with count_ops() as ops:
    ...     _ = BN254_FR.mul(3, 4)   # doctest: +SKIP
    >>> ops.field_mul                # doctest: +SKIP
    1
    """
    previous = getattr(_local, "counter", None)
    fresh = OpCounter()
    _local.counter = fresh
    try:
        yield fresh
    finally:
        _local.counter = previous
