"""Array-oriented field-arithmetic backends (``repro.field.backend``).

Every prover hot path — NTT butterflies, MSM bucket reduction, CSR witness
evaluation — ultimately bottoms out in per-element Python big-int ``%``
operations.  This module provides interchangeable *backends* for bulk field
arithmetic so those loops can run as array programs instead:

* :class:`ScalarBackend` — the always-available reference; plain Python
  ints driven through :class:`repro.field.fp.Field`.  Every other backend
  must produce bit-identical results (the hypothesis parity suite and the
  CI prove-smoke assert proofs are byte-identical across backends).
* :class:`NumpyBackend` — fixed-limb Montgomery representation in NumPy
  ``int64`` arrays: each vector of field elements is an ``(L, n)`` array of
  29-bit limbs.  A full Montgomery multiply is an ``O(L^2)`` sequence of
  vectorized limb products, so the *per-element* cost drops well below a
  CPython 254-bit ``(a*b) % p`` once ``n`` is a few hundred lanes.
* :class:`Gmpy2Backend` — a ``gmpy2.mpz`` fast path auto-detected at
  import.  gmpy2's GMP-backed ints multiply 254-bit values ~2-3x faster
  than CPython's; the backend mirrors the scalar algorithms element-wise.

Selection is via the ``ZENO_FIELD_BACKEND`` environment variable
(``auto`` | ``scalar`` | ``numpy`` | ``gmpy2``); ``auto`` prefers numpy,
then gmpy2, then scalar.  :func:`set_backend` overrides at runtime (tests,
CI's forced-scalar second run).

Montgomery layout (the numpy backend)
-------------------------------------

For an odd modulus ``p`` of ``b`` bits the :class:`LimbPlan` picks
``W = 29``-bit limbs and ``L = ceil((b + 7) / W)`` of them, so
``R = 2**(W*L) >= 128 * p``.  All arrays are ``int64`` with shape
``(L, *lanes)``; limb products are at most ``2**58`` and anti-diagonal
column sums at most ``9 * 2**58 < 2**63``, so the whole CIOS-style
multiply-and-reduce runs in exact int64 arithmetic with a single-limb
carry fix-up per reduction step.  Two value forms appear:

* *plain* — the array encodes ``v`` itself;
* *mont*  — the array encodes ``v * R mod p``.

``mont_mul(A, B) = A * B / R mod p``, so ``mont_mul(plain, mont)`` is a
plain product: hot loops keep **data plain** and store their constant
tables (twiddles, coset scales) in mont form, paying zero conversion
passes per transform.  Values may drift above ``p`` (bounded lazily by
multiples of ``p``); :func:`canonicalize` folds them back with a
compare-and-subtract ladder before results leave the backend.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.field.counters import global_counter
from repro.field.fp import Field

try:  # numpy ships with the package (pyproject dependency) but stay gated
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a hard dep in practice
    _np = None

try:  # optional GMP fast path; never required
    import gmpy2 as _gmpy2

    _mpz = _gmpy2.mpz
except Exception:  # pragma: no cover - exercised on hosts without gmpy2
    _gmpy2 = None
    _mpz = None

HAS_NUMPY = _np is not None
HAS_GMPY2 = _gmpy2 is not None

LIMB_BITS = 29
_MASK = (1 << LIMB_BITS) - 1

# Values held in limb arrays are allowed to drift up to BOUND_MULTIPLE * p
# before a canonicalization pass is forced (the NTT adds ~2p of drift per
# butterfly stage; 32p of headroom covers domains to 2^13 without any
# mid-transform reduction).
BOUND_MULTIPLE = 32


class LimbPlan:
    """Per-modulus constants for the fixed-limb Montgomery representation."""

    __slots__ = (
        "modulus", "bits", "limbs", "R", "R_mod_p", "R2", "Rinv", "n0inv",
        "p_limbs", "p_col", "kp_cols", "ladder", "r2_col", "one_col",
    )

    def __init__(self, modulus: int) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError(
                "limb plans require an odd modulus >= 3, got %d" % modulus
            )
        self.modulus = modulus
        self.bits = modulus.bit_length()
        self.limbs = -(-(self.bits + 7) // LIMB_BITS)
        self.R = 1 << (LIMB_BITS * self.limbs)
        if self.R < BOUND_MULTIPLE * 4 * modulus:
            # Tiny moduli leave no lazy-reduction headroom; bump L.
            while self.R < BOUND_MULTIPLE * 4 * modulus:
                self.limbs += 1
                self.R = 1 << (LIMB_BITS * self.limbs)
        self.R_mod_p = self.R % modulus
        self.R2 = self.R * self.R % modulus
        self.Rinv = pow(self.R, -1, modulus)
        self.n0inv = (-pow(modulus, -1, 1 << LIMB_BITS)) % (1 << LIMB_BITS)
        self.p_limbs = self._int_limbs(modulus)
        self.p_col = self.p_limbs.reshape(self.limbs, 1)
        # k*p offset / subtraction ladder: index k -> limbs of k*p.
        self.kp_cols = [
            self._int_limbs(k * modulus).reshape(self.limbs, 1)
            for k in range(BOUND_MULTIPLE + 3)
        ]
        # Compare-and-subtract ladder used by canonicalize(): handles
        # values up to 64p (NTT drift tops out at 32p; CSR segment sums
        # at 64-term granularity stay under ~60p).
        self.ladder = [
            self._int_limbs(k * modulus)
            for k in (32, 16, 8, 4, 2, 1)
        ]
        self.r2_col = self._int_limbs(self.R2).reshape(self.limbs, 1)
        self.one_col = self._int_limbs(1).reshape(self.limbs, 1)

    def _int_limbs(self, value: int):
        out = _np.zeros(self.limbs, dtype=_np.int64)
        for j in range(self.limbs):
            out[j] = (value >> (LIMB_BITS * j)) & _MASK
        return out


_PLANS: Dict[int, LimbPlan] = {}
_PLAN_LOCK = threading.Lock()


def plan_for(field_or_modulus) -> LimbPlan:
    """The memoized :class:`LimbPlan` for a field/modulus."""
    modulus = getattr(field_or_modulus, "modulus", field_or_modulus)
    plan = _PLANS.get(modulus)
    if plan is None:
        with _PLAN_LOCK:
            plan = _PLANS.get(modulus)
            if plan is None:
                plan = LimbPlan(modulus)
                _PLANS[modulus] = plan
    return plan


# -- limb array construction / extraction -------------------------------------------


def to_limbs(plan: LimbPlan, values: Sequence[int], validate: bool = False):
    """Canonical ints -> ``(L, n)`` int64 limb array (plain form).

    With ``validate`` the inputs must already be canonical
    (``0 <= v < p``); non-canonical values raise ``ValueError`` instead of
    being silently reduced — the backend parity contract is on canonical
    representatives only.
    """
    n = len(values)
    L = plan.limbs
    if n == 0:
        return _np.zeros((L, 0), dtype=_np.int64)
    if validate:
        p = plan.modulus
        for v in values:
            if not isinstance(v, int) or v < 0 or v >= p:
                raise ValueError(
                    "non-canonical field element %r (expected 0 <= v < p)"
                    % (v,)
                )
    nbytes = (LIMB_BITS * L + 7) // 8
    blob = b"".join(v.to_bytes(nbytes, "little") for v in values)
    raw = _np.frombuffer(blob, dtype=_np.uint8).reshape(n, nbytes)
    out = _np.zeros((L, n), dtype=_np.int64)
    for j in range(L):
        bit = LIMB_BITS * j
        byte0 = bit >> 3
        off = bit & 7
        acc = _np.zeros(n, dtype=_np.uint64)
        for k in range((off + LIMB_BITS + 7) // 8):
            if byte0 + k < nbytes:
                acc |= raw[:, byte0 + k].astype(_np.uint64) << _np.uint64(8 * k)
        out[j] = ((acc >> _np.uint64(off)) & _np.uint64(_MASK)).astype(
            _np.int64
        )
    return out


def from_limbs(plan: LimbPlan, arr) -> List[int]:
    """Canonical-normalized ``(L, n)`` limb array -> list of canonical ints.

    The array must hold canonical values (``< p``, limbs in
    ``[0, 2**29)``); run :func:`canonicalize` first if unsure.
    """
    L = plan.limbs
    flat = arr.reshape(L, -1)
    n = flat.shape[1]
    if n == 0:
        return []
    words = (LIMB_BITS * L + 63) // 64
    w = _np.zeros((n, words), dtype=_np.uint64)
    limbs_u = flat.astype(_np.uint64)
    for j in range(L):
        bit = LIMB_BITS * j
        wi, off = bit // 64, bit % 64
        w[:, wi] |= limbs_u[j] << _np.uint64(off)
        if off + LIMB_BITS > 64 and wi + 1 < words:
            w[:, wi + 1] |= limbs_u[j] >> _np.uint64(64 - off)
    blob = w.tobytes()
    stride = words * 8
    return [
        int.from_bytes(blob[i * stride : (i + 1) * stride], "little")
        for i in range(n)
    ]


# -- normalization ------------------------------------------------------------------


def _ripple_norm(arr) -> None:
    """Propagate limb carries/borrows in place until limbs are canonical.

    The value encoded must be nonnegative and < 2**(29*L); the top row is
    left unmasked so no bits can fall off the end.  Converges in a couple
    of passes for the magnitudes our kernels produce (the first pass is
    unconditional — butterfly outputs always need one — then cheap
    any-carry checks gate the tail).
    """
    low = arr[:-1]
    c = low >> LIMB_BITS
    _np.bitwise_and(low, _MASK, out=low)
    arr[1:] += c
    for _ in range(arr.shape[0] + 2):
        _np.right_shift(low, LIMB_BITS, out=c)
        if not c.any():
            return
        _np.bitwise_and(low, _MASK, out=low)
        arr[1:] += c
    raise AssertionError("limb normalization failed to converge")


def canonicalize(plan: LimbPlan, arr) -> None:
    """In place: reduce plain/mont values to canonical ``[0, p)`` form.

    Accepts the lazily-bounded output of the NTT/mul kernels (values up to
    ``BOUND_MULTIPLE * p``): a compare-and-subtract ladder over
    ``16p, 8p, 4p, 2p, p``.
    """
    L = plan.limbs
    _ripple_norm(arr)
    flat = arr.reshape(L, -1)
    for kp in plan.ladder:
        # Lexicographic >= against the constant, top limb first.
        ge = flat[L - 1] > kp[L - 1]
        eq = flat[L - 1] == kp[L - 1]
        for j in range(L - 2, -1, -1):
            ge = ge | (eq & (flat[j] > kp[j]))
            eq = eq & (flat[j] == kp[j])
        ge = ge | eq
        if not ge.any():
            continue
        flat -= kp.reshape(L, 1) * ge.astype(_np.int64)
        _ripple_norm(flat)


# -- the Montgomery multiply kernel -------------------------------------------------


class _Work:
    """Reusable scratch buffers for one lane width."""

    __slots__ = ("T", "prod", "m")

    def __init__(self, L: int, n: int) -> None:
        self.T = _np.zeros((2 * L, n), dtype=_np.int64)
        self.prod = _np.empty((L, n), dtype=_np.int64)
        self.m = _np.empty(n, dtype=_np.int64)


def mont_mul_into(plan: LimbPlan, A, B, out, work: Optional[_Work] = None):
    """``out = A * B / R mod p`` (+ a multiple of p), limbs canonical.

    ``A``: limbs in ``[0, 2**30)``, value in ``[0, BOUND_MULTIPLE * p)``.
    ``B``: limbs in ``[0, 2**29)``, value in ``[0, p)`` — the "constant"
    side (twiddle/scale tables, canonical vectors).  ``B`` may broadcast
    (an ``(L, 1)`` column against ``(L, n)`` data).

    Output value is ``< p + A*B/R <= ~1.2p`` with canonical-normalized
    limbs; exact up to the multiple of ``p``, which downstream
    canonicalization removes.  All loop iterations are full-array numpy
    ops: ``2 * L**2`` limb products per element.
    """
    L = plan.limbs
    n = out.shape[-1] if out.ndim > 1 else 1
    flatA = A.reshape(L, -1)
    flatB = B.reshape(L, -1)
    flatO = out.reshape(L, -1)
    lanes = flatA.shape[1]
    if work is None or work.T.shape[1] != lanes:
        work = _Work(L, lanes)
    T, prod, m = work.T, work.prod, work.m
    T[:] = 0
    if flatB.shape[1] == 1:
        # Broadcast-constant multiply: numpy broadcasting handles it.
        for i in range(L):
            _np.multiply(flatB, flatA[i], out=prod)
            T[i : i + L] += prod
    else:
        for i in range(L):
            _np.multiply(flatA[i], flatB, out=prod)
            T[i : i + L] += prod
    n0inv = plan.n0inv
    p_col = plan.p_col
    for i in range(L):
        _np.multiply(T[i], n0inv, out=m)
        _np.bitwise_and(m, _MASK, out=m)
        _np.multiply(m, p_col, out=prod)
        T[i : i + L] += prod
        _np.right_shift(T[i], LIMB_BITS, out=m)
        T[i + 1] += m
    hi = T[L:]
    for _ in range(2):
        c = hi >> LIMB_BITS
        _np.bitwise_and(hi, _MASK, out=hi)
        hi[1:] += c[:-1]
    flatO[:] = hi
    return out


def mont_mul(plan: LimbPlan, A, B, work: Optional[_Work] = None):
    out = _np.empty_like(A)
    return mont_mul_into(plan, A, B, out, work)


def to_mont(plan: LimbPlan, arr):
    """plain -> mont form (one multiply by ``R^2``)."""
    return mont_mul(plan, arr, plan.r2_col)


def from_mont(plan: LimbPlan, arr):
    """mont -> plain form (one multiply by 1)."""
    return mont_mul(plan, arr, plan.one_col)


# -- NTT stages as an array program -------------------------------------------------


def ntt_stages(
    plan: LimbPlan,
    data,
    stage_twiddles: List,
    bound_p: int = 1,
) -> int:
    """Iterative radix-2 butterflies over bit-reversed ``data``, in place.

    ``data``: contiguous ``(L, C, d)`` plain-form limbs, ``C`` independent
    vectors batched through every stage together.  ``stage_twiddles``: per
    stage a canonical *mont-form* twiddle table — either ``(L, half)``
    (broadcast per group at call time) or pre-tiled ``(L, C*d//2)``
    covering every lane (the Domain caches tiled tables per batch width so
    no per-stage broadcast copy is paid) — or ``None`` for the all-ones
    first stage, which needs no multiplies.  ``bound_p`` is the current
    value bound in multiples of ``p``; the return value is the new bound.
    When the running bound would overflow the lazy-reduction headroom the
    data is canonicalized mid-transform (only reachable for domains past
    ``~2^13``).
    """
    L = plan.limbs
    d = data.shape[-1]
    C = data.shape[1] if data.ndim == 3 else 1
    view = data.reshape(L, C, d)
    lanes = C * (d // 2)
    work = _Work(L, lanes) if lanes else None
    t_flat = _np.empty((L, lanes), dtype=_np.int64)
    for s, tw in enumerate(stage_twiddles):
        half = 1 << s
        groups = d >> (s + 1)
        # Projected post-stage bound; canonicalize first if it would
        # exhaust the lazy-reduction headroom.
        projected = (2 * bound_p) if tw is None else (bound_p + 2)
        if projected > BOUND_MULTIPLE:
            canonicalize(plan, view)
            bound_p = 1
        V = view.reshape(L, C, groups, 2 * half)
        u = V[..., :half]
        odd = V[..., half:]
        t = t_flat.reshape(L, C, groups, half)
        if tw is None:
            t[:] = odd
            t_bound = bound_p
        else:
            _np.copyto(t, odd)
            if tw.shape[1] == lanes:
                twb = tw  # pre-tiled across every lane: use as-is
            else:
                twb = _np.broadcast_to(
                    tw.reshape(L, 1, 1, half), (L, C, groups, half)
                ).reshape(L, -1)
            mont_mul_into(plan, t_flat, twb, t_flat, work)
            t_bound = 2  # value < p + 32p * p / R <= 2p
        off = plan.kp_cols[t_bound].reshape(L, 1, 1, 1)
        _np.subtract(u, t, out=odd)  # u still holds the original even half
        odd += off
        u += t
        _ripple_norm(view.reshape(L, -1))
        bound_p = bound_p + t_bound
    return bound_p


def bit_reverse_gather(data, bitrev):
    """Apply the bit-reversal permutation along the last axis (copies)."""
    return _np.ascontiguousarray(data[..., bitrev])


def pointwise_mont(plan: LimbPlan, data, table, work: Optional[_Work] = None):
    """``data[..., i] * table[..., i] / R`` — one fused pointwise pass.

    ``data`` is ``(L, C, d)`` (or ``(L, d)``); ``table`` is ``(L, d)`` and
    broadcasts across the ``C`` axis.  With a mont-form ``table`` this is a
    plain pointwise product (the coset-shift / INTT-scale passes); with a
    plain table the result picks up an extra ``R^{-1}`` (used to pre-divide
    one quotient chain).
    """
    L = plan.limbs
    flat = _np.ascontiguousarray(data).reshape(L, -1)
    out = _np.empty_like(flat)
    if table.size == data.size:
        mont_mul_into(
            plan, flat, _np.ascontiguousarray(table).reshape(L, -1), out, work
        )
    else:
        # Table repeats across the batch axis: multiply each chain's
        # contiguous block against it instead of materializing a broadcast.
        tflat = _np.ascontiguousarray(table).reshape(L, -1)
        d = tflat.shape[1]
        reps = flat.shape[1] // d
        seg_work = _Work(L, d) if reps > 1 else work
        for c in range(reps):
            mont_mul_into(
                plan,
                flat[:, c * d:(c + 1) * d],
                tflat,
                out[:, c * d:(c + 1) * d],
                seg_work,
            )
    return out.reshape(data.shape)


def powers_limbs(plan: LimbPlan, base: int, count: int, mont: bool = False):
    """``[base^0 .. base^(count-1)]`` built resident, by block doubling.

    Each doubling step extends the table with one vectorized multiply by
    the constant ``base^block``, so construction is ~1 lane-multiply per
    element with no Python-int chain.  With ``mont`` the table is produced
    in Montgomery form (ready to be a butterfly/scale constant).  Output is
    canonical.
    """
    p = plan.modulus
    L = plan.limbs
    base %= p
    out = _np.zeros((L, max(count, 0)), dtype=_np.int64)
    if count <= 0:
        return out
    first = plan.R_mod_p if mont else 1
    out[:, 0] = to_limbs(plan, [first])[:, 0]
    block = 1
    work: Optional[_Work] = None
    while block < count:
        width = min(block, count - block)
        # Constant multiplier for this doubling: base^block (mont-form
        # tables fold the R factor into the running values, so the
        # constant itself stays canonical either way).
        const_col = to_limbs(plan, [pow(base, block, p) * plan.R_mod_p % p])
        out[:, block : block + width] = mont_mul(
            plan, _np.ascontiguousarray(out[:, :width]), const_col
        )
        block <<= 1
    canonicalize(plan, out)
    return out


# -- blocked batch inversion --------------------------------------------------------


def batch_inverse_limbs(
    plan: LimbPlan,
    arr,
    zero_ok: bool = False,
    mont_form: bool = False,
    block_lanes: int = 256,
):
    """Vectorized Montgomery-trick batch inversion over a limb array.

    ``arr``: ``(L, n)`` canonical values (plain or mont form; the result
    matches the input form).  Cost: ~3 vector limb-multiplies per element
    (an axis-0 scan of prefix products, one Python-side inversion per lane
    column, and a mirrored down-sweep), against 3 sequential big-int
    multiplies per element for the scalar trick.

    Zeros raise ``ZeroDivisionError`` unless ``zero_ok``, in which case
    they map to 0 (the batch-affine bucket fold relies on this to process
    cancelling point pairs as masked lanes).
    """
    L = plan.limbs
    p = plan.modulus
    n = arr.shape[-1]
    if n == 0:
        return arr.copy()
    zero_mask = ~arr.any(axis=0)
    has_zero = bool(zero_mask.any())
    if has_zero and not zero_ok:
        raise ZeroDivisionError("batch_inverse received a zero element")
    k = min(block_lanes, n)
    m = -(-n // k)
    padded = _np.empty((L, m * k), dtype=_np.int64)
    padded[:, :n] = arr
    padded[:, n:] = 0
    pad_one = plan.one_col if not mont_form else plan._int_limbs(
        plan.R_mod_p
    ).reshape(L, 1)
    if has_zero:
        full_mask = _np.zeros(m * k, dtype=bool)
        full_mask[:n] = zero_mask
        full_mask[n:] = True
    else:
        full_mask = _np.zeros(m * k, dtype=bool)
        full_mask[n:] = True
    if full_mask.any():
        padded[:, full_mask] = pad_one  # neutral lanes for the scan
    rows = padded.reshape(L, m, k)
    work = _Work(L, k)
    # Up-sweep: rows[r] <- mont(rows[r], rows[r-1]); keep prefixes.
    prefixes = _np.empty_like(rows)
    prefixes[:, 0] = rows[:, 0]
    for r in range(1, m):
        mont_mul_into(plan, prefixes[:, r - 1], rows[:, r], prefixes[:, r], work)
    # Column totals to Python for the single inversion per column.
    last = prefixes[:, m - 1].copy()
    canonicalize(plan, last)
    col_vals = from_limbs(plan, last)
    # Stored value of column j's total:
    #   plain form: (prod_j) * R^{-(m-1)}     mont form: (prod_j) * R^{-(m-2)}...
    # Either way pow(-1) of the *stored* value is exactly the S_{m-1}
    # seed the down-sweep recurrence needs (see derivation in module docs).
    inv_cols = [pow(v, -1, p) if v else 0 for v in col_vals]
    if mont_form:
        # want outputs in mont form: scale the seed by R^2 mod p
        r2 = plan.R2
        inv_cols = [v * r2 % p for v in inv_cols]
    S = to_limbs(plan, inv_cols)
    out = _np.empty_like(rows)
    for r in range(m - 1, 0, -1):
        mont_mul_into(plan, S, prefixes[:, r - 1], out[:, r], work)
        mont_mul_into(plan, S, rows[:, r], S, work)
    out[:, 0] = S
    result = out.reshape(L, m * k)[:, :n].copy()
    canonicalize(plan, result)
    if has_zero:
        result[:, zero_mask] = 0
    counter = global_counter()
    counter.field_mul += 3 * max(n - 1, 0)
    counter.field_inv += 1
    return result


# -- backend objects ----------------------------------------------------------------


class ScalarBackend:
    """Reference backend: canonical Python-int arithmetic via ``Field``."""

    name = "scalar"
    supports_ntt = False
    supports_vector = False

    def mul_list(self, field: Field, xs, ys):
        p = field.modulus
        global_counter().field_mul += len(xs)
        return [x * y % p for x, y in zip(xs, ys)]

    def add_list(self, field: Field, xs, ys):
        p = field.modulus
        global_counter().field_add += len(xs)
        return [(x + y) % p for x, y in zip(xs, ys)]

    def sub_list(self, field: Field, xs, ys):
        p = field.modulus
        global_counter().field_add += len(xs)
        return [(x - y) % p for x, y in zip(xs, ys)]

    def inv_list(self, field: Field, xs, zero_ok: bool = False):
        # The scalar Montgomery batch-inversion trick: one field inversion
        # plus 3(n-1) multiplies, zeros masked to 0 when allowed.
        p = field.modulus
        n = len(xs)
        if n == 0:
            return []
        prefix = [0] * n
        running = 1
        any_nonzero = False
        for i, v in enumerate(xs):
            if v == 0:
                if not zero_ok:
                    raise ZeroDivisionError(
                        "batch_inverse received a zero element"
                    )
                prefix[i] = 0
                continue
            running = running * v % p
            prefix[i] = running
            any_nonzero = True
        counter = global_counter()
        out = [0] * n
        if not any_nonzero:
            counter.field_inv += 1
            counter.field_mul += 3 * max(n - 1, 0)
            return out
        inv_running = field.inv(running)  # the single inversion (counted)
        for i in range(n - 1, -1, -1):
            if xs[i] == 0:
                continue
            prev = 1
            for j in range(i - 1, -1, -1):
                if prefix[j]:
                    prev = prefix[j]
                    break
            out[i] = inv_running * prev % p
            inv_running = inv_running * xs[i] % p
        counter.field_mul += 3 * max(n - 1, 0)
        return out


class NumpyBackend(ScalarBackend):
    """Vectorized limb-Montgomery backend (numpy int64 arrays)."""

    name = "numpy"
    supports_ntt = True
    supports_vector = True

    # Below this many elements the per-call numpy overhead beats the win;
    # list-level entry points fall back to scalar arithmetic.
    min_lanes = 64

    # Int-list batch inversion stays on the scalar Montgomery trick unless
    # explicitly opted in: measured on SIMD-less int64 hardware, the
    # limb conversions plus ~250ns/lane kernel passes lose to CPython's
    # 3-mulmod/element sweep at every size (0.65x even at 16k elements).
    # Limb-resident callers use :func:`batch_inverse_limbs` directly and
    # skip the conversions.  Hosts with AVX-512 int64 multiply can set
    # ``ZENO_VECTOR_INV_MIN=<n>`` to route large batches through limbs.
    inv_min_lanes = int(os.environ.get("ZENO_VECTOR_INV_MIN", "0") or 0)

    def _validated(self, plan: LimbPlan, xs):
        return to_limbs(plan, xs, validate=True)

    def mul_list(self, field: Field, xs, ys):
        if len(xs) < self.min_lanes:
            return ScalarBackend.mul_list(self, field, xs, ys)
        plan = plan_for(field)
        A = self._validated(plan, xs)
        B = to_mont(plan, self._validated(plan, ys))
        out = mont_mul(plan, A, B)
        canonicalize(plan, out)
        global_counter().field_mul += len(xs)
        return from_limbs(plan, out)

    def add_list(self, field: Field, xs, ys):
        if len(xs) < self.min_lanes:
            return ScalarBackend.add_list(self, field, xs, ys)
        plan = plan_for(field)
        out = self._validated(plan, xs) + self._validated(plan, ys)
        canonicalize(plan, out)
        global_counter().field_add += len(xs)
        return from_limbs(plan, out)

    def sub_list(self, field: Field, xs, ys):
        if len(xs) < self.min_lanes:
            return ScalarBackend.sub_list(self, field, xs, ys)
        plan = plan_for(field)
        out = self._validated(plan, xs) - self._validated(plan, ys)
        out += plan.kp_cols[1]
        canonicalize(plan, out)
        global_counter().field_add += len(xs)
        return from_limbs(plan, out)

    def inv_list(self, field: Field, xs, zero_ok: bool = False):
        if not self.inv_min_lanes or len(xs) < self.inv_min_lanes:
            return ScalarBackend.inv_list(self, field, xs, zero_ok=zero_ok)
        plan = plan_for(field)
        arr = self._validated(plan, xs)
        out = batch_inverse_limbs(plan, arr, zero_ok=zero_ok)
        return from_limbs(plan, out)


class Gmpy2Backend(ScalarBackend):
    """GMP-backed big-int fast path (list-level ops on ``mpz`` values)."""

    name = "gmpy2"
    supports_ntt = False
    supports_vector = False

    def mul_list(self, field: Field, xs, ys):
        p = _mpz(field.modulus)
        global_counter().field_mul += len(xs)
        return [int(_mpz(x) * y % p) for x, y in zip(xs, ys)]

    def add_list(self, field: Field, xs, ys):
        p = _mpz(field.modulus)
        global_counter().field_add += len(xs)
        return [int((_mpz(x) + y) % p) for x, y in zip(xs, ys)]

    def sub_list(self, field: Field, xs, ys):
        p = _mpz(field.modulus)
        global_counter().field_add += len(xs)
        return [int((_mpz(x) - y) % p) for x, y in zip(xs, ys)]

    def inv_list(self, field: Field, xs, zero_ok: bool = False):
        p = _mpz(field.modulus)
        n = len(xs)
        if n == 0:
            return []
        prefix = [None] * n
        running = _mpz(1)
        for i, v in enumerate(xs):
            if v == 0:
                if not zero_ok:
                    raise ZeroDivisionError(
                        "batch_inverse received a zero element"
                    )
                continue
            running = running * v % p
            prefix[i] = running
        counter = global_counter()
        counter.field_inv += 1
        inv_running = _gmpy2.invert(running, p)
        out = [0] * n
        last_prefix = _mpz(1)
        for i in range(n - 1, -1, -1):
            if xs[i] == 0:
                continue
            prev = None
            for j in range(i - 1, -1, -1):
                if prefix[j] is not None:
                    prev = prefix[j]
                    break
            out[i] = int(inv_running * (prev if prev is not None else 1) % p)
            inv_running = inv_running * xs[i] % p
        counter.field_mul += 3 * max(n - 1, 0)
        return out


_VALID = ("auto", "scalar", "numpy", "gmpy2")
_lock = threading.Lock()
_active: Optional[ScalarBackend] = None
_active_name: Optional[str] = None


def _resolve(name: str) -> ScalarBackend:
    if name == "auto":
        if HAS_NUMPY:
            return NumpyBackend()
        if HAS_GMPY2:
            return Gmpy2Backend()
        return ScalarBackend()
    if name == "numpy":
        if not HAS_NUMPY:
            raise RuntimeError("ZENO_FIELD_BACKEND=numpy but numpy is absent")
        return NumpyBackend()
    if name == "gmpy2":
        if not HAS_GMPY2:
            raise RuntimeError("ZENO_FIELD_BACKEND=gmpy2 but gmpy2 is absent")
        return Gmpy2Backend()
    return ScalarBackend()


def get_backend() -> ScalarBackend:
    """The process-wide active backend (env-selected, overridable)."""
    global _active, _active_name
    if _active is None:
        with _lock:
            if _active is None:
                name = os.environ.get("ZENO_FIELD_BACKEND", "auto").lower()
                if name not in _VALID:
                    raise ValueError(
                        "ZENO_FIELD_BACKEND must be one of %s, got %r"
                        % ("/".join(_VALID), name)
                    )
                _active = _resolve(name)
                _active_name = name
    return _active


def set_backend(name: str) -> ScalarBackend:
    """Force a backend by name (tests / CI); returns the new instance."""
    global _active, _active_name
    if name not in _VALID:
        raise ValueError("unknown backend %r" % (name,))
    with _lock:
        _active = _resolve(name)
        _active_name = name
    return _active


def backend_name() -> str:
    """The active backend's concrete name (resolves ``auto``)."""
    return get_backend().name
